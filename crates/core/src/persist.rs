//! Distributor-state persistence: export/import of the three tables.
//!
//! §IV-C worries about the Cloud Data Distributor as "the single point of
//! failure". Fig. 2's multiple distributors address availability; this
//! module addresses *durability*: the table state (Tables I–III plus stripe
//! bookkeeping) serializes to a line-oriented text snapshot that a restarted
//! distributor — or a newly promoted secondary — can import, given live
//! handles to the same provider fleet. The providers themselves are the
//! clouds; they persist on their own.
//!
//! The format is versioned, self-delimiting and deliberately boring:
//! one record per line, `|`-separated fields, `%xx` escaping for the two
//! structural characters inside names.

use crate::distributor::CloudDataDistributor;
use crate::tables::{ChunkEntry, ChunkRole, ClientEntry, FileEntry, StripeInfo, StripeRef, Tables};
use crate::{CoreError, PrivacyLevel, Result};
use fragcloud_raid::RaidLevel;
use fragcloud_sim::{CloudProvider, VirtualId};
use std::sync::Arc;

/// Snapshot format version.
const VERSION: u32 = 1;

pub(crate) fn esc(s: &str) -> String {
    s.replace('%', "%25").replace('|', "%7C").replace('\n', "%0A")
}

pub(crate) fn unesc(s: &str) -> String {
    s.replace("%0A", "\n").replace("%7C", "|").replace("%25", "%")
}

/// Snapshot parse failures, as the dedicated corruption variant (the
/// journal parser in `crate::journal` reports through the same one).
fn bad(line_no: usize, why: &str) -> CoreError {
    CoreError::CorruptState {
        line: line_no,
        why: why.to_string(),
    }
}

fn raid_tag(l: RaidLevel) -> &'static str {
    match l {
        RaidLevel::None => "none",
        RaidLevel::Raid5 => "raid5",
        RaidLevel::Raid6 => "raid6",
    }
}

fn parse_raid(s: &str, line_no: usize) -> Result<RaidLevel> {
    match s {
        "none" => Ok(RaidLevel::None),
        "raid5" => Ok(RaidLevel::Raid5),
        "raid6" => Ok(RaidLevel::Raid6),
        other => Err(bad(line_no, &format!("unknown raid level {other:?}"))),
    }
}

/// Serializes the distributor's table state to the snapshot text format.
pub fn export_state(d: &CloudDataDistributor) -> String {
    let st = d.state_ref();
    let mut out = String::new();
    out.push_str(&format!("fragcloud-state|v{VERSION}\n"));
    out.push_str(&format!("vids|{}\n", d.vids_allocated()));
    // Providers are referenced by name so import can re-bind live handles.
    out.push_str(&format!("providers|{}\n", st.providers.len()));
    for p in &st.providers {
        out.push_str(&format!("provider|{}\n", esc(p.name())));
    }
    // Chunk table.
    out.push_str(&format!("chunks|{}\n", st.chunks.len()));
    for c in &st.chunks {
        let stripe = c
            .stripe
            .map(|s| format!("{}:{}", s.stripe_id, s.index))
            .unwrap_or_else(|| "-".to_string());
        let role = match c.role {
            ChunkRole::Data { serial } => format!("d{serial}"),
            ChunkRole::Parity { index } => format!("p{index}"),
        };
        let sp = c
            .snapshot_provider_idx
            .zip(c.snapshot_vid)
            .map(|(i, v)| format!("{}:{}", i, v.0))
            .unwrap_or_else(|| "-".to_string());
        let mislead: Vec<String> = c.mislead_positions.iter().map(|p| p.to_string()).collect();
        let snap_mislead: Vec<String> =
            c.snapshot_mislead.iter().map(|p| p.to_string()).collect();
        let replicas: Vec<String> = c
            .replicas
            .iter()
            .map(|(i, v)| format!("{}:{}", i, v.0))
            .collect();
        out.push_str(&format!(
            "chunk|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}\n",
            c.vid.0,
            c.pl.as_u8(),
            c.provider_idx,
            sp,
            snap_mislead.join(","),
            mislead.join(","),
            c.stored_len,
            c.logical_len,
            stripe,
            role,
            if c.removed {
                "removed".to_string()
            } else if replicas.is_empty() {
                "live".to_string()
            } else {
                format!("live;{}", replicas.join(","))
            },
        ));
    }
    // Stripes.
    out.push_str(&format!("stripes|{}\n", st.stripes.len()));
    for s in &st.stripes {
        let members: Vec<String> = s.members.iter().map(|m| m.to_string()).collect();
        out.push_str(&format!(
            "stripe|{}|{}|{}|{}|{}\n",
            s.k,
            raid_tag(s.level),
            s.shard_width,
            members.join(","),
            if s.degraded { "degraded" } else { "healthy" }
        ));
    }
    // Clients.
    let mut names: Vec<&String> = st.clients.keys().collect();
    names.sort();
    out.push_str(&format!("clients|{}\n", names.len()));
    for name in names {
        let c = &st.clients[name];
        out.push_str(&format!("client|{}\n", esc(name)));
        for (pass, pl) in &c.passwords {
            out.push_str(&format!("password|{}|{}\n", esc(pass), pl.as_u8()));
        }
        let mut files: Vec<(&String, &FileEntry)> = c.files.iter().collect();
        files.sort_by_key(|(n, _)| (*n).clone());
        for (fname, fe) in files {
            let chunks: Vec<String> = fe.chunk_indices.iter().map(|i| i.to_string()).collect();
            let stripes: Vec<String> = fe.stripe_ids.iter().map(|i| i.to_string()).collect();
            out.push_str(&format!(
                "file|{}|{}|{}|{}|{}\n",
                esc(fname),
                fe.pl.as_u8(),
                fe.total_len,
                chunks.join(","),
                stripes.join(",")
            ));
        }
    }
    out.push_str("end\n");
    out
}

fn parse_usize(s: &str, line_no: usize) -> Result<usize> {
    s.parse().map_err(|_| bad(line_no, "expected integer"))
}

fn parse_u64(s: &str, line_no: usize) -> Result<u64> {
    s.parse().map_err(|_| bad(line_no, "expected integer"))
}

fn parse_pl(s: &str, line_no: usize) -> Result<PrivacyLevel> {
    s.parse::<u8>()
        .ok()
        .and_then(PrivacyLevel::from_u8)
        .ok_or_else(|| bad(line_no, "bad privacy level"))
}

fn parse_idx_vid(s: &str, line_no: usize) -> Result<(usize, VirtualId)> {
    let (i, v) = s
        .split_once(':')
        .ok_or_else(|| bad(line_no, "expected idx:vid"))?;
    Ok((parse_usize(i, line_no)?, VirtualId(parse_u64(v, line_no)?)))
}

fn parse_list<T>(
    s: &str,
    line_no: usize,
    f: impl Fn(&str, usize) -> Result<T>,
) -> Result<Vec<T>> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',').map(|x| f(x, line_no)).collect()
}

/// Reconstructs table state from a snapshot, re-binding live provider
/// handles **by name**. The fleet must contain every provider the snapshot
/// references, in any order.
pub fn import_state(
    snapshot: &str,
    providers: Vec<Arc<CloudProvider>>,
    config: crate::DistributorConfig,
) -> Result<CloudDataDistributor> {
    let mut lines = snapshot.lines().enumerate();
    let mut next = || lines.next().ok_or_else(|| bad(0, "truncated snapshot"));

    // Header.
    let (ln, header) = next()?;
    if header != format!("fragcloud-state|v{VERSION}") {
        return Err(bad(ln + 1, "bad header/version"));
    }
    let (ln, vline) = next()?;
    let already_allocated = parse_u64(
        vline.strip_prefix("vids|").ok_or_else(|| bad(ln + 1, "expected vids"))?,
        ln + 1,
    )?;

    // Provider name order → handle re-binding.
    let (ln, pline) = next()?;
    let n_providers = parse_usize(
        pline.strip_prefix("providers|").ok_or_else(|| bad(ln + 1, "expected providers"))?,
        ln + 1,
    )?;
    let mut ordered: Vec<Arc<CloudProvider>> = Vec::with_capacity(n_providers);
    for _ in 0..n_providers {
        let (ln, line) = next()?;
        let name = unesc(
            line.strip_prefix("provider|")
                .ok_or_else(|| bad(ln + 1, "expected provider"))?,
        );
        let handle = providers
            .iter()
            .find(|p| p.name() == name)
            .ok_or_else(|| bad(ln + 1, &format!("no live provider named {name:?}")))?;
        ordered.push(Arc::clone(handle));
    }

    let mut tables = Tables::new(ordered);

    // Chunks. Record layout (12 `|`-fields):
    // chunk|vid|pl|provider|sp|snap_mislead|mislead|stored|logical|stripe|role|liveness
    let (ln, cline) = next()?;
    let n_chunks = parse_usize(
        cline.strip_prefix("chunks|").ok_or_else(|| bad(ln + 1, "expected chunks"))?,
        ln + 1,
    )?;
    for _ in 0..n_chunks {
        let (ln, line) = next()?;
        let line_no = ln + 1;
        let f: Vec<&str> = line.split('|').collect();
        if f.len() != 12 || f[0] != "chunk" {
            return Err(bad(line_no, "expected chunk record"));
        }
        let vid = VirtualId(parse_u64(f[1], line_no)?);
        let pl = parse_pl(f[2], line_no)?;
        let provider_idx = parse_usize(f[3], line_no)?;
        if provider_idx >= tables.providers.len() {
            return Err(bad(line_no, "provider index out of range"));
        }
        let (snapshot_provider_idx, snapshot_vid) = if f[4] == "-" {
            (None, None)
        } else {
            let (i, v) = parse_idx_vid(f[4], line_no)?;
            (Some(i), Some(v))
        };
        let snapshot_mislead = parse_list(f[5], line_no, parse_usize)?;
        let mislead_positions = parse_list(f[6], line_no, parse_usize)?;
        let stored_len = parse_usize(f[7], line_no)?;
        let logical_len = parse_usize(f[8], line_no)?;
        let stripe = if f[9] == "-" {
            None
        } else {
            let (sid, idx) = f[9]
                .split_once(':')
                .ok_or_else(|| bad(line_no, "expected stripe id:index"))?;
            Some(StripeRef {
                stripe_id: parse_usize(sid, line_no)?,
                index: parse_usize(idx, line_no)?,
            })
        };
        let role = match f[10].split_at(1) {
            ("d", serial) => ChunkRole::Data {
                serial: serial
                    .parse()
                    .map_err(|_| bad(line_no, "bad data serial"))?,
            },
            ("p", index) => ChunkRole::Parity {
                index: index
                    .parse()
                    .map_err(|_| bad(line_no, "bad parity index"))?,
            },
            _ => return Err(bad(line_no, "bad role tag")),
        };
        let (removed, replicas) = match f[11].split_once(';') {
            Some(("live", reps)) => (false, parse_list(reps, line_no, parse_idx_vid)?),
            None if f[11] == "live" => (false, Vec::new()),
            None if f[11] == "removed" => (true, Vec::new()),
            _ => return Err(bad(line_no, "bad liveness tag")),
        };
        tables.chunks.push(ChunkEntry {
            vid,
            pl,
            provider_idx,
            snapshot_provider_idx,
            snapshot_vid,
            snapshot_mislead,
            mislead_positions,
            stored_len,
            logical_len,
            stripe,
            role,
            removed,
            replicas,
        });
    }

    // Stripes: stripe|k|level|width|members[|health] — the health tag was
    // added with the degraded-mode engine; 5-field records (older exports)
    // read back as healthy.
    let (ln, sline) = next()?;
    let n_stripes = parse_usize(
        sline.strip_prefix("stripes|").ok_or_else(|| bad(ln + 1, "expected stripes"))?,
        ln + 1,
    )?;
    for _ in 0..n_stripes {
        let (ln, line) = next()?;
        let line_no = ln + 1;
        let f: Vec<&str> = line.split('|').collect();
        if !(f.len() == 5 || f.len() == 6) || f[0] != "stripe" {
            return Err(bad(line_no, "expected stripe record"));
        }
        let members = parse_list(f[4], line_no, parse_usize)?;
        if members.iter().any(|&m| m >= tables.chunks.len()) {
            return Err(bad(line_no, "stripe member out of range"));
        }
        let degraded = match f.get(5) {
            None => false,
            Some(&"healthy") => false,
            Some(&"degraded") => true,
            Some(_) => return Err(bad(line_no, "expected stripe health tag")),
        };
        tables.stripes.push(StripeInfo {
            k: parse_usize(f[1], line_no)?,
            level: parse_raid(f[2], line_no)?,
            members,
            shard_width: parse_usize(f[3], line_no)?,
            degraded,
        });
    }

    // Clients: client|name, then password|p|pl and file|... until the next
    // client or "end".
    let (ln, clline) = next()?;
    let n_clients = parse_usize(
        clline.strip_prefix("clients|").ok_or_else(|| bad(ln + 1, "expected clients"))?,
        ln + 1,
    )?;
    let mut current: Option<(String, ClientEntry)> = None;
    let mut seen_clients = 0usize;
    for (ln, line) in lines {
        let line_no = ln + 1;
        if line == "end" {
            if let Some((name, entry)) = current.take() {
                tables.clients.insert(name, entry);
            }
            if tables.clients.len() != n_clients {
                return Err(bad(line_no, "client count mismatch"));
            }
            return CloudDataDistributor::from_tables(tables, config, already_allocated);
        }
        let f: Vec<&str> = line.split('|').collect();
        match f[0] {
            "client" => {
                if f.len() != 2 {
                    return Err(bad(line_no, "expected client record"));
                }
                if let Some((name, entry)) = current.take() {
                    tables.clients.insert(name, entry);
                }
                seen_clients += 1;
                current = Some((unesc(f[1]), ClientEntry::default()));
            }
            "password" => {
                if f.len() != 3 {
                    return Err(bad(line_no, "expected password record"));
                }
                let (_, entry) = current
                    .as_mut()
                    .ok_or_else(|| bad(line_no, "password outside client"))?;
                entry
                    .passwords
                    .push((unesc(f[1]), parse_pl(f[2], line_no)?));
            }
            "file" => {
                if f.len() != 6 {
                    return Err(bad(line_no, "expected file record"));
                }
                let (_, entry) = current
                    .as_mut()
                    .ok_or_else(|| bad(line_no, "file outside client"))?;
                let chunk_indices = parse_list(f[4], line_no, parse_usize)?;
                if chunk_indices.iter().any(|&c| c >= tables.chunks.len()) {
                    return Err(bad(line_no, "file chunk index out of range"));
                }
                entry.files.insert(
                    unesc(f[1]),
                    FileEntry {
                        pl: parse_pl(f[2], line_no)?,
                        total_len: parse_usize(f[3], line_no)?,
                        chunk_indices,
                        stripe_ids: parse_list(f[5], line_no, parse_usize)?,
                    },
                );
            }
            other => return Err(bad(line_no, &format!("unexpected record {other:?}"))),
        }
        let _ = seen_clients;
    }
    Err(bad(0, "missing end marker"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ChunkSizeSchedule, DistributorConfig};
    use crate::PutOptions;
    use fragcloud_sim::{CostLevel, ProviderProfile};

    fn fleet() -> Vec<Arc<CloudProvider>> {
        (0..6)
            .map(|i| {
                Arc::new(CloudProvider::new(ProviderProfile::new(
                    format!("cp{i}"),
                    PrivacyLevel::High,
                    CostLevel::new(1),
                )))
            })
            .collect()
    }

    fn config() -> DistributorConfig {
        DistributorConfig {
            chunk_sizes: ChunkSizeSchedule::uniform(64),
            stripe_width: 3,
            mislead_rate: 0.05,
            ..Default::default()
        }
    }

    fn body(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 256) as u8).collect()
    }

    #[test]
    fn export_import_roundtrip_preserves_reads() {
        let providers = fleet();
        let d = CloudDataDistributor::new(providers.clone(), config());
        d.register_client("Bob|weird%name").unwrap();
        d.add_password("Bob|weird%name", "p|w%d", PrivacyLevel::High)
            .unwrap();
        let data = body(500);
        {
            let s = d.session("Bob|weird%name", "p|w%d").unwrap();
            s.put_file(
                "file|one",
                &data,
                PrivacyLevel::Moderate,
                PutOptions {
                    replicas: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            s.update_chunk("file|one", 1, &[9u8; 64]).unwrap();
        }

        let snapshot = export_state(&d);
        drop(d); // the distributor dies; the clouds live on

        // Re-bind with the fleet in a DIFFERENT order: names must resolve.
        let mut shuffled = providers.clone();
        shuffled.reverse();
        let d2 = import_state(&snapshot, shuffled, config()).unwrap();
        let s2 = d2.session("Bob|weird%name", "p|w%d").unwrap();
        let got = s2.get_file("file|one").unwrap();
        let mut expected = data.clone();
        expected[64..128].copy_from_slice(&[9u8; 64]);
        assert_eq!(got.data, expected);
        // Snapshot restore still works through the imported state.
        s2.restore_snapshot("file|one", 1).unwrap();
        assert_eq!(s2.get_file("file|one").unwrap().data, data);
        // RAID protection survives the restart.
        let holdings = d2.client_chunks_per_provider("Bob|weird%name").unwrap();
        let victim = holdings.iter().position(|&c| c > 0).unwrap();
        d2.providers()[victim].set_online(false);
        assert_eq!(s2.get_file("file|one").unwrap().data, data);
    }

    #[test]
    fn import_rejects_missing_provider() {
        let d = CloudDataDistributor::new(fleet(), config());
        d.register_client("c").unwrap();
        d.add_password("c", "p", PrivacyLevel::High).unwrap();
        d.session("c", "p")
            .unwrap()
            .put_file("f", &body(64), PrivacyLevel::Low, PutOptions::default())
            .unwrap();
        let snapshot = export_state(&d);
        let short_fleet = fleet().into_iter().take(2).collect();
        assert!(import_state(&snapshot, short_fleet, config()).is_err());
    }

    #[test]
    fn import_rejects_garbage() {
        assert!(import_state("", fleet(), config()).is_err());
        assert!(import_state("fragcloud-state|v999\nend\n", fleet(), config()).is_err());
        assert!(import_state(
            "fragcloud-state|v1\nproviders|0\nchunks|1\nchunk|garbage\n",
            fleet(),
            config()
        )
        .is_err());
    }

    #[test]
    fn parse_errors_are_corrupt_state_not_unknown_client() {
        // Regression: parse failures used to be folded into
        // CoreError::UnknownClient, which callers could not tell apart from
        // a genuine missing-client lookup.
        let err = import_state("", fleet(), config()).unwrap_err();
        assert!(matches!(err, CoreError::CorruptState { .. }), "{err:?}");
        assert!(!matches!(err, CoreError::UnknownClient(_)));

        let err = import_state("fragcloud-state|v999\nend\n", fleet(), config()).unwrap_err();
        assert!(
            matches!(err, CoreError::CorruptState { line: 1, .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("corrupt state at line 1"));
    }

    #[test]
    fn export_is_stable_and_versioned() {
        let d = CloudDataDistributor::new(fleet(), config());
        d.register_client("a").unwrap();
        let s1 = export_state(&d);
        let s2 = export_state(&d);
        assert_eq!(s1, s2);
        assert!(s1.starts_with("fragcloud-state|v1\n"));
        assert!(s1.ends_with("end\n"));
    }

    #[test]
    fn tombstones_survive_roundtrip() {
        let providers = fleet();
        let d = CloudDataDistributor::new(providers.clone(), config());
        d.register_client("c").unwrap();
        d.add_password("c", "p", PrivacyLevel::High).unwrap();
        let data = body(192);
        let s = d.session("c", "p").unwrap();
        s.put_file("f", &data, PrivacyLevel::Low, PutOptions::default())
            .unwrap();
        s.remove_chunk("f", 1).unwrap();
        let snapshot = export_state(&d);
        let d2 = import_state(&snapshot, providers, config()).unwrap();
        let s2 = d2.session("c", "p").unwrap();
        assert!(s2.get_chunk("f", 1).is_err());
        assert_eq!(s2.get_chunk("f", 0).unwrap(), &data[..64]);
    }
}
