//! Distributor-state persistence: export/import of the three tables.
//!
//! §IV-C worries about the Cloud Data Distributor as "the single point of
//! failure". Fig. 2's multiple distributors address availability; this
//! module addresses *durability*: the table state (Tables I–III plus stripe
//! bookkeeping) serializes to a line-oriented text snapshot that a restarted
//! distributor — or a newly promoted secondary — can import, given live
//! handles to the same provider fleet. The providers themselves are the
//! clouds; they persist on their own.
//!
//! The format is versioned, self-delimiting and deliberately boring:
//! one record per line, `|`-separated fields, `%xx` escaping for the two
//! structural characters inside names.
//!
//! ## v2: sharded sections
//!
//! Since the chunk/client tables split into independently locked shards,
//! the snapshot records them shard by shard — chunk and stripe indices
//! are *shard-local*, and a file's row names its owning client because
//! the client directory itself is global (names and passwords are
//! replicated across shards; only files are partitioned):
//!
//! ```text
//! fragcloud-state|v2
//! vids|<allocated>
//! shards|<S>
//! providers|<P>            provider|<name> ×P
//! clients|<C>              client|<name> / password|<pw>|<pl> …
//! shard|0
//!   chunks|<n>             chunk|<row> ×n
//!   stripes|<n>            stripe|<row> ×n
//!   files|<n>              file|<client>|<name>|<row> ×n
//! shard|1 …
//! end
//! ```
//!
//! Import preserves the recorded shard layout verbatim (no re-sharding):
//! `durability.table_shards` only governs *freshly constructed*
//! distributors. The per-row serializers (`chunk_row` and friends) are
//! shared with `core::journal`'s delta records, so a delta line and a
//! snapshot line never drift apart.

use crate::distributor::CloudDataDistributor;
use crate::tables::{ChunkEntry, ChunkRole, ClientEntry, FileEntry, StripeInfo, StripeRef, Tables};
use crate::{CoreError, PrivacyLevel, Result};
use fragcloud_raid::RaidLevel;
use fragcloud_sim::{CloudProvider, VirtualId};
use std::sync::Arc;

/// Snapshot format version.
const VERSION: u32 = 2;

pub(crate) fn esc(s: &str) -> String {
    // Single pass; escaping '%' inline cannot double-escape because the
    // replacement is emitted, never rescanned.
    if !s.contains(['%', '|', '\n']) {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len() + 16);
    for ch in s.chars() {
        match ch {
            '%' => out.push_str("%25"),
            '|' => out.push_str("%7C"),
            '\n' => out.push_str("%0A"),
            _ => out.push(ch),
        }
    }
    out
}

pub(crate) fn unesc(s: &str) -> String {
    s.replace("%0A", "\n")
        .replace("%7C", "|")
        .replace("%25", "%")
}

/// Snapshot parse failures, as the dedicated corruption variant (the
/// journal parser in `crate::journal` reports through the same one).
fn bad(line_no: usize, why: &str) -> CoreError {
    CoreError::CorruptState {
        line: line_no,
        why: why.to_string(),
    }
}

// The stripe-row level tag is `RaidLevel`'s `Display` form: `none`,
// `raid5`, `raid6`, or `rs<m>` for general RS(k,m) geometries. The default
// levels keep their historical tags, so snapshots written before RS landed
// parse unchanged (and vice versa for parity ≤ 2).
fn parse_raid(s: &str, line_no: usize) -> Result<RaidLevel> {
    match s {
        "none" => Ok(RaidLevel::None),
        "raid5" => Ok(RaidLevel::Raid5),
        "raid6" => Ok(RaidLevel::Raid6),
        other => match other.strip_prefix("rs").and_then(|m| m.parse::<u8>().ok()) {
            // Canonicalize: `rs1`/`rs2` written by hand map back onto the
            // dedicated codes, matching `RaidLevel::for_parity_shards`.
            Some(m) if m > 0 => Ok(RaidLevel::for_parity_shards(m as usize)),
            _ => Err(bad(line_no, &format!("unknown raid level {other:?}"))),
        },
    }
}

/// Writes a `,`-joined list of `Display` items without intermediate
/// allocations.
fn push_list<T: std::fmt::Display>(out: &mut String, items: impl Iterator<Item = T>) {
    use std::fmt::Write as _;
    for (k, item) in items.enumerate() {
        if k > 0 {
            out.push(',');
        }
        let _ = write!(out, "{item}");
    }
}

/// Appends one chunk entry's 11 `|`-joined payload fields to `out`:
/// `vid|pl|provider|sp|snap_mislead|mislead|stored|logical|stripe|role|liveness`.
/// Shared between snapshot export and journal delta records; written
/// in-place because delta capture runs on the commit hot path.
pub(crate) fn chunk_row_into(out: &mut String, c: &ChunkEntry) {
    use std::fmt::Write as _;
    let _ = write!(out, "{}|{}|{}|", c.vid.0, c.pl.as_u8(), c.provider_idx);
    match c.snapshot_provider_idx.zip(c.snapshot_vid) {
        Some((i, v)) => {
            let _ = write!(out, "{}:{}", i, v.0);
        }
        None => out.push('-'),
    }
    out.push('|');
    push_list(out, c.snapshot_mislead.iter());
    out.push('|');
    push_list(out, c.mislead_positions.iter());
    let _ = write!(out, "|{}|{}|", c.stored_len, c.logical_len);
    match c.stripe {
        Some(s) => {
            let _ = write!(out, "{}:{}", s.stripe_id, s.index);
        }
        None => out.push('-'),
    }
    out.push('|');
    match c.role {
        ChunkRole::Data { serial } => {
            let _ = write!(out, "d{serial}");
        }
        ChunkRole::Parity { index } => {
            let _ = write!(out, "p{index}");
        }
    }
    out.push('|');
    if c.removed {
        out.push_str("removed");
    } else {
        out.push_str("live");
        for (k, (i, v)) in c.replicas.iter().enumerate() {
            out.push(if k == 0 { ';' } else { ',' });
            let _ = write!(out, "{}:{}", i, v.0);
        }
    }
}

/// [`chunk_row_into`] as an owned string (snapshot export convenience).
pub(crate) fn chunk_row(c: &ChunkEntry) -> String {
    let mut out = String::with_capacity(64);
    chunk_row_into(&mut out, c);
    out
}

/// Parses the 11 payload fields produced by [`chunk_row`]. Provider-index
/// range checks are the caller's job (delta replay may legitimately see
/// placeholders filled later).
pub(crate) fn parse_chunk_fields(f: &[&str], line_no: usize) -> Result<ChunkEntry> {
    if f.len() != 11 {
        return Err(bad(line_no, "expected 11 chunk fields"));
    }
    let vid = VirtualId(parse_u64(f[0], line_no)?);
    let pl = parse_pl(f[1], line_no)?;
    let provider_idx = parse_usize(f[2], line_no)?;
    let (snapshot_provider_idx, snapshot_vid) = if f[3] == "-" {
        (None, None)
    } else {
        let (i, v) = parse_idx_vid(f[3], line_no)?;
        (Some(i), Some(v))
    };
    let snapshot_mislead = parse_list(f[4], line_no, parse_usize)?;
    let mislead_positions = parse_list(f[5], line_no, parse_usize)?;
    let stored_len = parse_usize(f[6], line_no)?;
    let logical_len = parse_usize(f[7], line_no)?;
    let stripe = if f[8] == "-" {
        None
    } else {
        let (sid, idx) = f[8]
            .split_once(':')
            .ok_or_else(|| bad(line_no, "expected stripe id:index"))?;
        Some(StripeRef {
            stripe_id: parse_usize(sid, line_no)?,
            index: parse_usize(idx, line_no)?,
        })
    };
    let role = match f[9].split_at(1) {
        ("d", serial) => ChunkRole::Data {
            serial: serial
                .parse()
                .map_err(|_| bad(line_no, "bad data serial"))?,
        },
        ("p", index) => ChunkRole::Parity {
            index: index
                .parse()
                .map_err(|_| bad(line_no, "bad parity index"))?,
        },
        _ => return Err(bad(line_no, "bad role tag")),
    };
    let (removed, replicas) = match f[10].split_once(';') {
        Some(("live", reps)) => (false, parse_list(reps, line_no, parse_idx_vid)?),
        None if f[10] == "live" => (false, Vec::new()),
        None if f[10] == "removed" => (true, Vec::new()),
        _ => return Err(bad(line_no, "bad liveness tag")),
    };
    Ok(ChunkEntry {
        vid,
        pl,
        provider_idx,
        snapshot_provider_idx,
        snapshot_vid,
        snapshot_mislead,
        mislead_positions,
        stored_len,
        logical_len,
        stripe,
        role,
        removed,
        replicas,
    })
}

/// Appends one stripe's 5 payload fields to `out`:
/// `k|level|width|members|health`.
pub(crate) fn stripe_row_into(out: &mut String, s: &StripeInfo) {
    use std::fmt::Write as _;
    let _ = write!(out, "{}|{}|{}|", s.k, s.level, s.shard_width);
    push_list(out, s.members.iter());
    out.push('|');
    out.push_str(if s.degraded { "degraded" } else { "healthy" });
}

/// [`stripe_row_into`] as an owned string (snapshot export convenience).
pub(crate) fn stripe_row(s: &StripeInfo) -> String {
    let mut out = String::with_capacity(32);
    stripe_row_into(&mut out, s);
    out
}

/// Parses the 5 payload fields produced by [`stripe_row`]. Member range
/// checks are the caller's job.
pub(crate) fn parse_stripe_fields(f: &[&str], line_no: usize) -> Result<StripeInfo> {
    if f.len() != 5 {
        return Err(bad(line_no, "expected 5 stripe fields"));
    }
    let degraded = match f[4] {
        "healthy" => false,
        "degraded" => true,
        _ => return Err(bad(line_no, "expected stripe health tag")),
    };
    Ok(StripeInfo {
        k: parse_usize(f[0], line_no)?,
        level: parse_raid(f[1], line_no)?,
        members: parse_list(f[3], line_no, parse_usize)?,
        shard_width: parse_usize(f[2], line_no)?,
        degraded,
    })
}

/// Appends one file entry's 4 payload fields to `out`:
/// `pl|total_len|chunks|stripes`.
pub(crate) fn file_row_into(out: &mut String, fe: &FileEntry) {
    use std::fmt::Write as _;
    let _ = write!(out, "{}|{}|", fe.pl.as_u8(), fe.total_len);
    push_list(out, fe.chunk_indices.iter());
    out.push('|');
    push_list(out, fe.stripe_ids.iter());
}

/// [`file_row_into`] as an owned string (snapshot export convenience).
pub(crate) fn file_row(fe: &FileEntry) -> String {
    let mut out = String::with_capacity(32);
    file_row_into(&mut out, fe);
    out
}

/// Parses the 4 payload fields produced by [`file_row`]. Chunk-index
/// range checks are the caller's job.
pub(crate) fn parse_file_fields(f: &[&str], line_no: usize) -> Result<FileEntry> {
    if f.len() != 4 {
        return Err(bad(line_no, "expected 4 file fields"));
    }
    Ok(FileEntry {
        pl: parse_pl(f[0], line_no)?,
        total_len: parse_usize(f[1], line_no)?,
        chunk_indices: parse_list(f[2], line_no, parse_usize)?,
        stripe_ids: parse_list(f[3], line_no, parse_usize)?,
    })
}

/// Serializes the distributor's table state to the snapshot text format.
pub fn export_state(d: &CloudDataDistributor) -> String {
    let shards = d.lock_all_read();
    let mut out = String::new();
    out.push_str(&format!("fragcloud-state|v{VERSION}\n"));
    out.push_str(&format!("vids|{}\n", d.vids_allocated()));
    out.push_str(&format!("shards|{}\n", shards.len()));
    // Providers are referenced by name so import can re-bind live handles.
    // Every shard carries the same fleet; shard 0 speaks for all.
    let fleet = &shards[0].providers;
    out.push_str(&format!("providers|{}\n", fleet.len()));
    for p in fleet {
        out.push_str(&format!("provider|{}\n", esc(p.name())));
    }
    // Global client directory: names + passwords (replicated identically
    // across shards; shard 0 speaks for all). Files follow per shard.
    let mut names: Vec<&String> = shards[0].clients.keys().collect();
    names.sort();
    out.push_str(&format!("clients|{}\n", names.len()));
    for name in &names {
        out.push_str(&format!("client|{}\n", esc(name)));
        for (pass, pl) in &shards[0].clients[*name].passwords {
            out.push_str(&format!("password|{}|{}\n", esc(pass), pl.as_u8()));
        }
    }
    // Per-shard tables.
    for (si, st) in shards.iter().enumerate() {
        out.push_str(&format!("shard|{si}\n"));
        out.push_str(&format!("chunks|{}\n", st.chunks.len()));
        for c in &st.chunks {
            out.push_str(&format!("chunk|{}\n", chunk_row(c)));
        }
        out.push_str(&format!("stripes|{}\n", st.stripes.len()));
        for s in &st.stripes {
            out.push_str(&format!("stripe|{}\n", stripe_row(s)));
        }
        let mut files: Vec<(&String, &String, &FileEntry)> = Vec::new();
        for name in &names {
            for (fname, fe) in &st.clients[*name].files {
                files.push((name, fname, fe));
            }
        }
        files.sort_by_key(|(c, f, _)| ((*c).clone(), (*f).clone()));
        out.push_str(&format!("files|{}\n", files.len()));
        for (cname, fname, fe) in files {
            out.push_str(&format!(
                "file|{}|{}|{}\n",
                esc(cname),
                esc(fname),
                file_row(fe)
            ));
        }
    }
    out.push_str("end\n");
    out
}

fn parse_usize(s: &str, line_no: usize) -> Result<usize> {
    s.parse().map_err(|_| bad(line_no, "expected integer"))
}

fn parse_u64(s: &str, line_no: usize) -> Result<u64> {
    s.parse().map_err(|_| bad(line_no, "expected integer"))
}

fn parse_pl(s: &str, line_no: usize) -> Result<PrivacyLevel> {
    s.parse::<u8>()
        .ok()
        .and_then(PrivacyLevel::from_u8)
        .ok_or_else(|| bad(line_no, "bad privacy level"))
}

fn parse_idx_vid(s: &str, line_no: usize) -> Result<(usize, VirtualId)> {
    let (i, v) = s
        .split_once(':')
        .ok_or_else(|| bad(line_no, "expected idx:vid"))?;
    Ok((parse_usize(i, line_no)?, VirtualId(parse_u64(v, line_no)?)))
}

fn parse_list<T>(s: &str, line_no: usize, f: impl Fn(&str, usize) -> Result<T>) -> Result<Vec<T>> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',').map(|x| f(x, line_no)).collect()
}

/// Reconstructs table state from a snapshot, re-binding live provider
/// handles **by name**. The fleet must contain every provider the snapshot
/// references, in any order. The snapshot's shard layout is preserved
/// verbatim; `config.durability.table_shards` does not re-shard imports.
pub fn import_state(
    snapshot: &str,
    providers: Vec<Arc<CloudProvider>>,
    config: crate::DistributorConfig,
) -> Result<CloudDataDistributor> {
    let mut lines = snapshot.lines().enumerate().peekable();
    macro_rules! next {
        () => {
            lines.next().ok_or_else(|| bad(0, "truncated snapshot"))
        };
    }
    macro_rules! counted {
        ($prefix:literal) => {{
            let (ln, line) = next!()?;
            parse_usize(
                line.strip_prefix($prefix)
                    .ok_or_else(|| bad(ln + 1, concat!("expected ", $prefix, "count")))?,
                ln + 1,
            )?
        }};
    }

    // Header.
    let (ln, header) = next!()?;
    if header != format!("fragcloud-state|v{VERSION}") {
        return Err(bad(ln + 1, "bad header/version"));
    }
    let (ln, vline) = next!()?;
    let already_allocated = parse_u64(
        vline
            .strip_prefix("vids|")
            .ok_or_else(|| bad(ln + 1, "expected vids"))?,
        ln + 1,
    )?;
    let n_shards = counted!("shards|");
    if n_shards == 0 {
        return Err(bad(0, "snapshot must have at least one shard"));
    }

    // Provider name order → handle re-binding.
    let n_providers = counted!("providers|");
    let mut ordered: Vec<Arc<CloudProvider>> = Vec::with_capacity(n_providers);
    for _ in 0..n_providers {
        let (ln, line) = next!()?;
        let name = unesc(
            line.strip_prefix("provider|")
                .ok_or_else(|| bad(ln + 1, "expected provider"))?,
        );
        let handle = providers
            .iter()
            .find(|p| p.name() == name)
            .ok_or_else(|| bad(ln + 1, &format!("no live provider named {name:?}")))?;
        ordered.push(Arc::clone(handle));
    }

    // Global client directory (names + passwords; files come per shard).
    let n_clients = counted!("clients|");
    let mut directory: Vec<(String, ClientEntry)> = Vec::with_capacity(n_clients);
    while let Some((_, line)) = lines.peek() {
        if line.starts_with("shard|") || *line == "end" {
            break;
        }
        let (ln, line) = next!()?;
        let line_no = ln + 1;
        let f: Vec<&str> = line.split('|').collect();
        match f[0] {
            "client" => {
                if f.len() != 2 {
                    return Err(bad(line_no, "expected client record"));
                }
                directory.push((unesc(f[1]), ClientEntry::default()));
            }
            "password" => {
                if f.len() != 3 {
                    return Err(bad(line_no, "expected password record"));
                }
                let (_, entry) = directory
                    .last_mut()
                    .ok_or_else(|| bad(line_no, "password outside client"))?;
                entry
                    .passwords
                    .push((unesc(f[1]), parse_pl(f[2], line_no)?));
            }
            other => return Err(bad(line_no, &format!("unexpected record {other:?}"))),
        }
    }
    if directory.len() != n_clients {
        return Err(bad(0, "client count mismatch"));
    }

    // Per-shard tables; every shard replicates the directory.
    let mut shards: Vec<Tables> = Vec::with_capacity(n_shards);
    for expect_si in 0..n_shards {
        let (ln, line) = next!()?;
        if line != format!("shard|{expect_si}") {
            return Err(bad(ln + 1, "expected shard header"));
        }
        let mut tables = Tables::new(ordered.clone());
        for (name, entry) in &directory {
            tables.clients.insert(name.clone(), entry.clone());
        }

        let n_chunks = counted!("chunks|");
        for _ in 0..n_chunks {
            let (ln, line) = next!()?;
            let line_no = ln + 1;
            let f: Vec<&str> = line.split('|').collect();
            if f.first() != Some(&"chunk") {
                return Err(bad(line_no, "expected chunk record"));
            }
            let c = parse_chunk_fields(&f[1..], line_no)?;
            if c.provider_idx >= tables.providers.len() {
                return Err(bad(line_no, "provider index out of range"));
            }
            tables.chunks.push(c);
        }

        let n_stripes = counted!("stripes|");
        for _ in 0..n_stripes {
            let (ln, line) = next!()?;
            let line_no = ln + 1;
            let f: Vec<&str> = line.split('|').collect();
            if f.first() != Some(&"stripe") {
                return Err(bad(line_no, "expected stripe record"));
            }
            let s = parse_stripe_fields(&f[1..], line_no)?;
            if s.members.iter().any(|&m| m >= tables.chunks.len()) {
                return Err(bad(line_no, "stripe member out of range"));
            }
            tables.stripes.push(s);
        }

        let n_files = counted!("files|");
        for _ in 0..n_files {
            let (ln, line) = next!()?;
            let line_no = ln + 1;
            let f: Vec<&str> = line.split('|').collect();
            if f.first() != Some(&"file") || f.len() != 7 {
                return Err(bad(line_no, "expected file record"));
            }
            let fe = parse_file_fields(&f[3..], line_no)?;
            if fe.chunk_indices.iter().any(|&c| c >= tables.chunks.len()) {
                return Err(bad(line_no, "file chunk index out of range"));
            }
            let cname = unesc(f[1]);
            let entry = tables
                .clients
                .get_mut(&cname)
                .ok_or_else(|| bad(line_no, "file for unknown client"))?;
            entry.files.insert(unesc(f[2]), fe);
        }
        shards.push(tables);
    }

    let (ln, line) = next!()?;
    if line != "end" {
        return Err(bad(ln + 1, "missing end marker"));
    }
    CloudDataDistributor::from_shards(shards, config, already_allocated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ChunkSizeSchedule, DistributorConfig};
    use crate::PutOptions;
    use fragcloud_sim::{CostLevel, ProviderProfile};

    fn fleet() -> Vec<Arc<CloudProvider>> {
        (0..6)
            .map(|i| {
                Arc::new(CloudProvider::new(ProviderProfile::new(
                    format!("cp{i}"),
                    PrivacyLevel::High,
                    CostLevel::new(1),
                )))
            })
            .collect()
    }

    fn config() -> DistributorConfig {
        DistributorConfig {
            chunk_sizes: ChunkSizeSchedule::uniform(64),
            stripe_width: 3,
            mislead_rate: 0.05,
            ..Default::default()
        }
    }

    fn body(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 256) as u8).collect()
    }

    #[test]
    fn export_import_roundtrip_preserves_reads() {
        let providers = fleet();
        let d = CloudDataDistributor::new(providers.clone(), config());
        d.register_client("Bob|weird%name").unwrap();
        d.add_password("Bob|weird%name", "p|w%d", PrivacyLevel::High)
            .unwrap();
        let data = body(500);
        {
            let s = d.session("Bob|weird%name", "p|w%d").unwrap();
            s.put_file(
                "file|one",
                &data,
                PrivacyLevel::Moderate,
                PutOptions {
                    replicas: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            s.update_chunk("file|one", 1, &[9u8; 64]).unwrap();
        }

        let snapshot = export_state(&d);
        drop(d); // the distributor dies; the clouds live on

        // Re-bind with the fleet in a DIFFERENT order: names must resolve.
        let mut shuffled = providers.clone();
        shuffled.reverse();
        let d2 = import_state(&snapshot, shuffled, config()).unwrap();
        let s2 = d2.session("Bob|weird%name", "p|w%d").unwrap();
        let got = s2.get_file("file|one").unwrap();
        let mut expected = data.clone();
        expected[64..128].copy_from_slice(&[9u8; 64]);
        assert_eq!(got.data, expected);
        // Snapshot restore still works through the imported state.
        s2.restore_snapshot("file|one", 1).unwrap();
        assert_eq!(s2.get_file("file|one").unwrap().data, data);
        // RAID protection survives the restart.
        let holdings = d2.client_chunks_per_provider("Bob|weird%name").unwrap();
        let victim = holdings.iter().position(|&c| c > 0).unwrap();
        d2.providers()[victim].set_online(false);
        assert_eq!(s2.get_file("file|one").unwrap().data, data);
    }

    #[test]
    fn import_preserves_shard_layout() {
        // A 4-shard export re-imported under a 2-shard config keeps its
        // 4 shards: table_shards only governs fresh construction.
        let providers = fleet();
        let d = CloudDataDistributor::new(providers.clone(), config());
        d.register_client("c").unwrap();
        d.add_password("c", "p", PrivacyLevel::High).unwrap();
        let s = d.session("c", "p").unwrap();
        for i in 0..4 {
            s.put_file(
                &format!("f{i}"),
                &body(200),
                PrivacyLevel::Low,
                PutOptions::default(),
            )
            .unwrap();
        }
        assert_eq!(d.shard_count(), 4);
        let snapshot = export_state(&d);
        let mut cfg2 = config();
        cfg2.durability = cfg2.durability.with_table_shards(2);
        let d2 = import_state(&snapshot, providers, cfg2).unwrap();
        assert_eq!(d2.shard_count(), 4);
        let s2 = d2.session("c", "p").unwrap();
        for i in 0..4 {
            assert_eq!(s2.get_file(&format!("f{i}")).unwrap().data, body(200));
        }
    }

    #[test]
    fn import_rejects_missing_provider() {
        let d = CloudDataDistributor::new(fleet(), config());
        d.register_client("c").unwrap();
        d.add_password("c", "p", PrivacyLevel::High).unwrap();
        d.session("c", "p")
            .unwrap()
            .put_file("f", &body(64), PrivacyLevel::Low, PutOptions::default())
            .unwrap();
        let snapshot = export_state(&d);
        let short_fleet = fleet().into_iter().take(2).collect();
        assert!(import_state(&snapshot, short_fleet, config()).is_err());
    }

    #[test]
    fn import_rejects_garbage() {
        assert!(import_state("", fleet(), config()).is_err());
        assert!(import_state("fragcloud-state|v999\nend\n", fleet(), config()).is_err());
        assert!(import_state(
            "fragcloud-state|v2\nvids|0\nshards|1\nproviders|0\nclients|0\nshard|0\nchunks|1\nchunk|garbage\n",
            fleet(),
            config()
        )
        .is_err());
    }

    #[test]
    fn parse_errors_are_corrupt_state_not_unknown_client() {
        // Regression: parse failures used to be folded into
        // CoreError::UnknownClient, which callers could not tell apart from
        // a genuine missing-client lookup.
        let err = import_state("", fleet(), config()).unwrap_err();
        assert!(matches!(err, CoreError::CorruptState { .. }), "{err:?}");
        assert!(!matches!(err, CoreError::UnknownClient(_)));

        let err = import_state("fragcloud-state|v999\nend\n", fleet(), config()).unwrap_err();
        assert!(
            matches!(err, CoreError::CorruptState { line: 1, .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("corrupt state at line 1"));
    }

    #[test]
    fn export_is_stable_and_versioned() {
        let d = CloudDataDistributor::new(fleet(), config());
        d.register_client("a").unwrap();
        let s1 = export_state(&d);
        let s2 = export_state(&d);
        assert_eq!(s1, s2);
        assert!(s1.starts_with("fragcloud-state|v2\n"));
        assert!(s1.ends_with("end\n"));
    }

    #[test]
    fn tombstones_survive_roundtrip() {
        let providers = fleet();
        let d = CloudDataDistributor::new(providers.clone(), config());
        d.register_client("c").unwrap();
        d.add_password("c", "p", PrivacyLevel::High).unwrap();
        let data = body(192);
        let s = d.session("c", "p").unwrap();
        s.put_file("f", &data, PrivacyLevel::Low, PutOptions::default())
            .unwrap();
        s.remove_chunk("f", 1).unwrap();
        let snapshot = export_state(&d);
        let d2 = import_state(&snapshot, providers, config()).unwrap();
        let s2 = d2.session("c", "p").unwrap();
        assert!(s2.get_chunk("f", 1).is_err());
        assert_eq!(s2.get_chunk("f", 0).unwrap(), &data[..64]);
    }
}
