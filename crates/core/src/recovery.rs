//! Crash recovery: replay a write-ahead [`Journal`] — checkpoint plus
//! per-op delta records — against a live provider fleet.
//!
//! §IV-C names the Cloud Data Distributor as the single point of failure.
//! [`persist`] makes *quiescent* state durable; this
//! module makes a distributor that died **mid-operation** recoverable.
//! The journal's checkpoint is the last compacted snapshot; every op
//! after it closed with a **delta record** (the table rows it touched) or
//! — when the crash hit inside it — is dangling. Recovery proceeds in two
//! passes:
//!
//! 1. **Delta replay.** Unflushed close records are discarded (what never
//!    reached the sink does not exist), the checkpoint is imported — or
//!    the last inline `full|` snapshot delta, if one postdates it — and
//!    every durable close delta after the base is applied row-by-row:
//!    chunk/stripe arena upserts, file upserts and deletions, and a
//!    virtual-id watermark fast-forward so the recovered allocator can
//!    never re-issue a journaled id.
//! 2. **Dangling resolution.**
//!    - dangling `put` / `repair` / `migrate` ops **roll back**: their
//!      freshly allocated virtual ids (logged *before* the uploads) are
//!      garbage-collected from every provider still holding them, so no
//!      orphan objects survive;
//!    - dangling `remove` ops **roll forward**: some doomed objects are
//!      already gone, so the only consistent direction is to finish the
//!      deletes and complete the table removal;
//!    - committed ops are verified present (their files must still be
//!      readable within RAID fault tolerance) and their doomed
//!      stragglers — e.g. a migration's source copy whose post-commit
//!      delete never ran — are collected.
//!
//! Everything is best-effort and telemetry-counted; what cannot be fixed
//! (an orphan on an offline provider, a committed file that does not
//! verify, a corrupt delta row) lands in
//! [`RecoveryReport::unrecoverable`] instead of aborting the recovery.

use crate::config::DistributorConfig;
use crate::distributor::CloudDataDistributor;
use crate::journal::{Journal, OpKind, OpStatus, OpView};
use crate::persist;
use crate::tables::{ChunkEntry, ChunkRole, StripeInfo};
use crate::Result;
use fragcloud_raid::RaidLevel;
use fragcloud_sim::{CloudProvider, ObjectStore, PrivacyLevel, VirtualId};
use fragcloud_telemetry::{span, TelemetryHandle};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Outcome totals of one recovery run. All counters are exact: the
/// crash-matrix harness asserts them against the journal's op list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Ops found in the journal (any status).
    pub ops_seen: usize,
    /// Committed ops verified (plus dangling ops whose effects turned out
    /// fully captured by a later checkpoint).
    pub replayed: usize,
    /// Dangling put/repair/migrate ops rolled back.
    pub rolled_back: usize,
    /// Dangling remove ops rolled forward to completion.
    pub rolled_forward: usize,
    /// Ops the live distributor had already aborted and rolled back.
    pub aborted: usize,
    /// Orphan objects garbage-collected from providers.
    pub orphans_collected: usize,
    /// Failures recovery could not repair: orphan deletes that failed
    /// (offline provider), committed files that no longer verify, and
    /// delta rows that would not parse or apply.
    pub unrecoverable: usize,
}

/// How recovery resolved one op (drives journal close-out and the
/// file-presence expectations).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Resolution {
    Replayed,
    RolledBack,
    RolledForward,
    Aborted,
}

/// Rebuilds a distributor from `journal` (checkpoint + delta records)
/// over a live provider fleet, resolving every dangling op. On success
/// the journal is compacted to the post-recovery snapshot and re-attached
/// to the returned distributor, so operation — and journaling — can
/// resume.
///
/// Fails only when the base snapshot itself cannot be imported (corrupt
/// snapshot, missing provider, invalid config); per-op and per-row
/// trouble is reported, not raised.
pub fn recover(
    journal: Arc<Journal>,
    providers: Vec<Arc<CloudProvider>>,
    config: DistributorConfig,
) -> Result<(CloudDataDistributor, RecoveryReport)> {
    recover_with(journal, providers, config, &TelemetryHandle::disabled())
}

/// [`recover`] with a telemetry handle: the run is spanned (`recover`)
/// and counted (`recovery_runs_total`, `recovery_ops_*`,
/// `recovery_orphans_collected`, `recovery_unrecoverable`).
pub fn recover_with(
    journal: Arc<Journal>,
    providers: Vec<Arc<CloudProvider>>,
    config: DistributorConfig,
    tel: &TelemetryHandle,
) -> Result<(CloudDataDistributor, RecoveryReport)> {
    let _op = span!(tel, "recover");

    // Close records appended but never covered by a group flush are gone:
    // the distributor never acked those ops, and they must read as
    // dangling so they resolve below.
    journal.discard_unflushed();

    // Pick the replay base: the compacted checkpoint, unless a later
    // close carried an inline `full|` snapshot (the repair escape hatch),
    // which supersedes both the checkpoint and every delta row before it.
    let mut base = journal.checkpoint();
    let mut pending: Vec<String> = Vec::new();
    let mut watermark: u64 = 0;
    for (_, _, delta) in journal.closed_deltas() {
        for line in delta.lines() {
            if let Some(rest) = line.strip_prefix("full|") {
                base = persist::unesc(rest);
                pending.clear();
            } else if let Some(w) = line.strip_prefix("vids|") {
                watermark = watermark.max(w.parse().unwrap_or(0));
            } else if !line.is_empty() {
                pending.push(line.to_string());
            }
        }
    }

    let d = if base.is_empty() {
        CloudDataDistributor::try_new(providers, config)?
    } else {
        persist::import_state(&base, providers, config)?
    };

    let mut report = RecoveryReport::default();

    // Delta replay: idempotent row upserts in close order. A row that
    // fails to parse or lands out of range is counted, not fatal — the
    // op-level verification below catches any file it leaves broken.
    for line in &pending {
        if apply_delta_line(&d, line).is_none() {
            report.unrecoverable += 1;
        }
    }

    // The allocator must move past every id any closed op journaled, even
    // when the base snapshot predates the allocation. Over-skipping is
    // harmless; re-issuing is not.
    let allocated = d.vids_allocated();
    if watermark > allocated {
        d.skip_vids(watermark - allocated);
    }

    let ops = journal.ops();
    report.ops_seen = ops.len();

    // The crashed incarnation allocated (and journaled) ids that no close
    // delta's watermark covers — dangling ops never committed. Skip past
    // them too so the recovered allocator can never re-issue one.
    let dangling_allocs: u64 = ops
        .iter()
        .filter(|o| o.status == OpStatus::Dangling)
        .map(|o| o.fresh.len() as u64)
        .sum();
    d.skip_vids(dangling_allocs);

    let mut resolutions: Vec<(OpView, Resolution)> = Vec::with_capacity(ops.len());
    for op in ops {
        let resolution = match op.status {
            OpStatus::Aborted => Resolution::Aborted,
            OpStatus::Committed => {
                // Doomed stragglers: a committed migration's source copy
                // whose post-commit delete never ran, a removal's object
                // on a provider that has come back online.
                gc_vids(&d, &op.doomed, &mut report, tel);
                Resolution::Replayed
            }
            OpStatus::Dangling => match op.kind {
                OpKind::Remove => {
                    // Table removal first: until the entries are
                    // tombstoned, the doomed vids look referenced and the
                    // GC would (correctly) refuse to collect them.
                    complete_remove(&d, &op.client, &op.target);
                    gc_vids(&d, &op.doomed, &mut report, tel);
                    Resolution::RolledForward
                }
                OpKind::Put | OpKind::Repair | OpKind::Migrate => {
                    let referenced = d.referenced_vids();
                    if !op.fresh.is_empty() && op.fresh.iter().all(|v| referenced.contains(v)) {
                        // Every upload is table-referenced: a concurrent
                        // later commit's delta (or full snapshot) captured
                        // this op's effects, so it is effectively
                        // committed.
                        Resolution::Replayed
                    } else {
                        if op.kind == OpKind::Put {
                            strip_put(&d, &op);
                        }
                        gc_vids(&d, &op.fresh, &mut report, tel);
                        Resolution::RolledBack
                    }
                }
            },
        };
        match resolution {
            Resolution::Replayed => report.replayed += 1,
            Resolution::RolledBack => report.rolled_back += 1,
            Resolution::RolledForward => report.rolled_forward += 1,
            Resolution::Aborted => report.aborted += 1,
        }
        resolutions.push((op, resolution));
    }

    verify_expectations(&d, &resolutions, &mut report);

    // Close out the dangling ops (with empty deltas — their effects are
    // already in the compaction snapshot below) and compact: the
    // journal's new baseline is the post-recovery snapshot, and
    // journaling resumes on the recovered distributor.
    for (op, resolution) in &resolutions {
        if op.status == OpStatus::Dangling {
            match resolution {
                Resolution::RolledForward | Resolution::Replayed => {
                    journal.commit(op.id, String::new());
                }
                _ => journal.abort(op.id, String::new()),
            }
        }
    }
    journal.compact(persist::export_state(&d));
    d.attach_journal(Arc::clone(&journal));

    tel.incr("recovery_runs_total");
    tel.add("recovery_ops_replayed", report.replayed as u64);
    tel.add("recovery_ops_rolled_back", report.rolled_back as u64);
    tel.add("recovery_ops_rolled_forward", report.rolled_forward as u64);
    tel.add("recovery_unrecoverable", report.unrecoverable as u64);
    Ok((d, report))
}

/// Arena filler for a chunk slot a delta skipped over (the op that wrote
/// the lower index closed later, or its delta was compacted into the
/// base). Reads as a tombstone until a row claims the slot.
fn placeholder_chunk() -> ChunkEntry {
    ChunkEntry {
        vid: VirtualId(u64::MAX),
        pl: PrivacyLevel::Public,
        provider_idx: 0,
        snapshot_provider_idx: None,
        snapshot_vid: None,
        snapshot_mislead: Vec::new(),
        mislead_positions: Vec::new(),
        stored_len: 0,
        logical_len: 0,
        stripe: None,
        role: ChunkRole::Data { serial: 0 },
        removed: true,
        replicas: Vec::new(),
    }
}

/// Arena filler for a stripe slot a delta skipped over. Empty membership:
/// nothing references it until a row claims the slot.
fn placeholder_stripe() -> StripeInfo {
    StripeInfo {
        k: 0,
        level: RaidLevel::None,
        members: Vec::new(),
        shard_width: 0,
        degraded: false,
    }
}

/// Applies one delta row to the recovered tables. Rows address arena
/// slots by ⟨shard, index⟩; gaps are filled with tombstone placeholders
/// so replay order never matters. Returns `None` on a malformed or
/// out-of-range row.
fn apply_delta_line(d: &CloudDataDistributor, line: &str) -> Option<()> {
    let f: Vec<&str> = line.split('|').collect();
    match f[0] {
        "chunk" => {
            if f.len() != 14 {
                return None;
            }
            let shard: usize = f[1].parse().ok()?;
            let idx: usize = f[2].parse().ok()?;
            let entry = persist::parse_chunk_fields(&f[3..], 0).ok()?;
            if shard >= d.shard_count() {
                return None;
            }
            let mut st = d.shard_write(shard);
            if entry.provider_idx >= st.providers.len() {
                return None;
            }
            while st.chunks.len() <= idx {
                st.chunks.push(placeholder_chunk());
            }
            st.chunks[idx] = entry;
        }
        "stripe" => {
            if f.len() != 8 {
                return None;
            }
            let shard: usize = f[1].parse().ok()?;
            let idx: usize = f[2].parse().ok()?;
            let entry = persist::parse_stripe_fields(&f[3..], 0).ok()?;
            if shard >= d.shard_count() {
                return None;
            }
            let mut st = d.shard_write(shard);
            while st.stripes.len() <= idx {
                st.stripes.push(placeholder_stripe());
            }
            st.stripes[idx] = entry;
        }
        "file" => {
            if f.len() != 8 {
                return None;
            }
            let shard: usize = f[1].parse().ok()?;
            let client = persist::unesc(f[2]);
            let name = persist::unesc(f[3]);
            let entry = persist::parse_file_fields(&f[4..], 0).ok()?;
            if shard >= d.shard_count() {
                return None;
            }
            let mut st = d.shard_write(shard);
            st.clients
                .entry(client)
                .or_default()
                .files
                .insert(name, entry);
        }
        "filedel" => {
            if f.len() != 4 {
                return None;
            }
            let shard: usize = f[1].parse().ok()?;
            let client = persist::unesc(f[2]);
            let name = persist::unesc(f[3]);
            if shard >= d.shard_count() {
                return None;
            }
            let mut st = d.shard_write(shard);
            if let Some(entry) = st.clients.get_mut(&client) {
                entry.files.remove(&name);
            }
        }
        _ => return None,
    }
    Some(())
}

/// Deletes `vids` from every provider still holding them, skipping any
/// id the tables reference (live data is never collected). Successful
/// deletes count as orphans collected; failed ones (offline provider) as
/// unrecoverable.
fn gc_vids(
    d: &CloudDataDistributor,
    vids: &[VirtualId],
    report: &mut RecoveryReport,
    tel: &TelemetryHandle,
) {
    if vids.is_empty() {
        return;
    }
    let referenced = d.referenced_vids();
    let providers = d.providers();
    let mut seen = HashSet::new();
    for &vid in vids {
        if referenced.contains(&vid) || !seen.insert(vid) {
            continue;
        }
        for p in &providers {
            if p.contains(vid) {
                match p.delete(vid) {
                    Ok(()) => {
                        report.orphans_collected += 1;
                        tel.incr("recovery_orphans_collected");
                    }
                    Err(_) => report.unrecoverable += 1,
                }
            }
        }
    }
}

/// Rolls a dangling removal forward at the table level: tombstones every
/// member of the file's stripes and drops the file entry (the objects
/// themselves were handled by [`gc_vids`] on the doom list). A no-op when
/// the crash already passed the table update. The file — and all its
/// stripes and chunks — live wholly in one shard, so one shard lock
/// suffices.
fn complete_remove(d: &CloudDataDistributor, client: &str, target: &str) {
    let shard = d.shard_for(client, target);
    let mut st = d.shard_write(shard);
    let Ok(file) = st.file(client, target).cloned() else {
        return;
    };
    for &sid in &file.stripe_ids {
        let members = st.stripes[sid].members.clone();
        for m in members {
            let e = &mut st.chunks[m];
            e.removed = true;
            e.stored_len = 0;
            e.logical_len = 0;
            e.replicas.clear();
            e.snapshot_provider_idx = None;
            e.snapshot_vid = None;
        }
    }
    if let Ok(entry) = st.client_mut(client) {
        entry.files.remove(target);
    }
}

/// Strips whatever table rows a dangling put left in the replayed state
/// (only possible when a concurrent op's close delta captured mid-put
/// rows): tombstones its chunk entries and drops its file entry. A put's
/// rows land wholly in its file's shard, so one shard lock suffices.
fn strip_put(d: &CloudDataDistributor, op: &OpView) {
    let fresh: HashSet<VirtualId> = op.fresh.iter().copied().collect();
    let shard = d.shard_for(&op.client, &op.target);
    let mut st = d.shard_write(shard);
    for e in st.chunks.iter_mut() {
        if fresh.contains(&e.vid) && !e.removed {
            e.removed = true;
            e.stored_len = 0;
            e.logical_len = 0;
            e.replicas.clear();
            e.snapshot_provider_idx = None;
            e.snapshot_vid = None;
        }
    }
    // Drop the file entry only when it belongs to THIS put (its stripes
    // reference the op's fresh vids): the name may instead map to an
    // earlier committed file that a duplicate upload tripped over.
    let owned = st
        .client(&op.client)
        .ok()
        .and_then(|c| c.files.get(&op.target))
        .is_some_and(|f| {
            f.stripe_ids.iter().any(|&sid| {
                st.stripes[sid]
                    .members
                    .iter()
                    .any(|&m| fresh.contains(&st.chunks[m].vid))
            })
        });
    if owned {
        if let Ok(entry) = st.client_mut(&op.client) {
            entry.files.remove(&op.target);
        }
    }
}

/// Derives last-op-wins file expectations from the resolutions and
/// checks them against the recovered tables: a file whose final fate is
/// "present" must exist and stay within every stripe's fault tolerance; a
/// file whose final fate is "absent" must be gone. Violations are counted
/// as unrecoverable.
fn verify_expectations(
    d: &CloudDataDistributor,
    resolutions: &[(OpView, Resolution)],
    report: &mut RecoveryReport,
) {
    let mut expect: HashMap<(&str, &str), bool> = HashMap::new();
    for (op, resolution) in resolutions {
        let key = (op.client.as_str(), op.target.as_str());
        match (op.kind, resolution) {
            (OpKind::Put, Resolution::Replayed) => {
                expect.insert(key, true);
            }
            (OpKind::Put, Resolution::RolledBack) => {
                expect.insert(key, false);
            }
            (OpKind::Remove, Resolution::Replayed | Resolution::RolledForward) => {
                expect.insert(key, false);
            }
            // Aborted ops restored the prior state; repair/migrate ops
            // never change which files exist.
            _ => {}
        }
    }

    for ((client, target), present) in expect {
        let st = d.read_shard_for(client, target);
        let file = st.file(client, target);
        if !present {
            if file.is_ok() {
                report.unrecoverable += 1;
            }
            continue;
        }
        let Ok(file) = file else {
            report.unrecoverable += 1;
            continue;
        };
        for &sid in &file.stripe_ids {
            let stripe = &st.stripes[sid];
            let tolerable = stripe.level.fault_tolerance();
            let mut missing = 0usize;
            for &m in &stripe.members {
                let e = &st.chunks[m];
                if e.removed {
                    continue;
                }
                let primary_ok = {
                    let p = &st.providers[e.provider_idx];
                    p.is_online() && p.contains(e.vid)
                };
                let replica_ok = e.replicas.iter().any(|&(rp, rv)| {
                    let p = &st.providers[rp];
                    p.is_online() && p.contains(rv)
                });
                if !primary_ok && !replica_ok {
                    missing += 1;
                }
            }
            if missing > tolerable {
                report.unrecoverable += 1;
                break;
            }
        }
    }
}
