//! Provider eligibility and stripe placement.
//!
//! §IV-A: "A chunk is given to a provider having equal or higher privacy
//! level compared to the privacy level of the chunk … in case of equal
//! privacy level, the one with a lower cost level is given preference."
//! §VI adds that distribution among eligible providers is randomized.
//!
//! For RAID stripes we additionally enforce **anti-affinity**: the shards
//! of one stripe land on distinct providers, otherwise losing one provider
//! could take out several shards and defeat the parity (DESIGN.md §5).

use crate::config::PlacementStrategy;
use crate::{CoreError, Result};
use fragcloud_sim::{CloudProvider, PrivacyLevel};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::sync::Arc;

/// Indices of providers eligible to store a chunk of privacy level `pl`:
/// online and with provider PL ≥ chunk PL.
pub fn eligible_providers(providers: &[Arc<CloudProvider>], pl: PrivacyLevel) -> Vec<usize> {
    providers
        .iter()
        .enumerate()
        .filter(|(_, p)| p.is_online() && p.profile().privacy_level >= pl)
        .map(|(i, _)| i)
        .collect()
}

/// Chooses providers for one stripe of `shards` chunks of level `pl`.
///
/// Returns one provider index per shard. All strategies respect
/// eligibility; `CheapestEligible` and `RandomEligible` guarantee distinct
/// providers per stripe, while `SingleProvider` (the attack baseline)
/// deliberately concentrates every shard on one provider.
pub fn place_stripe(
    providers: &[Arc<CloudProvider>],
    pl: PrivacyLevel,
    shards: usize,
    strategy: PlacementStrategy,
    rng: &mut StdRng,
) -> Result<Vec<usize>> {
    place_stripe_avoiding(providers, pl, shards, strategy, rng, &[])
}

/// [`place_stripe`] with a quarantine list: providers in `avoid` (typically
/// those whose circuit breaker is Open — see [`crate::health`]) are dropped
/// from the eligible set **only when enough others remain** for the stripe.
/// A fleet too small to route around its quarantined members places on them
/// anyway — a suspect provider never bricks a write that has nowhere else
/// to go.
pub fn place_stripe_avoiding(
    providers: &[Arc<CloudProvider>],
    pl: PrivacyLevel,
    shards: usize,
    strategy: PlacementStrategy,
    rng: &mut StdRng,
    avoid: &[usize],
) -> Result<Vec<usize>> {
    let mut eligible = eligible_providers(providers, pl);
    if eligible.is_empty() {
        return Err(CoreError::NoEligibleProvider { pl });
    }
    if !avoid.is_empty() {
        let trimmed: Vec<usize> = eligible
            .iter()
            .copied()
            .filter(|i| !avoid.contains(i))
            .collect();
        let enough = match strategy {
            PlacementStrategy::SingleProvider => !trimmed.is_empty(),
            _ => trimmed.len() >= shards,
        };
        if enough {
            eligible = trimmed;
        }
    }
    match strategy {
        PlacementStrategy::SingleProvider => {
            // Cheapest eligible provider takes everything.
            let idx = *eligible
                .iter()
                .min_by_key(|&&i| providers[i].profile().cost_level)
                .ok_or(CoreError::NoEligibleProvider { pl })?;
            Ok(vec![idx; shards])
        }
        PlacementStrategy::RandomEligible => {
            if eligible.len() < shards {
                return Err(CoreError::InsufficientProviders {
                    needed: shards,
                    available: eligible.len(),
                });
            }
            eligible.shuffle(rng);
            Ok(eligible[..shards].to_vec())
        }
        PlacementStrategy::CheapestEligible => {
            if eligible.len() < shards {
                return Err(CoreError::InsufficientProviders {
                    needed: shards,
                    available: eligible.len(),
                });
            }
            // Sort by cost level; break ties with a per-stripe random key so
            // equal-cost providers share load across stripes.
            let mut keyed: Vec<(u8, u64, usize)> = eligible
                .iter()
                .map(|&i| (providers[i].profile().cost_level.0, rng.gen::<u64>(), i))
                .collect();
            keyed.sort_unstable();
            Ok(keyed.into_iter().take(shards).map(|(_, _, i)| i).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragcloud_sim::{CostLevel, ProviderProfile};
    use rand::SeedableRng;

    fn fleet() -> Vec<Arc<CloudProvider>> {
        // Mirrors the spirit of Fig. 3's provider table: premium trusted
        // providers plus cheap low-trust ones.
        let spec = [
            ("Adobe", PrivacyLevel::High, 3),
            ("AWS", PrivacyLevel::High, 3),
            ("Google", PrivacyLevel::High, 3),
            ("Microsoft", PrivacyLevel::High, 3),
            ("Sky", PrivacyLevel::Moderate, 1),
            ("Sea", PrivacyLevel::Low, 1),
            ("Earth", PrivacyLevel::Low, 1),
        ];
        spec.iter()
            .map(|(n, pl, cl)| {
                Arc::new(CloudProvider::new(ProviderProfile::new(
                    *n,
                    *pl,
                    CostLevel::new(*cl),
                )))
            })
            .collect()
    }

    #[test]
    fn eligibility_respects_pl_and_online() {
        let f = fleet();
        assert_eq!(eligible_providers(&f, PrivacyLevel::High).len(), 4);
        assert_eq!(eligible_providers(&f, PrivacyLevel::Moderate).len(), 5);
        assert_eq!(eligible_providers(&f, PrivacyLevel::Public).len(), 7);
        f[0].set_online(false);
        assert_eq!(eligible_providers(&f, PrivacyLevel::High).len(), 3);
    }

    #[test]
    fn stripe_members_distinct_and_eligible() {
        let f = fleet();
        let mut rng = StdRng::seed_from_u64(1);
        for strat in [
            PlacementStrategy::CheapestEligible,
            PlacementStrategy::RandomEligible,
        ] {
            for _ in 0..50 {
                let placed = place_stripe(&f, PrivacyLevel::Moderate, 4, strat, &mut rng).unwrap();
                assert_eq!(placed.len(), 4);
                let mut uniq = placed.clone();
                uniq.sort_unstable();
                uniq.dedup();
                assert_eq!(uniq.len(), 4, "{strat:?}: {placed:?}");
                for &i in &placed {
                    assert!(f[i].profile().privacy_level >= PrivacyLevel::Moderate);
                }
            }
        }
    }

    #[test]
    fn cheapest_prefers_low_cost() {
        let f = fleet();
        let mut rng = StdRng::seed_from_u64(2);
        // PL Public: all 7 eligible; cheapest are Sky/Sea/Earth (CL1).
        let placed = place_stripe(
            &f,
            PrivacyLevel::Public,
            3,
            PlacementStrategy::CheapestEligible,
            &mut rng,
        )
        .unwrap();
        for &i in &placed {
            assert_eq!(f[i].profile().cost_level, CostLevel(1), "{placed:?}");
        }
    }

    #[test]
    fn cheapest_tiebreak_spreads_load() {
        let f = fleet();
        let mut rng = StdRng::seed_from_u64(3);
        let mut first_seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let placed = place_stripe(
                &f,
                PrivacyLevel::Public,
                1,
                PlacementStrategy::CheapestEligible,
                &mut rng,
            )
            .unwrap();
            first_seen.insert(placed[0]);
        }
        // All three CL1 providers should appear as first pick over time.
        assert_eq!(first_seen.len(), 3, "{first_seen:?}");
    }

    #[test]
    fn single_provider_concentrates() {
        let f = fleet();
        let mut rng = StdRng::seed_from_u64(4);
        let placed = place_stripe(
            &f,
            PrivacyLevel::High,
            5,
            PlacementStrategy::SingleProvider,
            &mut rng,
        )
        .unwrap();
        assert_eq!(placed.len(), 5);
        assert!(placed.iter().all(|&i| i == placed[0]));
        // High PL: must still be a trusted provider.
        assert!(f[placed[0]].profile().privacy_level >= PrivacyLevel::High);
    }

    #[test]
    fn avoiding_sheds_only_when_enough_remain() {
        let f = fleet();
        let mut rng = StdRng::seed_from_u64(6);
        // 4 PL-High providers; a 3-shard stripe avoiding provider 0 must
        // land entirely on the other three.
        for _ in 0..20 {
            let placed = place_stripe_avoiding(
                &f,
                PrivacyLevel::High,
                3,
                PlacementStrategy::RandomEligible,
                &mut rng,
                &[0],
            )
            .unwrap();
            assert!(!placed.contains(&0), "{placed:?}");
        }
        // Avoiding two of the four leaves only two for a 3-shard stripe:
        // the quarantine is ignored rather than failing the write.
        let placed = place_stripe_avoiding(
            &f,
            PrivacyLevel::High,
            3,
            PlacementStrategy::CheapestEligible,
            &mut rng,
            &[0, 1],
        )
        .unwrap();
        assert_eq!(placed.len(), 3);
    }

    #[test]
    fn errors_when_impossible() {
        let f = fleet();
        let mut rng = StdRng::seed_from_u64(5);
        // 6 distinct PL-High providers don't exist.
        assert!(matches!(
            place_stripe(
                &f,
                PrivacyLevel::High,
                6,
                PlacementStrategy::CheapestEligible,
                &mut rng
            ),
            Err(CoreError::InsufficientProviders {
                needed: 6,
                available: 4
            })
        ));
        // No providers at all for a level when all are offline.
        for p in &f {
            p.set_online(false);
        }
        assert!(matches!(
            place_stripe(
                &f,
                PrivacyLevel::Public,
                1,
                PlacementStrategy::RandomEligible,
                &mut rng
            ),
            Err(CoreError::NoEligibleProvider { .. })
        ));
    }
}
