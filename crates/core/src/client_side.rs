//! The client-side distributor (§IV-C).
//!
//! "The Cloud Data Distributor can be implemented at client side by using
//! CAN or CHORD like hash tables that will map each ⟨filename, chunk Sl⟩
//! pair to a Cloud Provider. A downloadable list of Cloud Providers can be
//! used to generate the Cloud Provider Table. Client will also have to
//! maintain a Chunk Table for his chunks. This approach has some
//! limitations: client will require some memory where the tables will
//! reside."
//!
//! One [`ClientSideDistributor`] belongs to one client. Placement comes
//! from per-privacy-level Chord rings (a provider appears on the PL-`p`
//! ring iff its own PL ≥ `p`), so the eligibility rule of §IV-A holds with
//! no central table. The client keeps only its own chunk table — the
//! memory cost the paper warns about, which [`ClientSideDistributor::table_bytes_estimate`]
//! reports.

use crate::chunker;
use crate::config::ChunkSizeSchedule;
use crate::vid::VidAllocator;
use crate::{CoreError, Result};
use bytes::Bytes;
use fragcloud_dht::ChordRing;
use fragcloud_sim::{CloudProvider, ObjectStore, PrivacyLevel, VirtualId};
use std::collections::HashMap;
use std::sync::Arc;

/// A client-local chunk record (the client's private Chunk Table row).
#[derive(Debug, Clone)]
struct LocalChunk {
    vid: VirtualId,
    provider: String,
    len: usize,
}

/// Per-file metadata.
#[derive(Debug, Clone)]
struct LocalFile {
    pl: PrivacyLevel,
    chunks: Vec<LocalChunk>,
    total_len: usize,
}

/// A distributor that lives entirely on the client.
pub struct ClientSideDistributor {
    providers: HashMap<String, Arc<CloudProvider>>,
    /// One ring per privacy level; ring `p` holds providers with PL ≥ p.
    rings: [ChordRing; 4],
    files: HashMap<String, LocalFile>,
    chunk_sizes: ChunkSizeSchedule,
    vids: VidAllocator,
}

impl ClientSideDistributor {
    /// Builds the client-side distributor from "a downloadable list of
    /// Cloud Providers".
    pub fn new(
        provider_list: Vec<Arc<CloudProvider>>,
        chunk_sizes: ChunkSizeSchedule,
        seed: u64,
    ) -> Self {
        let mut rings: [ChordRing; 4] = [
            ChordRing::new(4),
            ChordRing::new(4),
            ChordRing::new(4),
            ChordRing::new(4),
        ];
        let mut providers = HashMap::new();
        for p in provider_list {
            let pl = p.profile().privacy_level;
            for level in PrivacyLevel::ALL {
                if pl >= level {
                    rings[level.as_u8() as usize].join(p.name());
                }
            }
            providers.insert(p.name().to_string(), p);
        }
        ClientSideDistributor {
            providers,
            rings,
            files: HashMap::new(),
            chunk_sizes,
            vids: VidAllocator::new(seed),
        }
    }

    /// Uploads a file; chunks are placed by Chord mapping of
    /// ⟨filename, serial⟩ on the PL-appropriate ring.
    pub fn put_file(&mut self, filename: &str, data: &[u8], pl: PrivacyLevel) -> Result<usize> {
        if self.files.contains_key(filename) {
            return Err(CoreError::FileExists(filename.to_string()));
        }
        let ring = &self.rings[pl.as_u8() as usize];
        if ring.is_empty() {
            return Err(CoreError::NoEligibleProvider { pl });
        }
        let chunks = chunker::split(data, pl, &self.chunk_sizes);
        let mut local = Vec::with_capacity(chunks.len());
        for (sl, chunk) in chunks.iter().enumerate() {
            let owner = ring
                .owner(filename, sl as u32)
                .ok_or(CoreError::NoEligibleProvider { pl })?
                .clone();
            let provider = &self.providers[&owner];
            let vid = self.vids.allocate();
            // Paper §IV-C client-side variant: privacy comes from
            // fragmentation + per-PL Chord dispersal alone (one chunk per
            // provider); mislead injection is the server-side
            // distributor's defense, deliberately absent here.
            // fraglint: allow(plaintext-escape) — §IV-C dispersal-only design, no mislead layer by construction
            provider.put(vid, Bytes::from(chunk.clone()))?;
            local.push(LocalChunk {
                vid,
                provider: owner,
                len: chunk.len(),
            });
        }
        let n = local.len();
        self.files.insert(
            filename.to_string(),
            LocalFile {
                pl,
                chunks: local,
                total_len: data.len(),
            },
        );
        Ok(n)
    }

    /// Fetches one chunk.
    pub fn get_chunk(&self, filename: &str, serial: u32) -> Result<Vec<u8>> {
        let file = self.file(filename)?;
        let chunk = file
            .chunks
            .get(serial as usize)
            .ok_or_else(|| CoreError::UnknownChunk {
                filename: filename.to_string(),
                serial,
            })?;
        let bytes = self.providers[&chunk.provider].get(chunk.vid)?;
        if bytes.len() != chunk.len {
            // Provider returned a tampered/truncated object.
            return Err(CoreError::Store(fragcloud_sim::StoreError::NotFound(
                chunk.vid,
            )));
        }
        Ok(bytes.to_vec())
    }

    /// Fetches and reassembles a file.
    pub fn get_file(&self, filename: &str) -> Result<Vec<u8>> {
        let file = self.file(filename)?;
        let mut out = Vec::with_capacity(file.total_len);
        for c in &file.chunks {
            out.extend_from_slice(&self.providers[&c.provider].get(c.vid)?);
        }
        Ok(out)
    }

    /// Removes a file from the providers and the local table.
    pub fn remove_file(&mut self, filename: &str) -> Result<()> {
        let file = self.file(filename)?.clone();
        for c in &file.chunks {
            self.providers[&c.provider].delete(c.vid)?;
        }
        self.files.remove(filename);
        Ok(())
    }

    /// Verifies that the Chord mapping still locates each stored chunk:
    /// recomputes `owner(filename, sl)` and compares with the recorded
    /// provider. True when the ring has not churned since upload.
    pub fn mapping_consistent(&self, filename: &str) -> Result<bool> {
        let file = self.file(filename)?;
        let ring = &self.rings[file.pl.as_u8() as usize];
        for (sl, c) in file.chunks.iter().enumerate() {
            match ring.owner(filename, sl as u32) {
                Some(owner) if *owner == c.provider => {}
                _ => return Ok(false),
            }
        }
        Ok(true)
    }

    /// Number of chunk-table entries the client must keep in memory.
    pub fn table_entries(&self) -> usize {
        self.files.values().map(|f| f.chunks.len()).sum()
    }

    /// Rough memory footprint of the client-side tables (the §IV-C
    /// limitation): vid + provider-name pointer + length per chunk entry.
    pub fn table_bytes_estimate(&self) -> usize {
        let per_entry = std::mem::size_of::<LocalChunk>();
        self.table_entries() * per_entry
            + self
                .files
                .keys()
                .map(|k| k.len() + std::mem::size_of::<LocalFile>())
                .sum::<usize>()
    }

    fn file(&self, filename: &str) -> Result<&LocalFile> {
        self.files
            .get(filename)
            .ok_or_else(|| CoreError::UnknownFile {
                client: "<self>".to_string(),
                filename: filename.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragcloud_sim::{CostLevel, ProviderProfile};

    fn fleet() -> Vec<Arc<CloudProvider>> {
        [
            ("AWS", PrivacyLevel::High),
            ("Google", PrivacyLevel::High),
            ("Sky", PrivacyLevel::Moderate),
            ("Sea", PrivacyLevel::Low),
            ("Earth", PrivacyLevel::Low),
        ]
        .iter()
        .map(|(n, pl)| {
            Arc::new(CloudProvider::new(ProviderProfile::new(
                *n,
                *pl,
                CostLevel::new(1),
            )))
        })
        .collect()
    }

    fn dist() -> ClientSideDistributor {
        ClientSideDistributor::new(fleet(), ChunkSizeSchedule::uniform(32), 7)
    }

    fn body(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 13) as u8).collect()
    }

    #[test]
    fn roundtrip_all_levels() {
        let mut d = dist();
        for (i, pl) in PrivacyLevel::ALL.into_iter().enumerate() {
            let name = format!("f{i}");
            let data = body(150);
            let n = d.put_file(&name, &data, pl).unwrap();
            assert_eq!(n, 5);
            assert_eq!(d.get_file(&name).unwrap(), data);
            assert_eq!(d.get_chunk(&name, 0).unwrap(), &data[..32]);
        }
    }

    #[test]
    fn eligibility_respected_without_central_table() {
        let mut d = dist();
        d.put_file("secret", &body(320), PrivacyLevel::High)
            .unwrap();
        // Only AWS/Google (PL High) may hold chunks.
        let file = &d.files["secret"];
        for c in &file.chunks {
            assert!(
                c.provider == "AWS" || c.provider == "Google",
                "chunk on {}",
                c.provider
            );
        }
    }

    #[test]
    fn chunks_spread_across_eligible_providers() {
        let mut d = dist();
        d.put_file("pub", &body(32 * 40), PrivacyLevel::Public)
            .unwrap();
        let mut used = std::collections::HashSet::new();
        for c in &d.files["pub"].chunks {
            used.insert(c.provider.clone());
        }
        assert!(used.len() >= 3, "only {used:?}");
    }

    #[test]
    fn mapping_consistency_check() {
        let mut d = dist();
        d.put_file("f", &body(100), PrivacyLevel::Low).unwrap();
        assert!(d.mapping_consistent("f").unwrap());
    }

    #[test]
    fn remove_file_cleans_providers() {
        let mut d = dist();
        d.put_file("f", &body(100), PrivacyLevel::Low).unwrap();
        let stored: usize = d.providers.values().map(|p| p.chunk_count()).sum();
        assert!(stored > 0);
        d.remove_file("f").unwrap();
        let stored: usize = d.providers.values().map(|p| p.chunk_count()).sum();
        assert_eq!(stored, 0);
        assert!(d.get_file("f").is_err());
    }

    #[test]
    fn table_memory_accounting() {
        let mut d = dist();
        assert_eq!(d.table_entries(), 0);
        d.put_file("f", &body(320), PrivacyLevel::Public).unwrap();
        assert_eq!(d.table_entries(), 10);
        assert!(d.table_bytes_estimate() > 0);
    }

    #[test]
    fn errors() {
        let mut d = dist();
        d.put_file("f", &body(10), PrivacyLevel::Public).unwrap();
        assert!(matches!(
            d.put_file("f", &body(10), PrivacyLevel::Public),
            Err(CoreError::FileExists(_))
        ));
        assert!(matches!(
            d.get_chunk("f", 99),
            Err(CoreError::UnknownChunk { .. })
        ));
        assert!(matches!(
            d.get_file("missing"),
            Err(CoreError::UnknownFile { .. })
        ));
        // No provider trusted for PL High when only low-trust ones exist.
        let low_fleet: Vec<Arc<CloudProvider>> = vec![Arc::new(CloudProvider::new(
            ProviderProfile::new("Sea", PrivacyLevel::Low, CostLevel::new(0)),
        ))];
        let mut d2 = ClientSideDistributor::new(low_fleet, ChunkSizeSchedule::uniform(8), 1);
        assert!(matches!(
            d2.put_file("s", &body(8), PrivacyLevel::High),
            Err(CoreError::NoEligibleProvider { .. })
        ));
    }
}
