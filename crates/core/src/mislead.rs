//! Misleading-data injection and stripping.
//!
//! §IV-A / §VII-D: "the Cloud Data Distributor may add misleading data into
//! chunks depending on the demand of clients. The positions of misleading
//! data bytes are also maintained by the distributor and these misleading
//! bytes are removed while providing the chunks to the clients."
//!
//! Injection expands the chunk; a provider (or attacker) that mines the
//! stored bytes sees plausible-looking but false values interleaved with
//! the real ones. Positions refer to offsets **in the stored chunk**, in
//! ascending order, matching the Chunk Table's `M` column.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Injects `⌈rate · len⌉` misleading bytes at pseudo-random positions.
///
/// Returns the expanded chunk plus the sorted positions of the inserted
/// bytes (stored-chunk offsets). Injected byte values mimic the local byte
/// distribution (they copy a random nearby real byte, perturbed), so they
/// don't stand out statistically.
///
/// # Panics
/// Panics when `rate` is not in `[0, 0.5)`.
pub fn inject(chunk: &[u8], rate: f64, seed: u64) -> (Vec<u8>, Vec<usize>) {
    assert!(
        (0.0..0.5).contains(&rate),
        "mislead rate must be in [0, 0.5)"
    );
    if rate == 0.0 || chunk.is_empty() {
        return (chunk.to_vec(), Vec::new());
    }
    let n_inject = ((chunk.len() as f64 * rate).ceil() as usize).max(1);
    let out_len = chunk.len() + n_inject;
    let mut rng = StdRng::seed_from_u64(seed);

    // Choose distinct positions in the *output* index space.
    let mut positions = std::collections::BTreeSet::new();
    while positions.len() < n_inject {
        positions.insert(rng.gen_range(0..out_len));
    }
    let positions: Vec<usize> = positions.into_iter().collect();

    // Splice real-byte runs around the injected positions. For the k-th
    // (0-based) injected position p, the output prefix `..p` holds k
    // earlier injected bytes, so exactly `p - k` real bytes precede it —
    // copying run-by-run needs no per-byte bookkeeping and cannot run
    // out of source bytes.
    let mut out = Vec::with_capacity(out_len);
    let mut copied = 0usize;
    for (k, &p) in positions.iter().enumerate() {
        let run_end = p - k;
        out.extend_from_slice(&chunk[copied..run_end]);
        copied = run_end;
        // A misleading byte: a perturbed copy of a random real byte.
        let base = chunk[rng.gen_range(0..chunk.len())];
        out.push(base.wrapping_add(rng.gen_range(1..=32)));
    }
    out.extend_from_slice(&chunk[copied..]);
    debug_assert_eq!(out.len(), out_len);
    (out, positions)
}

/// Removes the bytes at `positions` (ascending stored-chunk offsets),
/// restoring the original chunk.
///
/// # Panics
/// Panics when positions are out of bounds or unsorted.
pub fn strip(stored: &[u8], positions: &[usize]) -> Vec<u8> {
    let Some(&last) = positions.last() else {
        return stored.to_vec();
    };
    assert!(
        positions.windows(2).all(|w| w[0] < w[1]),
        "positions must be strictly ascending"
    );
    assert!(last < stored.len(), "position out of bounds");
    let mut out = Vec::with_capacity(stored.len() - positions.len());
    let mut pos_iter = positions.iter().peekable();
    for (i, &b) in stored.iter().enumerate() {
        if pos_iter.peek() == Some(&&i) {
            pos_iter.next();
        } else {
            out.push(b);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_is_identity() {
        let data = vec![1u8, 2, 3];
        let (out, pos) = inject(&data, 0.0, 1);
        assert_eq!(out, data);
        assert!(pos.is_empty());
        assert_eq!(strip(&out, &pos), data);
    }

    #[test]
    fn inject_strip_roundtrip() {
        for n in [1usize, 2, 10, 100, 1000] {
            let data: Vec<u8> = (0..n).map(|i| (i * 31) as u8).collect();
            for rate in [0.01, 0.05, 0.2, 0.49] {
                let (stored, pos) = inject(&data, rate, n as u64);
                assert_eq!(strip(&stored, &pos), data, "n={n} rate={rate}");
                assert_eq!(stored.len(), data.len() + pos.len());
            }
        }
    }

    #[test]
    fn injection_count_matches_rate() {
        let data = vec![0u8; 1000];
        let (_, pos) = inject(&data, 0.1, 7);
        assert_eq!(pos.len(), 100);
        let (_, pos) = inject(&data, 0.001, 7);
        assert_eq!(pos.len(), 1);
    }

    #[test]
    fn positions_sorted_unique_in_bounds() {
        let data: Vec<u8> = (0..500).map(|i| i as u8).collect();
        let (stored, pos) = inject(&data, 0.3, 42);
        for w in pos.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(*pos.last().unwrap() < stored.len());
    }

    #[test]
    fn deterministic_for_seed() {
        let data = vec![9u8; 64];
        let a = inject(&data, 0.2, 5);
        let b = inject(&data, 0.2, 5);
        assert_eq!(a, b);
        let c = inject(&data, 0.2, 6);
        assert_ne!(a.1, c.1);
    }

    #[test]
    fn empty_chunk_safe() {
        let (out, pos) = inject(&[], 0.2, 1);
        assert!(out.is_empty());
        assert!(pos.is_empty());
        assert!(strip(&[], &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "rate must be")]
    fn excessive_rate_panics() {
        inject(&[1, 2, 3], 0.8, 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn strip_out_of_bounds_panics() {
        strip(&[1, 2], &[5]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn strip_unsorted_panics() {
        strip(&[1, 2, 3], &[1, 0]);
    }

    #[test]
    fn misleading_bytes_resemble_real_distribution() {
        // Injected bytes are perturbed copies of real bytes, so the stored
        // chunk should not contain byte values wildly outside the data's
        // range for a narrow-range input.
        let data = vec![100u8; 200];
        let (stored, pos) = inject(&data, 0.1, 3);
        for &p in &pos {
            let v = stored[p];
            assert!((101..=132).contains(&v), "injected byte {v} out of family");
        }
    }
}
