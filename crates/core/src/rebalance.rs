//! Chunk migration and locality-driven rebalancing.
//!
//! §VII-E: "Some optimized methods of fragmentation can be used like
//! storing the chunks in the locations where they are frequently used (for
//! multi national companies)." We model *locations* as providers with
//! different [`fragcloud_sim::net::LatencyModel`]s and let the distributor
//! move hot chunks toward low-latency providers:
//!
//! - [`CloudDataDistributor::migrate_chunk`] — move one chunk to a chosen
//!   eligible provider (snapshot-safe: the object is copied, the table
//!   updated, then the old object deleted);
//! - [`CloudDataDistributor::rebalance_by_access`] — greedy policy: for
//!   each of the client's chunks whose access count exceeds a threshold,
//!   migrate it to the eligible provider with the lowest link latency,
//!   respecting stripe anti-affinity.

use crate::distributor::{CloudDataDistributor, JournalCtx};
use crate::journal::OpKind;
use crate::policy;
use crate::tables::ChunkRole;
use crate::{CoreError, Result};
use fragcloud_sim::{ObjectStore, VirtualId};
use std::time::Duration;

/// Report of one rebalancing pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Chunks moved.
    pub migrated: usize,
    /// Chunks inspected.
    pub inspected: usize,
}

impl CloudDataDistributor {
    /// Moves the chunk ⟨filename, serial⟩ to `target_provider` (a Cloud
    /// Provider Table index). The target must be online, eligible for the
    /// chunk's PL and must not already hold another shard of the same
    /// stripe (anti-affinity).
    ///
    /// The moved object gets a **fresh virtual id** at the target, so the
    /// new provider cannot correlate it with the old copy (§IV-A identity
    /// concealment, matching `repair`). Ordering is copy → table switch →
    /// commit → source delete, so a crash at any instant leaves at least
    /// one live, table-referenced copy; with a journal attached, a
    /// post-commit straggler at the source is doomed in the journal and
    /// garbage-collected by recovery.
    pub fn migrate_chunk(
        &self,
        client: &str,
        password: &str,
        filename: &str,
        serial: u32,
        target_provider: usize,
    ) -> Result<()> {
        let jctx = self.journal_begin(OpKind::Migrate, client, &format!("{filename}#{serial}"));
        let res =
            self.migrate_chunk_inner(client, password, filename, serial, target_provider, &jctx);
        match self.journal_finish(jctx, res)? {
            Some((source_provider, old_vid)) => {
                self.crash_point()?;
                // Best-effort: the object is already doomed in the journal.
                let providers = self.providers();
                let _ = providers[source_provider].delete(old_vid);
                Ok(())
            }
            None => Ok(()), // already at the target
        }
    }

    /// The journaled body of [`migrate_chunk`](Self::migrate_chunk):
    /// returns the doomed source copy to delete after commit, or `None`
    /// for a same-provider no-op.
    fn migrate_chunk_inner(
        &self,
        client: &str,
        password: &str,
        filename: &str,
        serial: u32,
        target_provider: usize,
        jctx: &Option<JournalCtx>,
    ) -> Result<Option<(usize, VirtualId)>> {
        let shard = self.shard_for(client, filename);
        let mut st = self.shard_write(shard);
        let chunk_idx = st.chunk_index(client, filename, serial)?;
        crate::access::authorize(st.client(client)?, password, st.chunks[chunk_idx].pl)?;
        let pl = st.chunks[chunk_idx].pl;
        if target_provider >= st.providers.len() {
            return Err(CoreError::NoEligibleProvider { pl });
        }
        let target = &st.providers[target_provider];
        if !target.is_online() || target.profile().privacy_level < pl {
            return Err(CoreError::NoEligibleProvider { pl });
        }
        let source_provider = st.chunks[chunk_idx].provider_idx;
        if source_provider == target_provider {
            return Ok(None); // already there
        }
        // Anti-affinity within the stripe.
        if let Some(stripe_ref) = st.chunks[chunk_idx].stripe {
            let stripe = &st.stripes[stripe_ref.stripe_id];
            for &m in &stripe.members {
                if m != chunk_idx && st.chunks[m].provider_idx == target_provider {
                    return Err(CoreError::InsufficientProviders {
                        needed: stripe.members.len(),
                        available: stripe.members.len() - 1,
                    });
                }
            }
        }
        // Copy (under a fresh id), switch the table, and leave the doomed
        // source copy to the post-commit step.
        let old_vid = st.chunks[chunk_idx].vid;
        let new_vid = self.allocate_vid();
        self.journal_alloc(jctx, &[new_vid]);
        self.journal_doom(jctx, &[old_vid]);
        self.crash_point()?;
        let bytes = st.providers[source_provider].get(old_vid)?; // fraglint: allow(lock-order) — read under the guard: vid must match the locked table entry
        // Verify under the old id, re-frame under the new one: migration
        // must not launder a corrupted object into a fresh valid frame.
        let (payload, _) = crate::integrity::unframe(old_vid, bytes)?;
        st.providers[target_provider].put(new_vid, crate::integrity::frame(new_vid, &payload))?; // fraglint: allow(lock-order) — atomic object+table commit under the shard guard
        self.crash_point()?;
        st.chunks[chunk_idx].vid = new_vid;
        st.chunks[chunk_idx].provider_idx = target_provider;
        self.touch_chunk(jctx, shard, chunk_idx);
        Ok(Some((source_provider, old_vid)))
    }

    /// Greedy locality pass: migrate every data chunk of the client that
    /// was fetched more than `hot_threshold` times to the eligible provider
    /// with the lowest base link latency.
    ///
    /// Access counts are the providers' per-object `get` statistics, which
    /// the distributor can observe; the pass resets nothing, so repeated
    /// calls are idempotent once chunks sit at their best locations.
    pub fn rebalance_by_access(
        &self,
        client: &str,
        password: &str,
        hot_threshold: u64,
    ) -> Result<RebalanceReport> {
        // Collect candidate moves under the read locks (every shard: the
        // client's files are spread by file-hash), then apply lock-free.
        let moves: Vec<(String, u32, usize)> = {
            let shards = self.lock_all_read();
            shards[0].client(client)?;
            // Eligible providers per PL, sorted by base latency.
            let mut moves = Vec::new();
            for st in shards.iter() {
                let entry = st.client(client)?;
                for (filename, file) in &entry.files {
                    crate::access::authorize(entry, password, file.pl)?;
                    let mut candidates = policy::eligible_providers(&st.providers, file.pl);
                    candidates.sort_by_key(|&i| st.providers[i].profile().latency.base);
                    let Some(&best) = candidates.first() else {
                        continue;
                    };
                    for &ci in &file.chunk_indices {
                        let e = &st.chunks[ci];
                        if e.removed || e.provider_idx == best {
                            continue;
                        }
                        // Hotness: total gets at the current provider is our
                        // proxy (per-object stats would need provider support).
                        let gets = st.providers[e.provider_idx]
                            .stats()
                            .gets
                            .load(std::sync::atomic::Ordering::Relaxed);
                        if gets <= hot_threshold {
                            continue;
                        }
                        let serial = match e.role {
                            ChunkRole::Data { serial } => serial,
                            ChunkRole::Parity { .. } => continue,
                        };
                        // Only better-latency targets.
                        if st.providers[best].profile().latency.base
                            < st.providers[e.provider_idx].profile().latency.base
                        {
                            moves.push((filename.clone(), serial, best));
                        }
                    }
                }
            }
            moves
        };

        let mut report = RebalanceReport {
            inspected: moves.len(),
            ..Default::default()
        };
        for (filename, serial, target) in moves {
            match self.migrate_chunk(client, password, &filename, serial, target) {
                Ok(()) => report.migrated += 1,
                // Anti-affinity conflicts are expected; skip those chunks.
                Err(CoreError::InsufficientProviders { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(report)
    }

    /// Simulated latency advantage of the current placement of a file for
    /// this client versus placing everything at the worst eligible
    /// provider — a locality score for tests/experiments.
    pub fn locality_gain(&self, client: &str, filename: &str) -> Result<Duration> {
        let st = self.read_shard_for(client, filename);
        let file = st.file(client, filename)?;
        let mut current = Duration::ZERO;
        let mut worst_case = Duration::ZERO;
        let eligible = policy::eligible_providers(&st.providers, file.pl);
        let worst = eligible
            .iter()
            .copied()
            .max_by_key(|&i| st.providers[i].profile().latency.base)
            .ok_or(CoreError::NoEligibleProvider { pl: file.pl })?;
        for &ci in &file.chunk_indices {
            let e = &st.chunks[ci];
            current += st.providers[e.provider_idx]
                .profile()
                .latency
                .transfer_time(e.stored_len, 0);
            worst_case += st.providers[worst]
                .profile()
                .latency
                .transfer_time(e.stored_len, 0);
        }
        Ok(worst_case.saturating_sub(current))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ChunkSizeSchedule, DistributorConfig};
    use crate::{PrivacyLevel, PutOptions};
    use fragcloud_sim::net::LatencyModel;
    use fragcloud_sim::{CloudProvider, CostLevel, ProviderProfile};
    use std::sync::Arc;

    /// Fleet with one "near" low-latency provider and several "far" ones.
    fn fleet() -> Vec<Arc<CloudProvider>> {
        (0..6)
            .map(|i| {
                let mut profile =
                    ProviderProfile::new(format!("cp{i}"), PrivacyLevel::High, CostLevel::new(1));
                profile.latency = if i == 0 {
                    LatencyModel::lan()
                } else {
                    LatencyModel::wan()
                };
                Arc::new(CloudProvider::new(profile))
            })
            .collect()
    }

    fn world() -> CloudDataDistributor {
        let d = CloudDataDistributor::new(
            fleet(),
            DistributorConfig {
                chunk_sizes: ChunkSizeSchedule::uniform(256),
                stripe_width: 3,
                ..Default::default()
            },
        );
        d.register_client("c").unwrap();
        d.add_password("c", "pw", PrivacyLevel::High).unwrap();
        d
    }

    fn body(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 256) as u8).collect()
    }

    #[test]
    fn migrate_moves_object_and_preserves_reads() {
        let d = world();
        let data = body(1000);
        d.session("c", "pw")
            .unwrap()
            .put_file("f", &data, PrivacyLevel::Low, PutOptions::default())
            .unwrap();
        // Find chunk 0's provider and pick a different, stripe-safe target.
        let before = d.client_chunks_per_provider("c").unwrap();
        // Try all targets until one succeeds (anti-affinity may veto some).
        let mut moved = false;
        for target in 0..6 {
            match d.migrate_chunk("c", "pw", "f", 0, target) {
                Ok(()) => {
                    moved = true;
                    break;
                }
                Err(CoreError::InsufficientProviders { .. }) => continue,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(moved);
        let after = d.client_chunks_per_provider("c").unwrap();
        // Either it stayed (same target) or counts shifted by one somewhere.
        assert_eq!(
            before.iter().sum::<usize>(),
            after.iter().sum::<usize>(),
            "no chunk lost"
        );
        assert_eq!(
            d.session("c", "pw").unwrap().get_file("f").unwrap().data,
            data
        );
    }

    #[test]
    fn migrate_rejects_low_pl_target() {
        let mut providers = fleet();
        providers.push(Arc::new(CloudProvider::new(ProviderProfile::new(
            "lowtrust",
            PrivacyLevel::Low,
            CostLevel::new(0),
        ))));
        let d = CloudDataDistributor::new(
            providers,
            DistributorConfig {
                chunk_sizes: ChunkSizeSchedule::uniform(256),
                stripe_width: 3,
                ..Default::default()
            },
        );
        d.register_client("c").unwrap();
        d.add_password("c", "pw", PrivacyLevel::High).unwrap();
        d.session("c", "pw")
            .unwrap()
            .put_file("f", &body(500), PrivacyLevel::High, PutOptions::default())
            .unwrap();
        assert!(matches!(
            d.migrate_chunk("c", "pw", "f", 0, 6),
            Err(CoreError::NoEligibleProvider { .. })
        ));
        // Out-of-range index too.
        assert!(d.migrate_chunk("c", "pw", "f", 0, 99).is_err());
    }

    #[test]
    fn migrate_respects_stripe_anti_affinity() {
        let d = world();
        d.session("c", "pw")
            .unwrap()
            .put_file("f", &body(700), PrivacyLevel::Low, PutOptions::default())
            .unwrap();
        // Chunks 0..2 share a stripe (width 3); moving chunk 0 onto chunk
        // 1's provider must be vetoed.
        let st_chunk1_provider = {
            // provider of serial 1 via public accessors: probe by migrating
            // serial 0 to each provider and find the veto.
            let mut veto = None;
            for target in 0..6 {
                if matches!(
                    d.migrate_chunk("c", "pw", "f", 0, target),
                    Err(CoreError::InsufficientProviders { .. })
                ) {
                    veto = Some(target);
                    break;
                }
            }
            veto
        };
        assert!(
            st_chunk1_provider.is_some(),
            "some provider must be vetoed by anti-affinity"
        );
        // File still fully readable after the probe migrations.
        assert_eq!(
            d.session("c", "pw").unwrap().get_file("f").unwrap().data,
            body(700)
        );
    }

    #[test]
    fn rebalance_moves_hot_chunks_toward_low_latency() {
        let d = world();
        let data = body(2000);
        d.session("c", "pw")
            .unwrap()
            .put_file("f", &data, PrivacyLevel::Low, PutOptions::default())
            .unwrap();
        // Heat the file up.
        for _ in 0..5 {
            d.session("c", "pw").unwrap().get_file("f").unwrap();
        }
        let gain_before = d.locality_gain("c", "f").unwrap();
        let report = d.rebalance_by_access("c", "pw", 1).unwrap();
        // Some chunks move to cp0 (the only LAN provider); anti-affinity
        // caps it at one shard per stripe.
        assert!(report.migrated >= 1, "{report:?}");
        let gain_after = d.locality_gain("c", "f").unwrap();
        assert!(
            gain_after > gain_before,
            "locality must improve: {gain_before:?} -> {gain_after:?}"
        );
        // Data integrity preserved.
        assert_eq!(
            d.session("c", "pw").unwrap().get_file("f").unwrap().data,
            data
        );
        // Idempotence: a second pass moves nothing new onto cp0 beyond the
        // anti-affinity cap.
        let again = d.rebalance_by_access("c", "pw", 1).unwrap();
        assert_eq!(again.migrated, 0, "{again:?}");
    }

    #[test]
    fn rebalance_requires_authorization() {
        let d = world();
        d.add_password("c", "weak", PrivacyLevel::Public).unwrap();
        d.session("c", "pw")
            .unwrap()
            .put_file("f", &body(300), PrivacyLevel::High, PutOptions::default())
            .unwrap();
        assert_eq!(
            d.rebalance_by_access("c", "weak", 0).unwrap_err(),
            CoreError::AccessDenied
        );
        assert_eq!(
            d.migrate_chunk("c", "weak", "f", 0, 0).unwrap_err(),
            CoreError::AccessDenied
        );
    }
}
