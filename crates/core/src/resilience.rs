//! Degraded-mode I/O policy: retry budgets with deterministic backoff,
//! hedged-read thresholds, and scrub/repair reporting.
//!
//! The paper motivates multi-provider distribution with the April 2011 EC2
//! outage (§I) and claims "greater availability of data" (§III-B), but its
//! system design stops at *placement*. This module supplies the runtime
//! half: what the distributor does when a provider misbehaves mid-request —
//! how often it retries, how long it (virtually) waits, when a slow read is
//! hedged by racing the parity path, and how an operator walks and heals
//! the degraded stripes left behind by failures.
//!
//! Everything here is deterministic under a fixed seed: backoff jitter is
//! hashed from `(seed, attempt)`, not sampled from a shared RNG, and all
//! waiting is charged to the *simulated* clock (see `fragcloud_sim::net`),
//! never to wall time.

use crate::CoreError;
use fragcloud_telemetry::TelemetryHandle;
use std::time::Duration;

/// Per-operation retry budget with capped exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Attempts per provider operation (1 = no retries).
    pub max_attempts: u32,
    /// Simulated wait before the first retry; doubles per attempt.
    pub base_backoff: Duration,
    /// Ceiling on a single backoff wait.
    pub max_backoff: Duration,
    /// Multiplicative jitter amplitude in `[0, 1)`: each wait is scaled by
    /// a deterministic factor in `[1 − jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Budget on the *total* simulated wait per operation; exceeding it
    /// surfaces as [`crate::CoreError::Timeout`]
    /// instead of further retries. `None` = bounded by attempts only.
    pub op_deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(200),
            jitter: 0.25,
            op_deadline: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (and never waits).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter: 0.0,
            op_deadline: None,
        }
    }

    /// Check the policy's invariants; called via
    /// `DistributorConfig::validate`.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.max_attempts < 1 {
            return Err(CoreError::InvalidConfig {
                detail: "max_attempts must be >= 1".into(),
            });
        }
        if !(0.0..1.0).contains(&self.jitter) {
            return Err(CoreError::InvalidConfig {
                detail: "retry jitter must be in [0, 1)".into(),
            });
        }
        if self.max_backoff < self.base_backoff {
            return Err(CoreError::InvalidConfig {
                detail: "max_backoff must be >= base_backoff".into(),
            });
        }
        Ok(())
    }

    /// Simulated wait before retry number `attempt` (1-based: the wait
    /// after the first failure is `backoff(1, …)`). Deterministic: the
    /// jitter is hashed from `(seed, attempt)`, so a fixed distributor
    /// seed replays the exact same schedule.
    pub fn backoff(&self, attempt: u32, seed: u64) -> Duration {
        let exp =
            self.base_backoff.as_secs_f64() * 2f64.powi(attempt.saturating_sub(1).min(62) as i32);
        let capped = exp.min(self.max_backoff.as_secs_f64());
        if self.jitter == 0.0 {
            return Duration::from_secs_f64(capped);
        }
        // splitmix-style finalizer over (seed, attempt) → unit in [0, 1)
        let mut h = seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        let factor = 1.0 + (2.0 * unit - 1.0) * self.jitter;
        Duration::from_secs_f64((capped * factor).max(0.0))
    }

    /// Run `attempt` (1-based attempt number in) under this policy's
    /// budget, charging backoff waits to the simulated clock and
    /// recording `retries_total{provider}`, `backoff_wait_us`, and
    /// `timeouts_total` into `telemetry`.
    ///
    /// This is the single retry loop shared by the distributor's
    /// provider `get`s and `put`s: the closure decides per attempt
    /// whether the failure is [`Fatal`](AttemptOutcome::Fatal) (e.g. the
    /// object is simply not there) or
    /// [`Transient`](AttemptOutcome::Transient) (worth retrying).
    /// Exceeding [`op_deadline`](Self::op_deadline) in cumulative waits
    /// surfaces as [`CoreError::Timeout`] naming `provider`; the wait
    /// that breached the deadline is *not* charged.
    pub fn execute<T>(
        &self,
        seed: u64,
        provider: &str,
        telemetry: &TelemetryHandle,
        mut attempt: impl FnMut(u32) -> AttemptOutcome<T>,
    ) -> RetryExecution<T> {
        let mut sim_time = Duration::ZERO;
        let mut waited = Duration::ZERO;
        let mut retries = 0u64;
        for n in 1..=self.max_attempts {
            match attempt(n) {
                AttemptOutcome::Success(v) => {
                    return RetryExecution {
                        result: Ok(v),
                        sim_time,
                        retries,
                    }
                }
                AttemptOutcome::Fatal(e) => {
                    return RetryExecution {
                        result: Err(e),
                        sim_time,
                        retries,
                    }
                }
                AttemptOutcome::Transient(e) => {
                    if n == self.max_attempts {
                        return RetryExecution {
                            result: Err(e),
                            sim_time,
                            retries,
                        };
                    }
                    let pause = self.backoff(n, seed);
                    waited += pause;
                    if let Some(deadline) = self.op_deadline {
                        if waited > deadline {
                            telemetry.incr("timeouts_total");
                            return RetryExecution {
                                result: Err(CoreError::Timeout {
                                    provider: provider.to_string(),
                                }),
                                sim_time,
                                retries,
                            };
                        }
                    }
                    telemetry.add_labeled("retries_total", provider, 1);
                    telemetry.observe(
                        "backoff_wait_us",
                        pause.as_micros().min(u128::from(u64::MAX)) as u64,
                    );
                    sim_time += pause;
                    retries += 1;
                }
            }
        }
        unreachable!("the loop returns on its final attempt")
    }
}

/// What a single attempt inside [`RetryPolicy::execute`] produced.
#[derive(Debug)]
pub enum AttemptOutcome<T> {
    /// The attempt succeeded; stop and return the value.
    Success(T),
    /// The attempt failed in a way more attempts cannot fix (e.g. the
    /// object does not exist); stop and return the error.
    Fatal(CoreError),
    /// The attempt failed transiently (provider offline, throttled);
    /// retry if the budget allows.
    Transient(CoreError),
}

/// Aggregate outcome of a [`RetryPolicy::execute`] run.
#[derive(Debug)]
pub struct RetryExecution<T> {
    /// Final result: the first success, the first fatal error, the last
    /// transient error, or [`CoreError::Timeout`].
    pub result: crate::Result<T>,
    /// Simulated time charged to backoff waits.
    pub sim_time: Duration,
    /// Retries performed (0 = first attempt settled it).
    pub retries: u64,
}

/// Degraded-mode knobs for the distributor's I/O engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceConfig {
    /// Retry budget applied to every provider `get`/`put` the engine issues.
    pub retry: RetryPolicy,
    /// Hedged reads: when the primary's *estimated* transfer time exceeds
    /// this threshold and the stripe's parity path is predicted to be
    /// faster, the read races the reconstruction against the straggler and
    /// the simulated clock is charged the winner. `None` disables hedging.
    pub hedge_threshold: Option<Duration>,
    /// Order a chunk's candidate sources (primary + replicas) by live
    /// reputation score instead of stored order.
    pub reputation_ordering: bool,
    /// Per-provider circuit breaker driven by observed corruptions,
    /// timeouts, errors, and slow responses (see [`crate::health`]).
    /// Enabled by default — behavior-neutral for a healthy fleet.
    pub breaker: crate::health::BreakerConfig,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            retry: RetryPolicy::default(),
            hedge_threshold: None,
            reputation_ordering: true,
            breaker: crate::health::BreakerConfig::default(),
        }
    }
}

impl ResilienceConfig {
    /// Check the configuration's invariants.
    pub fn validate(&self) -> Result<(), CoreError> {
        self.retry.validate()?;
        self.breaker.validate()
    }
}

/// Findings of a [`scrub`](crate::CloudDataDistributor::scrub) pass over
/// the stripe list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Stripes examined (fully removed stripes are skipped).
    pub stripes_checked: usize,
    /// Stripe ids with at least one lost shard, still within the level's
    /// fault tolerance (readable, but one failure closer to data loss).
    pub degraded: Vec<usize>,
    /// Stripe ids with more shards lost than the level tolerates.
    pub unreadable: Vec<usize>,
    /// Total primary shard objects found missing or unreachable.
    pub missing_shards: usize,
    /// Shard objects that were present but failed integrity verification
    /// (bit-rot at rest, truncation, or a wrong-object swap). Only
    /// populated by [`scrub_verify`](crate::CloudDataDistributor::scrub_verify),
    /// which reads shard payloads; the cheap existence-only
    /// [`scrub`](crate::CloudDataDistributor::scrub) leaves it 0.
    pub corrupt_shards: usize,
}

impl ScrubReport {
    /// Whether every stripe had all its shards where the tables said.
    pub fn is_healthy(&self) -> bool {
        self.degraded.is_empty() && self.unreadable.is_empty() && self.corrupt_shards == 0
    }
}

/// Outcome of a [`repair`](crate::CloudDataDistributor::repair) pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RepairReport {
    /// Stripes restored to full health.
    pub stripes_repaired: usize,
    /// Individual shards re-encoded and re-placed.
    pub shards_rebuilt: usize,
    /// Stripe ids that could not be fully repaired (beyond fault tolerance,
    /// or no eligible provider to host the rebuilt shard).
    pub failed: Vec<usize>,
    /// Simulated time of the repair traffic (peer reads + shard writes).
    pub sim_time: Duration,
}

impl RepairReport {
    /// Whether the pass left no stripe behind.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..Default::default()
        };
        let b1 = p.backoff(1, 0);
        let b2 = p.backoff(2, 0);
        let b3 = p.backoff(3, 0);
        assert_eq!(b1, Duration::from_millis(2));
        assert_eq!(b2, Duration::from_millis(4));
        assert_eq!(b3, Duration::from_millis(8));
        // Far-out attempts hit the cap.
        assert_eq!(p.backoff(30, 0), Duration::from_millis(200));
    }

    #[test]
    fn backoff_jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for attempt in 1..=6 {
            for seed in [0u64, 1, 0xDEAD_BEEF] {
                let a = p.backoff(attempt, seed);
                let b = p.backoff(attempt, seed);
                assert_eq!(a, b, "same (attempt, seed) must agree");
                let nominal = RetryPolicy { jitter: 0.0, ..p }
                    .backoff(attempt, seed)
                    .as_secs_f64();
                let ratio = a.as_secs_f64() / nominal;
                assert!(
                    (1.0 - p.jitter - 1e-9..=1.0 + p.jitter + 1e-9).contains(&ratio),
                    "attempt={attempt} seed={seed} ratio={ratio}"
                );
            }
        }
        // Different seeds decorrelate.
        assert_ne!(p.backoff(1, 1), p.backoff(1, 2));
    }

    #[test]
    fn none_policy_is_a_single_attempt() {
        let p = RetryPolicy::none();
        p.validate().expect("none() is valid");
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p.backoff(1, 7), Duration::ZERO);
    }

    #[test]
    fn invalid_policies_return_named_errors() {
        let err = RetryPolicy {
            max_attempts: 0,
            ..Default::default()
        }
        .validate()
        .expect_err("zero attempts");
        assert!(
            matches!(&err, CoreError::InvalidConfig { detail } if detail.contains("max_attempts"))
        );

        let err = RetryPolicy {
            jitter: 1.0,
            ..Default::default()
        }
        .validate()
        .expect_err("full jitter");
        assert!(matches!(&err, CoreError::InvalidConfig { detail } if detail.contains("jitter")));

        let err = RetryPolicy {
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(5),
            ..Default::default()
        }
        .validate()
        .expect_err("inverted bounds");
        assert!(
            matches!(&err, CoreError::InvalidConfig { detail } if detail.contains("max_backoff"))
        );
    }

    #[test]
    fn execute_retries_transient_and_stops_on_fatal() {
        use fragcloud_telemetry::TelemetryHandle;
        let p = RetryPolicy {
            jitter: 0.0,
            ..Default::default()
        };
        let tel = TelemetryHandle::enabled();

        // Succeeds on the third (final) attempt: two retries charged.
        let mut calls = 0;
        let run = p.execute(0, "cp0", &tel, |n| {
            calls += 1;
            if n < 3 {
                AttemptOutcome::Transient(CoreError::AccessDenied)
            } else {
                AttemptOutcome::Success(n)
            }
        });
        assert_eq!(run.result.as_ref().copied().unwrap(), 3);
        assert_eq!((calls, run.retries), (3, 2));
        assert_eq!(run.sim_time, Duration::from_millis(2 + 4));

        // Fatal on attempt one: no retries, no waits.
        let run = p.execute(0, "cp0", &tel, |_| {
            AttemptOutcome::Fatal::<u32>(CoreError::AccessDenied)
        });
        assert!(run.result.is_err());
        assert_eq!((run.retries, run.sim_time), (0, Duration::ZERO));

        let reg = tel.registry().unwrap();
        assert_eq!(reg.counter_value("retries_total", "cp0"), 2);
        assert_eq!(reg.histogram("backoff_wait_us", "").count(), 2);
    }

    #[test]
    fn execute_deadline_surfaces_timeout() {
        use fragcloud_telemetry::TelemetryHandle;
        let p = RetryPolicy {
            max_attempts: 10,
            jitter: 0.0,
            op_deadline: Some(Duration::from_millis(5)),
            ..Default::default()
        };
        let tel = TelemetryHandle::enabled();
        let run = p.execute(0, "slowpoke", &tel, |_| {
            AttemptOutcome::Transient::<()>(CoreError::AccessDenied)
        });
        // Waits are 2ms, 4ms… — cumulative 6ms breaches the 5ms deadline
        // on the second pause, which must not itself be charged.
        assert!(matches!(
            run.result,
            Err(CoreError::Timeout { ref provider }) if provider == "slowpoke"
        ));
        assert_eq!(run.retries, 1);
        assert_eq!(run.sim_time, Duration::from_millis(2));
        assert_eq!(tel.registry().unwrap().counter_total("timeouts_total"), 1);
    }

    #[test]
    fn reports_summarize_health() {
        let healthy = ScrubReport {
            stripes_checked: 4,
            ..Default::default()
        };
        assert!(healthy.is_healthy());
        let sick = ScrubReport {
            stripes_checked: 4,
            degraded: vec![2],
            unreadable: vec![],
            missing_shards: 1,
            corrupt_shards: 0,
        };
        assert!(!sick.is_healthy());
        let rotted = ScrubReport {
            stripes_checked: 4,
            corrupt_shards: 1,
            ..Default::default()
        };
        assert!(!rotted.is_healthy());
        assert!(RepairReport::default().is_complete());
        assert!(!RepairReport {
            failed: vec![1],
            ..Default::default()
        }
        .is_complete());
    }

    #[test]
    fn default_resilience_validates() {
        ResilienceConfig::default()
            .validate()
            .expect("defaults are valid");
    }
}
