//! Shard-integrity framing: a checksum stamped into every stored object.
//!
//! Every byte string the distributor hands to a provider is wrapped in a
//! small frame before `put` and verified + stripped after `get`:
//!
//! ```text
//! +-------+---------+------------------+----------------+
//! | magic | version | checksum (LE u64)| payload ...    |
//! | 4 B   | 1 B     | 8 B              |                |
//! +-------+---------+------------------+----------------+
//! ```
//!
//! The checksum is [`fragcloud_crypto::checksum64`] over the payload,
//! **seeded by the object's virtual id** — so a provider serving an
//! internally consistent but *wrong* object (a misrouted or swapped
//! read) fails verification exactly like bit-rot does, without the
//! tables having to store a digest per chunk. A mismatch surfaces as
//! [`CoreError::ShardCorrupt`], which the read path treats as an
//! erasure: the shard routes into parity reconstruction and read-repair
//! rather than ever reaching decode as bad bytes.
//!
//! ## Versioning
//!
//! Frames carry version [`FRAME_VERSION`]; objects written before this
//! framing existed ("v1", unframed) carry no magic and are passed
//! through unverified — callers count them under `unframed_reads_total`
//! and rely on reconstruction-time length checks instead, so a fleet
//! with pre-framing objects keeps reading. (A legacy payload could
//! start with the 5 magic+version bytes only by a 2⁻⁴⁰ accident; even
//! then the failure mode is a checksum mismatch, i.e. a spurious
//! erasure that parity absorbs — never silent corruption.)

use crate::{CoreError, Result};
use bytes::Bytes;
use fragcloud_crypto::checksum64;
use fragcloud_sim::VirtualId;

/// Frame format version stamped after the magic. Version 1 is the
/// retroactive name for unframed pre-framing objects.
pub const FRAME_VERSION: u8 = 2;

/// Frame magic: "FraGcloud Integrity".
const MAGIC: [u8; 4] = *b"FGI\x02";

/// Bytes of framing overhead per stored object.
pub const FRAME_OVERHEAD: usize = MAGIC.len() + 1 + 8;

/// Wraps a payload for storage under `vid`: magic, version, and a
/// vid-seeded checksum over the payload.
pub fn frame(vid: VirtualId, payload: &[u8]) -> Bytes {
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(FRAME_VERSION);
    out.extend_from_slice(&checksum64(payload, vid.0).to_le_bytes());
    out.extend_from_slice(payload);
    Bytes::from(out)
}

/// Verifies and strips the frame from bytes read back for `vid`.
///
/// Returns `(payload, framed)`: `framed` is `false` for legacy v1
/// objects (no magic), which pass through unverified. A present frame
/// whose version is unknown or whose checksum does not match the
/// vid-seeded payload sum fails with [`CoreError::ShardCorrupt`].
pub fn unframe(vid: VirtualId, bytes: Bytes) -> Result<(Bytes, bool)> {
    if bytes.len() < FRAME_OVERHEAD || bytes[..MAGIC.len()] != MAGIC {
        return Ok((bytes, false));
    }
    let version = bytes[MAGIC.len()];
    if version != FRAME_VERSION {
        return Err(CoreError::ShardCorrupt {
            vid,
            why: format!("unsupported frame version {version}"),
        });
    }
    let mut sum = [0u8; 8];
    sum.copy_from_slice(&bytes[MAGIC.len() + 1..FRAME_OVERHEAD]);
    let stamped = u64::from_le_bytes(sum);
    let payload = bytes.slice(FRAME_OVERHEAD..);
    if checksum64(&payload, vid.0) != stamped {
        return Err(CoreError::ShardCorrupt {
            vid,
            why: "checksum mismatch".to_string(),
        });
    }
    Ok((payload, true))
}

/// [`unframe`] plus a table-length cross-check that closes the magic-flip
/// hole: corruption inside the 4-byte magic makes a framed object look
/// like a legacy unframed one, and `unframe` alone would pass the whole
/// damaged blob through as payload. The chunk tables record every
/// shard's payload length out-of-band, so a "legacy" blob whose length
/// differs from `expected_len` cannot be a real v1 object — it is a
/// framed object with a corrupted header (or a grown/shrunk legacy one),
/// and either way it must not reach decode.
pub fn unframe_expecting(vid: VirtualId, bytes: Bytes, expected_len: usize) -> Result<(Bytes, bool)> {
    let (payload, framed) = unframe(vid, bytes)?;
    if !framed && payload.len() != expected_len {
        return Err(CoreError::ShardCorrupt {
            vid,
            why: format!(
                "unframed object is {} bytes, table says {expected_len}",
                payload.len()
            ),
        });
    }
    Ok((payload, framed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_overhead() {
        let vid = VirtualId(1234);
        let payload = Bytes::from((0u16..700).map(|i| (i % 251) as u8).collect::<Vec<u8>>());
        let framed = frame(vid, &payload);
        assert_eq!(framed.len(), payload.len() + FRAME_OVERHEAD);
        let (back, was_framed) = unframe(vid, framed).expect("clean frame verifies");
        assert!(was_framed);
        assert_eq!(back, payload);
        // Empty payloads frame too.
        let (empty, was_framed) = unframe(vid, frame(vid, b"")).unwrap();
        assert!(was_framed);
        assert!(empty.is_empty());
    }

    #[test]
    fn every_flipped_bit_is_caught() {
        let vid = VirtualId(77);
        let payload: Vec<u8> = (0..64).map(|i| (i * 3) as u8).collect();
        let framed = frame(vid, &payload);
        for byte in 0..framed.len() {
            for bit in 0..8 {
                let mut bad = framed.to_vec();
                bad[byte] ^= 1 << bit;
                let outcome = unframe(vid, Bytes::from(bad));
                // A flip in the magic demotes the object to legacy
                // pass-through (indistinguishable from an unframed v1
                // object); any other flip must be a typed corruption.
                if byte < MAGIC.len() {
                    assert!(matches!(outcome, Ok((_, false))), "byte={byte} bit={bit}");
                } else {
                    assert!(
                        matches!(outcome, Err(CoreError::ShardCorrupt { .. })),
                        "byte={byte} bit={bit}: {outcome:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn truncation_is_caught() {
        let vid = VirtualId(9);
        let framed = frame(vid, &[7u8; 100]);
        for keep in FRAME_OVERHEAD..framed.len() {
            assert!(
                matches!(
                    unframe(vid, framed.slice(..keep)),
                    Err(CoreError::ShardCorrupt { .. })
                ),
                "keep={keep}"
            );
        }
    }

    #[test]
    fn wrong_object_swap_is_caught() {
        // The same payload framed for a different vid must not verify:
        // the checksum seed is the vid.
        let payload = [42u8; 32];
        let framed_for_a = frame(VirtualId(1), &payload);
        assert!(matches!(
            unframe(VirtualId(2), framed_for_a.clone()),
            Err(CoreError::ShardCorrupt { vid: VirtualId(2), .. })
        ));
        assert!(unframe(VirtualId(1), framed_for_a).is_ok());
    }

    #[test]
    fn legacy_unframed_objects_pass_through() {
        let vid = VirtualId(5);
        for raw in [&b""[..], b"short", &[0u8; 64][..]] {
            let (back, framed) = unframe(vid, Bytes::copy_from_slice(raw)).unwrap();
            assert!(!framed);
            assert_eq!(back, Bytes::copy_from_slice(raw));
        }
    }

    #[test]
    fn magic_flip_is_caught_by_length_cross_check() {
        let vid = VirtualId(11);
        let payload: Vec<u8> = (0..100).map(|i| (i * 7) as u8).collect();
        let framed = frame(vid, &payload);
        // Damage every bit of the magic: plain unframe demotes to legacy,
        // but the length cross-check (payload.len() + FRAME_OVERHEAD ≠
        // payload.len()) turns every one into a typed corruption.
        for byte in 0..MAGIC.len() {
            for bit in 0..8 {
                let mut bad = framed.to_vec();
                bad[byte] ^= 1 << bit;
                assert!(
                    matches!(
                        unframe_expecting(vid, Bytes::from(bad), payload.len()),
                        Err(CoreError::ShardCorrupt { .. })
                    ),
                    "byte={byte} bit={bit}"
                );
            }
        }
        // A genuine legacy object of the right length still passes.
        let (back, framed_flag) =
            unframe_expecting(vid, Bytes::copy_from_slice(&payload), payload.len()).unwrap();
        assert!(!framed_flag);
        assert_eq!(back, Bytes::copy_from_slice(&payload));
        // And an intact frame is unaffected by the cross-check.
        let (back, framed_flag) = unframe_expecting(vid, frame(vid, &payload), payload.len()).unwrap();
        assert!(framed_flag);
        assert_eq!(back, Bytes::copy_from_slice(&payload));
    }

    #[test]
    fn unknown_frame_version_is_corrupt_not_garbage() {
        let vid = VirtualId(3);
        let mut framed = frame(vid, b"hello").to_vec();
        framed[MAGIC.len()] = 99;
        assert!(matches!(
            unframe(vid, Bytes::from(framed)),
            Err(CoreError::ShardCorrupt { why, .. }) if why.contains("version 99")
        ));
    }
}
