//! Multiple Cloud Data Distributors (Fig. 2).
//!
//! §IV-C: "a single data distributor can create a bottleneck in the system
//! as it can be the single point of failure. To eliminate this, multiple
//! distributors of cloud data can be introduced. In case of multiple data
//! distributors, for each client, a specific distributor will act as the
//! primary distributor that will upload data, whereas other distributors
//! will act as secondary distributors who can perform the data retrieval
//! operations."
//!
//! The group shares one logical table state (the distributors replicate it;
//! we model the replicated state as the shared [`CloudDataDistributor`]),
//! enforces the primary-for-writes rule, and supports failover promotion.

use crate::distributor::{CloudDataDistributor, GetReceipt, PutOptions, PutReceipt};
use crate::resilience::{RepairReport, ScrubReport};
use crate::{CoreError, PrivacyLevel, Result};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One distributor node in the group.
struct Node {
    name: String,
    online: AtomicBool,
}

/// A group of distributors sharing replicated table state.
pub struct DistributorGroup {
    shared: Arc<CloudDataDistributor>,
    nodes: Vec<Node>,
    /// client → node index of its primary distributor.
    primary_of: RwLock<HashMap<String, usize>>,
}

impl DistributorGroup {
    /// Creates a group of `n` distributor nodes over shared state,
    /// rejecting an empty group: with zero nodes there is no primary to
    /// write through and no secondary to fail over to.
    pub fn try_new(shared: Arc<CloudDataDistributor>, n: usize) -> Result<Self> {
        if n == 0 {
            return Err(CoreError::InvalidConfig {
                detail: "a distributor group needs at least one node".to_string(),
            });
        }
        Ok(DistributorGroup {
            shared,
            nodes: (0..n)
                .map(|i| Node {
                    name: format!("distributor-{i}"),
                    online: AtomicBool::new(true),
                })
                .collect(),
            primary_of: RwLock::new(HashMap::new()),
        })
    }

    /// Creates a group of `n` distributor nodes over shared state.
    ///
    /// # Panics
    /// Panics when `n == 0`; [`DistributorGroup::try_new`] is the fallible
    /// form.
    pub fn new(shared: Arc<CloudDataDistributor>, n: usize) -> Self {
        // fraglint: allow(no-unwrap-in-lib) — documented panicking convenience form; try_new is the fallible variant.
        Self::try_new(shared, n).expect("a distributor group needs at least one node")
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the group is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node name.
    pub fn node_name(&self, idx: usize) -> &str {
        &self.nodes[idx].name
    }

    /// Takes a distributor node down / up.
    pub fn set_node_online(&self, idx: usize, online: bool) {
        self.nodes[idx].online.store(online, Ordering::Release);
    }

    /// Whether a node is up.
    pub fn node_online(&self, idx: usize) -> bool {
        self.nodes[idx].online.load(Ordering::Acquire)
    }

    /// Registers a client with the given node as its primary.
    pub fn register_client(&self, primary_idx: usize, client: &str) -> Result<()> {
        self.check_up(primary_idx)?;
        self.shared.register_client(client)?;
        self.primary_of
            .write()
            .insert(client.to_string(), primary_idx);
        Ok(())
    }

    /// Adds a password via any online node (table state is replicated).
    pub fn add_password(
        &self,
        via: usize,
        client: &str,
        password: &str,
        pl: PrivacyLevel,
    ) -> Result<()> {
        self.check_up(via)?;
        self.shared.add_password(client, password, pl)
    }

    /// Index of a client's current primary.
    pub fn primary_of(&self, client: &str) -> Result<usize> {
        self.primary_of
            .read()
            .get(client)
            .copied()
            .ok_or_else(|| CoreError::UnknownClient(client.to_string()))
    }

    /// Uploads through a node; only the client's primary may upload.
    #[allow(clippy::too_many_arguments)]
    pub fn put_file(
        &self,
        via: usize,
        client: &str,
        password: &str,
        filename: &str,
        data: &[u8],
        pl: PrivacyLevel,
        opts: PutOptions,
    ) -> Result<PutReceipt> {
        self.check_up(via)?;
        let primary = self.primary_of(client)?;
        if primary != via {
            return Err(CoreError::NotPrimary {
                client: client.to_string(),
                primary: self.nodes[primary].name.clone(),
            });
        }
        self.shared
            .put_file_impl(client, password, filename, data, pl, opts)
    }

    /// Retrieval may go through **any** online node (the secondaries'
    /// role in Fig. 2).
    pub fn get_file(
        &self,
        via: usize,
        client: &str,
        password: &str,
        filename: &str,
    ) -> Result<GetReceipt> {
        self.check_up(via)?;
        self.shared.get_file_impl(client, password, filename)
    }

    /// Promotes the lowest-indexed online node to primary for a client
    /// whose primary failed. Returns the new primary index.
    pub fn failover(&self, client: &str) -> Result<usize> {
        let current = self.primary_of(client)?;
        if self.node_online(current) {
            return Ok(current);
        }
        let new = (0..self.nodes.len())
            .find(|&i| self.node_online(i))
            .ok_or_else(|| CoreError::DistributorDown("all".to_string()))?;
        self.primary_of.write().insert(client.to_string(), new);
        Ok(new)
    }

    /// Operator-side stripe audit, addressed through node `via` (any
    /// online node may run maintenance, like retrieval in Fig. 2).
    pub fn scrub(&self, via: usize) -> Result<ScrubReport> {
        self.check_up(via)?;
        Ok(self.shared.scrub())
    }

    /// Rebuilds the degraded stripes a fresh scrub finds, through node
    /// `via`.
    pub fn repair(&self, via: usize) -> Result<RepairReport> {
        self.check_up(via)?;
        Ok(self.shared.repair())
    }

    fn check_up(&self, idx: usize) -> Result<()> {
        if self.node_online(idx) {
            Ok(())
        } else {
            Err(CoreError::DistributorDown(self.nodes[idx].name.clone()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ChunkSizeSchedule, DistributorConfig};
    use fragcloud_sim::{CloudProvider, CostLevel, ProviderProfile};

    fn group(n: usize) -> DistributorGroup {
        let providers: Vec<Arc<CloudProvider>> = (0..6)
            .map(|i| {
                Arc::new(CloudProvider::new(ProviderProfile::new(
                    format!("cp{i}"),
                    PrivacyLevel::High,
                    CostLevel::new(1),
                )))
            })
            .collect();
        let shared = Arc::new(CloudDataDistributor::new(
            providers,
            DistributorConfig {
                chunk_sizes: ChunkSizeSchedule::uniform(32),
                stripe_width: 3,
                ..Default::default()
            },
        ));
        DistributorGroup::new(shared, n)
    }

    fn body() -> Vec<u8> {
        (0..200u32).map(|i| (i * 7) as u8).collect()
    }

    #[test]
    fn primary_writes_secondaries_read() {
        let g = group(3);
        g.register_client(0, "Bob").unwrap();
        g.add_password(1, "Bob", "pw", PrivacyLevel::High).unwrap();
        g.put_file(
            0,
            "Bob",
            "pw",
            "f",
            &body(),
            PrivacyLevel::Low,
            PutOptions::default(),
        )
        .unwrap();
        // Every node can serve the read.
        for via in 0..3 {
            let r = g.get_file(via, "Bob", "pw", "f").unwrap();
            assert_eq!(r.data, body(), "via={via}");
        }
    }

    #[test]
    fn non_primary_writes_rejected() {
        let g = group(3);
        g.register_client(1, "Bob").unwrap();
        g.add_password(1, "Bob", "pw", PrivacyLevel::High).unwrap();
        let err = g
            .put_file(
                0,
                "Bob",
                "pw",
                "f",
                &body(),
                PrivacyLevel::Low,
                PutOptions::default(),
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::NotPrimary { .. }));
        assert_eq!(g.primary_of("Bob").unwrap(), 1);
    }

    #[test]
    fn down_node_rejects_and_failover_promotes() {
        let g = group(3);
        g.register_client(0, "Bob").unwrap();
        g.add_password(0, "Bob", "pw", PrivacyLevel::High).unwrap();
        g.put_file(
            0,
            "Bob",
            "pw",
            "f",
            &body(),
            PrivacyLevel::Low,
            PutOptions::default(),
        )
        .unwrap();
        g.set_node_online(0, false);
        assert!(matches!(
            g.get_file(0, "Bob", "pw", "f"),
            Err(CoreError::DistributorDown(_))
        ));
        // Reads still work through a secondary.
        assert!(g.get_file(2, "Bob", "pw", "f").is_ok());
        // Failover promotes node 1, writes resume there.
        let new_primary = g.failover("Bob").unwrap();
        assert_eq!(new_primary, 1);
        g.put_file(
            1,
            "Bob",
            "pw",
            "g",
            &body(),
            PrivacyLevel::Low,
            PutOptions::default(),
        )
        .unwrap();
    }

    #[test]
    fn failover_is_noop_when_primary_up() {
        let g = group(2);
        g.register_client(1, "Bob").unwrap();
        assert_eq!(g.failover("Bob").unwrap(), 1);
    }

    #[test]
    fn all_nodes_down_failover_fails() {
        let g = group(2);
        g.register_client(0, "Bob").unwrap();
        g.set_node_online(0, false);
        g.set_node_online(1, false);
        assert!(matches!(
            g.failover("Bob"),
            Err(CoreError::DistributorDown(_))
        ));
    }

    #[test]
    fn group_basics() {
        let g = group(3);
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
        assert_eq!(g.node_name(0), "distributor-0");
        assert!(matches!(
            g.primary_of("nobody"),
            Err(CoreError::UnknownClient(_))
        ));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_group_panics() {
        let g = group(1);
        let _ = DistributorGroup::new(Arc::clone(&g.shared), 0);
    }

    #[test]
    fn try_new_rejects_empty_group() {
        let g = group(1);
        let Err(err) = DistributorGroup::try_new(Arc::clone(&g.shared), 0) else {
            panic!("empty group accepted");
        };
        assert!(
            matches!(&err, CoreError::InvalidConfig { detail } if detail.contains("at least one node"))
        );
        assert!(DistributorGroup::try_new(Arc::clone(&g.shared), 2).is_ok());
    }

    /// Fig. 2 failover under load: the primary goes down in the middle of
    /// a read sequence; every in-flight read completes through a
    /// secondary, promotion picks the lowest-indexed online node, and the
    /// write path moves with it.
    #[test]
    fn failover_mid_read_sequence_under_load() {
        let g = group(4);
        g.register_client(0, "Bob").unwrap();
        g.add_password(0, "Bob", "pw", PrivacyLevel::High).unwrap();
        let files: Vec<String> = (0..8).map(|i| format!("f{i}")).collect();
        for (i, f) in files.iter().enumerate() {
            let mut data = body();
            data.push(i as u8);
            g.put_file(
                0,
                "Bob",
                "pw",
                f,
                &data,
                PrivacyLevel::Low,
                PutOptions::default(),
            )
            .unwrap();
        }

        // Read back through the primary until it dies mid-sequence.
        for f in &files[..4] {
            g.get_file(0, "Bob", "pw", f).unwrap();
        }
        g.set_node_online(0, false);
        for (i, f) in files.iter().enumerate() {
            // The dead primary refuses; any secondary serves the rest of
            // the sequence with intact bytes.
            assert!(matches!(
                g.get_file(0, "Bob", "pw", f),
                Err(CoreError::DistributorDown(_))
            ));
            let via = 1 + (i % 3);
            let r = g.get_file(via, "Bob", "pw", f).unwrap();
            let mut want = body();
            want.push(i as u8);
            assert_eq!(r.data, want, "file {f} via node {via}");
        }

        // Until failover runs, writes are stuck: the mapped primary is
        // node 0, so every secondary rejects the upload.
        for via in 1..4 {
            assert!(matches!(
                g.put_file(
                    via,
                    "Bob",
                    "pw",
                    "h",
                    &body(),
                    PrivacyLevel::Low,
                    PutOptions::default()
                ),
                Err(CoreError::NotPrimary { .. })
            ));
        }
        assert_eq!(g.failover("Bob").unwrap(), 1);

        // Writes resume on the promoted node only.
        g.put_file(
            1,
            "Bob",
            "pw",
            "h",
            &body(),
            PrivacyLevel::Low,
            PutOptions::default(),
        )
        .unwrap();
        assert!(matches!(
            g.put_file(
                2,
                "Bob",
                "pw",
                "h2",
                &body(),
                PrivacyLevel::Low,
                PutOptions::default()
            ),
            Err(CoreError::NotPrimary { .. })
        ));

        // The old primary coming back does not reclaim the role: it can
        // serve reads again but its writes are rejected.
        g.set_node_online(0, true);
        assert_eq!(g.get_file(0, "Bob", "pw", "h").unwrap().data, body());
        assert!(matches!(
            g.put_file(
                0,
                "Bob",
                "pw",
                "h3",
                &body(),
                PrivacyLevel::Low,
                PutOptions::default()
            ),
            Err(CoreError::NotPrimary { .. })
        ));
        assert_eq!(g.primary_of("Bob").unwrap(), 1);
    }
}
