//! Typed client API: [`Credentials`] plus a [`Session`] handle.
//!
//! The original surface took ⟨client, password⟩ as loose string pairs on
//! every call, which made it easy to swap arguments or re-authenticate on
//! each operation. A [`Session`] is opened once through
//! [`CloudDataDistributor::session`] — validating the client and password
//! up front — and then exposes the per-file operations without repeating
//! the credentials:
//!
//! ```
//! use fragcloud_core::{CloudDataDistributor, DistributorConfig, PutOptions};
//! use fragcloud_sim::{CloudProvider, CostLevel, PrivacyLevel, ProviderProfile};
//! use std::sync::Arc;
//!
//! let fleet: Vec<_> = (0..6)
//!     .map(|i| {
//!         Arc::new(CloudProvider::new(ProviderProfile::new(
//!             format!("cp{i}"),
//!             PrivacyLevel::High,
//!             CostLevel::new(i % 4),
//!         )))
//!     })
//!     .collect();
//! let d = CloudDataDistributor::try_new(fleet, DistributorConfig::default()).unwrap();
//! d.register_client("Bob").unwrap();
//! d.add_password("Bob", "Ty7e", PrivacyLevel::High).unwrap();
//!
//! let session = d.session("Bob", "Ty7e").unwrap();
//! session
//!     .put_file("a.txt", b"hello", PrivacyLevel::High, PutOptions::new())
//!     .unwrap();
//! assert_eq!(session.get_file("a.txt").unwrap().data, b"hello");
//! ```
//!
//! Access control is unchanged: the password's privacy level is still
//! checked against each chunk's level *per operation* (§V), so a `Public`
//! session can open fine and still be denied on `High` data.

use crate::access;
use crate::distributor::{CloudDataDistributor, GetReceipt, PutOptions, PutReceipt};
use crate::Result;
use fragcloud_sim::PrivacyLevel;
use std::fmt;

/// A validated ⟨client, password⟩ pair.
///
/// The password is deliberately not readable outside this crate, and the
/// `Debug` form redacts it so credentials cannot leak through logs.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Credentials {
    client: String,
    password: String,
}

impl Credentials {
    /// Bundles a client name and one of its passwords.
    pub fn new(client: impl Into<String>, password: impl Into<String>) -> Self {
        Credentials {
            client: client.into(),
            password: password.into(),
        }
    }

    /// The client name.
    pub fn client(&self) -> &str {
        &self.client
    }

    pub(crate) fn password(&self) -> &str {
        &self.password
    }
}

impl fmt::Debug for Credentials {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Credentials")
            .field("client", &self.client)
            .field("password", &"<redacted>")
            .finish()
    }
}

/// A client's authenticated handle onto a distributor.
///
/// Created by [`CloudDataDistributor::session`]; borrows the distributor,
/// so it cannot outlive it.
#[derive(Debug)]
pub struct Session<'d> {
    distributor: &'d CloudDataDistributor,
    credentials: Credentials,
    privilege: PrivacyLevel,
}

impl CloudDataDistributor {
    /// Opens a typed session for `client`, failing fast with
    /// [`CoreError::AccessDenied`](crate::CoreError::AccessDenied) when the
    /// password is not one of the client's registered pairs (§V).
    pub fn session(&self, client: &str, password: &str) -> Result<Session<'_>> {
        self.session_with(Credentials::new(client, password))
    }

    /// [`session`](Self::session) with pre-built [`Credentials`].
    pub fn session_with(&self, credentials: Credentials) -> Result<Session<'_>> {
        let privilege = {
            // The client directory (names + passwords) is replicated into
            // every shard; shard 0 speaks for all.
            let st = self.shard_read(0);
            access::password_level(st.client(credentials.client())?, credentials.password())?
        };
        Ok(Session {
            distributor: self,
            credentials,
            privilege,
        })
    }
}

impl fmt::Debug for CloudDataDistributor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CloudDataDistributor")
            .finish_non_exhaustive()
    }
}

impl<'d> Session<'d> {
    /// The credentials this session was opened with (password redacted in
    /// `Debug`).
    pub fn credentials(&self) -> &Credentials {
        &self.credentials
    }

    /// The client name.
    pub fn client(&self) -> &str {
        self.credentials.client()
    }

    /// Highest privacy level this session's password may touch (§V) —
    /// resolved once at session open.
    pub fn privilege(&self) -> PrivacyLevel {
        self.privilege
    }

    /// The distributor this session is bound to.
    pub fn distributor(&self) -> &'d CloudDataDistributor {
        self.distributor
    }

    /// The distributor's runtime-telemetry handle (disabled unless
    /// [`CloudDataDistributor::enable_telemetry`] or
    /// [`CloudDataDistributor::set_telemetry`] was called). Every op issued
    /// through this session is recorded against it.
    pub fn telemetry(&self) -> fragcloud_telemetry::TelemetryHandle {
        self.distributor.telemetry()
    }

    /// Exports every span this session's distributor retained as Chrome
    /// `trace_event` JSON — loadable in Perfetto / `chrome://tracing` —
    /// or `None` when telemetry is disabled. Spans from *all* sessions
    /// bound to the same distributor share the registry, so the trace
    /// shows the whole process's put/get/scrub/repair timeline.
    pub fn export_trace(&self) -> Option<String> {
        self.telemetry().registry().map(|r| r.export_trace())
    }

    /// Uploads a file at the given privacy level; see
    /// [`PutOptions`] for per-upload knobs.
    pub fn put_file(
        &self,
        filename: &str,
        data: &[u8],
        pl: PrivacyLevel,
        opts: PutOptions,
    ) -> Result<PutReceipt> {
        self.distributor.put_file_impl(
            self.credentials.client(),
            self.credentials.password(),
            filename,
            data,
            pl,
            opts,
        )
    }

    /// Uploads a file from a [`Read`](std::io::Read) source of declared
    /// length without ever buffering it whole: peak memory is bounded by
    /// the pipeline window, and the resulting provider state is
    /// byte-identical to [`put_file`](Self::put_file) with the same bytes.
    /// A source that yields more or fewer bytes than `len` fails the put
    /// with [`crate::CoreError::StreamLengthMismatch`].
    pub fn put_stream(
        &self,
        filename: &str,
        reader: &mut dyn std::io::Read,
        len: usize,
        pl: PrivacyLevel,
        opts: PutOptions,
    ) -> Result<PutReceipt> {
        self.distributor.put_stream_impl(
            self.credentials.client(),
            self.credentials.password(),
            filename,
            reader,
            len,
            pl,
            opts,
        )
    }

    /// Fetches and reassembles a whole file (§VI `get file`) through the
    /// degraded-mode read path.
    pub fn get_file(&self, filename: &str) -> Result<GetReceipt> {
        self.distributor.get_file_impl(
            self.credentials.client(),
            self.credentials.password(),
            filename,
        )
    }

    /// [`get_file`](Self::get_file) with a parallel per-provider fan-out.
    pub fn get_file_parallel(&self, filename: &str) -> Result<GetReceipt> {
        self.distributor.get_file_parallel_impl(
            self.credentials.client(),
            self.credentials.password(),
            filename,
        )
    }

    /// Fetches one chunk by serial number (§VI `get chunk`).
    pub fn get_chunk(&self, filename: &str, serial: u32) -> Result<Vec<u8>> {
        self.distributor.get_chunk_impl(
            self.credentials.client(),
            self.credentials.password(),
            filename,
            serial,
        )
    }

    /// Replaces one chunk's contents, snapshotting the pre-state first
    /// (§IV-A).
    pub fn update_chunk(&self, filename: &str, serial: u32, new_data: &[u8]) -> Result<()> {
        self.distributor.update_chunk_impl(
            self.credentials.client(),
            self.credentials.password(),
            filename,
            serial,
            new_data,
        )
    }

    /// Restores a chunk from its snapshot (undo the last update).
    pub fn restore_snapshot(&self, filename: &str, serial: u32) -> Result<()> {
        self.distributor.restore_snapshot_impl(
            self.credentials.client(),
            self.credentials.password(),
            filename,
            serial,
        )
    }

    /// Removes one chunk (§VI `remove chunk`).
    pub fn remove_chunk(&self, filename: &str, serial: u32) -> Result<()> {
        self.distributor.remove_chunk_impl(
            self.credentials.client(),
            self.credentials.password(),
            filename,
            serial,
        )
    }

    /// Removes a whole file (§VI `remove file`): data chunks, parity
    /// chunks, snapshots and all table entries. The involved providers are
    /// availability-checked before any mutation, so an outage yields a
    /// clean error with the file untouched.
    pub fn remove_file(&self, filename: &str) -> Result<()> {
        self.distributor.remove_file_impl(
            self.credentials.client(),
            self.credentials.password(),
            filename,
        )
    }

    /// Chunk count notified for a file (valid serials `0..n`).
    pub fn file_chunk_count(&self, filename: &str) -> Result<usize> {
        self.distributor
            .file_chunk_count(self.credentials.client(), filename)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DistributorConfig;
    use crate::CoreError;
    use fragcloud_sim::{CloudProvider, CostLevel, ProviderProfile};
    use std::sync::Arc;

    fn distributor() -> CloudDataDistributor {
        let fleet: Vec<_> = (0..6)
            .map(|i| {
                Arc::new(CloudProvider::new(ProviderProfile::new(
                    format!("cp{i}"),
                    PrivacyLevel::High,
                    CostLevel::new((i % 4) as u8),
                )))
            })
            .collect();
        let d = CloudDataDistributor::new(fleet, DistributorConfig::default());
        d.register_client("Bob").unwrap();
        d.add_password("Bob", "Ty7e", PrivacyLevel::High).unwrap();
        d.add_password("Bob", "aB1c", PrivacyLevel::Public).unwrap();
        d
    }

    #[test]
    fn session_validates_up_front() {
        let d = distributor();
        assert!(d.session("Bob", "Ty7e").is_ok());
        assert_eq!(
            d.session("Bob", "wrong").unwrap_err(),
            CoreError::AccessDenied
        );
        assert!(matches!(
            d.session("Eve", "Ty7e").unwrap_err(),
            CoreError::UnknownClient(_)
        ));
    }

    #[test]
    fn session_round_trip_and_privilege() {
        let d = distributor();
        let s = d.session("Bob", "Ty7e").unwrap();
        assert_eq!(s.client(), "Bob");
        assert_eq!(s.privilege(), PrivacyLevel::High);
        s.put_file("f", b"abc", PrivacyLevel::High, PutOptions::new())
            .unwrap();
        assert_eq!(s.get_file("f").unwrap().data, b"abc");
        assert_eq!(s.file_chunk_count("f").unwrap(), 1);
        s.remove_file("f").unwrap();
        assert!(s.get_file("f").is_err());
    }

    #[test]
    fn low_privilege_session_opens_but_is_denied_per_op() {
        let d = distributor();
        let high = d.session("Bob", "Ty7e").unwrap();
        high.put_file("secret", b"xyz", PrivacyLevel::High, PutOptions::new())
            .unwrap();
        // A Public session opens fine (valid pair) but §V denies the read.
        let public = d.session("Bob", "aB1c").unwrap();
        assert_eq!(public.privilege(), PrivacyLevel::Public);
        assert_eq!(
            public.get_file("secret").unwrap_err(),
            CoreError::AccessDenied
        );
    }

    #[test]
    fn credentials_debug_redacts_password() {
        let c = Credentials::new("Bob", "Ty7e");
        let dbg = format!("{c:?}");
        assert!(dbg.contains("Bob"));
        assert!(!dbg.contains("Ty7e"));
        assert!(dbg.contains("<redacted>"));
    }
}
