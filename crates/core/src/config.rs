//! Distributor configuration.

use crate::resilience::ResilienceConfig;
use fragcloud_raid::RaidLevel;
use fragcloud_sim::PrivacyLevel;

/// Chunk-placement strategy among eligible providers.
///
/// The paper distributes chunks "in a random way" among eligible providers
/// (§VI) but also prefers lower cost levels (§IV-A); the ablation in E12
/// compares these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Prefer the cheapest eligible provider, randomizing ties — the
    /// paper's composite rule and our default.
    CheapestEligible,
    /// Uniform random among all eligible providers.
    RandomEligible,
    /// Everything to the single cheapest eligible provider — the paper's
    /// *baseline under attack* (single-provider cloud).
    SingleProvider,
}

/// PL→chunk-size schedule: "the chunk size is fixed for a particular
/// privilege level. The higher the privilege level, the lower the chunk
/// size" (§VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSizeSchedule {
    /// Chunk size in bytes for each PL 0..=3.
    pub sizes: [usize; 4],
}

impl ChunkSizeSchedule {
    /// The defaults called out in DESIGN.md §5:
    /// PL0 = 256 KiB, PL1 = 64 KiB, PL2 = 16 KiB, PL3 = 4 KiB.
    pub fn paper_default() -> Self {
        ChunkSizeSchedule {
            sizes: [256 << 10, 64 << 10, 16 << 10, 4 << 10],
        }
    }

    /// Uniform chunk size across levels (for sweeps).
    pub fn uniform(size: usize) -> Self {
        assert!(size > 0, "chunk size must be positive");
        ChunkSizeSchedule { sizes: [size; 4] }
    }

    /// Chunk size for a privacy level.
    pub fn size_for(&self, pl: PrivacyLevel) -> usize {
        self.sizes[pl.as_u8() as usize]
    }

    /// Validates monotonicity (higher PL ⇒ chunk size not larger).
    pub fn is_monotone(&self) -> bool {
        self.sizes.windows(2).all(|w| w[1] <= w[0])
    }
}

/// Full distributor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributorConfig {
    /// PL→chunk-size schedule.
    pub chunk_sizes: ChunkSizeSchedule,
    /// Data shards per RAID stripe (parity shards come from the level).
    pub stripe_width: usize,
    /// Default assurance level; `Raid5` per §IV-A, `Raid6` for "higher
    /// assurance", `None` to disable parity.
    pub raid_level: RaidLevel,
    /// Fraction of misleading bytes injected per chunk (0.0 disables; the
    /// paper's §VII-D option).
    pub mislead_rate: f64,
    /// Placement strategy.
    pub placement: PlacementStrategy,
    /// Seed for placement randomization and misleading-byte positions.
    pub seed: u64,
    /// Degraded-mode I/O engine knobs (retry, hedging, reputation
    /// ordering); see [`crate::resilience`].
    pub resilience: ResilienceConfig,
    /// Worker threads in the distributor's persistent transfer pool
    /// (shared by every [`Session`](crate::Session) on it); parallel gets
    /// and pipelined-put encoding run on these. Must be in `1..=64`.
    pub transfer_workers: usize,
    /// Enables the pipelined put fast path that overlaps stripe encoding
    /// (mislead injection + parity) on the transfer pool with the
    /// caller-side provider stores of the previous stripe. Provider state
    /// is byte-identical either way; this only changes wall-clock time.
    pub pipelined_put: bool,
}

impl Default for DistributorConfig {
    fn default() -> Self {
        DistributorConfig {
            chunk_sizes: ChunkSizeSchedule::paper_default(),
            stripe_width: 4,
            raid_level: RaidLevel::Raid5,
            mislead_rate: 0.0,
            placement: PlacementStrategy::CheapestEligible,
            seed: 0x0D15_7B17,
            resilience: ResilienceConfig::default(),
            transfer_workers: 4,
            pipelined_put: true,
        }
    }
}

impl DistributorConfig {
    /// Check the configuration's invariants; the distributor constructor
    /// calls this and panics on `Err` (an invalid config is a programming
    /// error at that point), but callers building configs dynamically can
    /// inspect the [`CoreError::InvalidConfig`](crate::CoreError) instead.
    pub fn validate(&self) -> Result<(), crate::CoreError> {
        let fail = |detail: &str| {
            Err(crate::CoreError::InvalidConfig {
                detail: detail.to_string(),
            })
        };
        if self.stripe_width < 1 {
            return fail("stripe_width must be >= 1");
        }
        if !(0.0..0.5).contains(&self.mislead_rate) {
            return fail("mislead_rate must be in [0, 0.5)");
        }
        if !self.chunk_sizes.sizes.iter().all(|&s| s > 0) {
            return fail("chunk sizes must be positive");
        }
        if !(1..=64).contains(&self.transfer_workers) {
            return fail("transfer_workers must be in 1..=64");
        }
        self.resilience.validate()
    }

    /// Deprecated panicking form of [`validate`](Self::validate).
    #[deprecated(since = "0.2.0", note = "use `validate()` and handle the Result")]
    pub fn assert_valid(&self) {
        if let Err(e) = self.validate() {
            // fraglint: allow(no-unwrap-in-lib) — this deprecated API is
            // panicking *by contract*; it stays until the pinned removal
            // release. New code goes through `validate()`.
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_schedule() {
        let s = ChunkSizeSchedule::paper_default();
        assert_eq!(s.size_for(PrivacyLevel::Public), 256 << 10);
        assert_eq!(s.size_for(PrivacyLevel::High), 4 << 10);
        assert!(s.is_monotone());
    }

    #[test]
    fn uniform_schedule() {
        let s = ChunkSizeSchedule::uniform(1000);
        for pl in PrivacyLevel::ALL {
            assert_eq!(s.size_for(pl), 1000);
        }
        assert!(s.is_monotone());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_uniform_panics() {
        ChunkSizeSchedule::uniform(0);
    }

    #[test]
    fn default_config_is_valid_and_paper_shaped() {
        let c = DistributorConfig::default();
        c.validate().expect("defaults are valid");
        assert_eq!(c.raid_level, RaidLevel::Raid5);
        assert_eq!(c.placement, PlacementStrategy::CheapestEligible);
        assert_eq!(c.mislead_rate, 0.0);
    }

    #[test]
    fn invalid_configs_return_named_errors() {
        let err = DistributorConfig {
            stripe_width: 0,
            ..Default::default()
        }
        .validate()
        .expect_err("zero stripe");
        assert!(err.to_string().contains("stripe_width"));

        let err = DistributorConfig {
            mislead_rate: 0.9,
            ..Default::default()
        }
        .validate()
        .expect_err("mislead too high");
        assert!(err.to_string().contains("mislead_rate"));

        let err = DistributorConfig {
            chunk_sizes: ChunkSizeSchedule { sizes: [1024, 512, 0, 64] },
            ..Default::default()
        }
        .validate()
        .expect_err("zero chunk size");
        assert!(err.to_string().contains("chunk sizes"));

        for workers in [0usize, 65, 1000] {
            let err = DistributorConfig {
                transfer_workers: workers,
                ..Default::default()
            }
            .validate()
            .expect_err("bad worker count");
            assert!(err.to_string().contains("transfer_workers"), "{workers}");
        }
        DistributorConfig {
            transfer_workers: 1,
            pipelined_put: false,
            ..Default::default()
        }
        .validate()
        .expect("1 worker, serial put is valid");
    }

    #[test]
    #[should_panic(expected = "stripe_width")]
    fn deprecated_assert_valid_still_panics() {
        // fraglint: allow(no-deprecated-string-api) — pin test: keeps the
        // deprecated `assert_valid` panicking until its removal release.
        #[allow(deprecated)]
        DistributorConfig {
            stripe_width: 0,
            ..Default::default()
        }
        .assert_valid();
    }
}
