//! Distributor configuration.

use crate::resilience::ResilienceConfig;
use fragcloud_raid::RaidLevel;
use fragcloud_sim::PrivacyLevel;
use std::time::Duration;

/// Chunk-placement strategy among eligible providers.
///
/// The paper distributes chunks "in a random way" among eligible providers
/// (§VI) but also prefers lower cost levels (§IV-A); the ablation in E12
/// compares these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Prefer the cheapest eligible provider, randomizing ties — the
    /// paper's composite rule and our default.
    CheapestEligible,
    /// Uniform random among all eligible providers.
    RandomEligible,
    /// Everything to the single cheapest eligible provider — the paper's
    /// *baseline under attack* (single-provider cloud).
    SingleProvider,
}

/// PL→chunk-size schedule: "the chunk size is fixed for a particular
/// privilege level. The higher the privilege level, the lower the chunk
/// size" (§VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSizeSchedule {
    /// Chunk size in bytes for each PL 0..=3.
    pub sizes: [usize; 4],
}

impl ChunkSizeSchedule {
    /// The defaults called out in DESIGN.md §5:
    /// PL0 = 256 KiB, PL1 = 64 KiB, PL2 = 16 KiB, PL3 = 4 KiB.
    pub fn paper_default() -> Self {
        ChunkSizeSchedule {
            sizes: [256 << 10, 64 << 10, 16 << 10, 4 << 10],
        }
    }

    /// Uniform chunk size across levels (for sweeps).
    pub fn uniform(size: usize) -> Self {
        assert!(size > 0, "chunk size must be positive");
        ChunkSizeSchedule { sizes: [size; 4] }
    }

    /// Chunk size for a privacy level.
    pub fn size_for(&self, pl: PrivacyLevel) -> usize {
        self.sizes[pl.as_u8() as usize]
    }

    /// Validates monotonicity (higher PL ⇒ chunk size not larger).
    pub fn is_monotone(&self) -> bool {
        self.sizes.windows(2).all(|w| w[1] <= w[0])
    }
}

/// A stripe geometry: `data` data shards plus `parity` parity shards.
///
/// Generalizes the old ⟨`stripe_width`, `raid_level`⟩ pair to arbitrary
/// RS(k, m): `parity = 0` is plain striping, `1` ≡ RAID-5, `2` ≡ RAID-6,
/// and `m ≥ 3` engages the general Reed–Solomon matrix codec. Validation
/// delegates to the coding layer's shared
/// [`check_geometry`](fragcloud_raid::check_geometry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    /// Data shards per stripe (`k`), ≥ 1.
    pub data: usize,
    /// Parity shards per stripe (`m`); the stripe tolerates `m` losses.
    pub parity: usize,
}

impl Geometry {
    /// Builds a geometry; validation happens in
    /// [`validate`](Self::validate) / [`DistributorConfig::validate`].
    pub fn new(data: usize, parity: usize) -> Self {
        Geometry { data, parity }
    }

    /// Total shards per stripe (data + parity).
    pub fn total(self) -> usize {
        self.data + self.parity
    }

    /// The [`RaidLevel`] realizing this geometry's parity count,
    /// canonicalized onto the dedicated codes for m ≤ 2 so default
    /// configurations keep today's RAID-5/6 table and journal encodings.
    pub fn level(self) -> RaidLevel {
        RaidLevel::for_parity_shards(self.parity)
    }

    /// Check the geometry against the coding layer's shared rules.
    pub fn validate(self) -> Result<(), crate::CoreError> {
        fragcloud_raid::check_geometry(self.data, self.parity).map_err(|e| {
            crate::CoreError::InvalidConfig {
                detail: format!("geometry: {e}"),
            }
        })
    }
}

/// Per-privacy-level stripe geometries — geometry as *policy*: higher
/// privacy levels can buy wider fan-out or deeper parity without touching
/// the code path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GeometrySchedule {
    /// Geometry for each PL 0..=3.
    pub per_pl: [Geometry; 4],
}

impl GeometrySchedule {
    /// One geometry for every privacy level.
    pub fn uniform(g: Geometry) -> Self {
        GeometrySchedule { per_pl: [g; 4] }
    }

    /// Geometry for a privacy level.
    pub fn for_pl(&self, pl: PrivacyLevel) -> Geometry {
        self.per_pl[pl.as_u8() as usize]
    }

    /// Validates every per-PL geometry.
    pub fn validate(&self) -> Result<(), crate::CoreError> {
        for g in &self.per_pl {
            g.validate()?;
        }
        Ok(())
    }
}

/// Durability and concurrency knobs, grouped: how the write-ahead journal
/// batches its flushes, how often the checkpoint is compacted, how wide the
/// table sharding and the transfer pool are.
///
/// `#[non_exhaustive]`: build it from [`DurabilityConfig::default`] and the
/// `with_*` builders so later releases can add knobs without breaking
/// callers.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct DurabilityConfig {
    /// How long a group-commit leader lingers before flushing, letting
    /// concurrent operations pile into the same fsync window.
    /// `Duration::ZERO` (the default) flushes immediately and still
    /// piggybacks any commit that arrived while the previous flush ran.
    pub group_commit_window: Duration,
    /// Commits between checkpoint compactions: every N-th journal commit
    /// folds the accumulated delta records into a fresh checkpoint
    /// snapshot. Must be >= 1.
    pub checkpoint_interval: u32,
    /// Independently locked table stripes the chunk/client tables are
    /// sharded into, routed by a hash of ⟨client, filename⟩. Must be in
    /// `1..=64`. Applies to freshly constructed distributors; a
    /// distributor imported from a persisted snapshot keeps the
    /// snapshot's shard layout.
    pub table_shards: usize,
    /// Worker threads in the distributor's persistent transfer pool
    /// (shared by every [`Session`](crate::Session) on it); parallel gets
    /// and pipelined-put encoding run on these. Must be in `1..=64`.
    pub transfer_workers: usize,
    /// Enables the pipelined put fast path: stripe encoding (mislead
    /// injection + parity) runs on the transfer pool *before* the table
    /// shard is locked, overlapping encodes across stripes and across
    /// concurrent operations. Provider state is byte-identical either
    /// way; this only changes wall-clock time.
    pub pipelined_put: bool,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            group_commit_window: Duration::ZERO,
            checkpoint_interval: 16,
            table_shards: 4,
            transfer_workers: 4,
            pipelined_put: true,
        }
    }
}

impl DurabilityConfig {
    /// Sets the group-commit linger window.
    pub fn with_group_commit_window(mut self, window: Duration) -> Self {
        self.group_commit_window = window;
        self
    }

    /// Sets the checkpoint compaction interval (commits per checkpoint).
    pub fn with_checkpoint_interval(mut self, interval: u32) -> Self {
        self.checkpoint_interval = interval;
        self
    }

    /// Sets the table shard count.
    pub fn with_table_shards(mut self, shards: usize) -> Self {
        self.table_shards = shards;
        self
    }

    /// Sets the transfer-pool worker count.
    pub fn with_transfer_workers(mut self, workers: usize) -> Self {
        self.transfer_workers = workers;
        self
    }

    /// Enables or disables the pipelined put fast path.
    pub fn with_pipelined_put(mut self, pipelined: bool) -> Self {
        self.pipelined_put = pipelined;
        self
    }

    /// Check the configuration's invariants.
    pub fn validate(&self) -> Result<(), crate::CoreError> {
        let fail = |detail: &str| {
            Err(crate::CoreError::InvalidConfig {
                detail: detail.to_string(),
            })
        };
        if self.checkpoint_interval < 1 {
            return fail("durability.checkpoint_interval must be >= 1");
        }
        if !(1..=64).contains(&self.table_shards) {
            return fail("durability.table_shards must be in 1..=64");
        }
        if !(1..=64).contains(&self.transfer_workers) {
            return fail("durability.transfer_workers must be in 1..=64");
        }
        Ok(())
    }
}

/// Full distributor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributorConfig {
    /// PL→chunk-size schedule.
    pub chunk_sizes: ChunkSizeSchedule,
    /// Data shards per RAID stripe (parity shards come from the level).
    pub stripe_width: usize,
    /// Default assurance level; `Raid5` per §IV-A, `Raid6` for "higher
    /// assurance", `None` to disable parity.
    pub raid_level: RaidLevel,
    /// Per-PL stripe geometries. `None` (the default) derives every PL's
    /// geometry from ⟨[`stripe_width`](Self::stripe_width),
    /// [`raid_level`](Self::raid_level)⟩, preserving the old behavior;
    /// `Some` makes geometry policy and takes precedence (a per-put
    /// [`PutOptions::geometry`](crate::PutOptions::geometry) still
    /// overrides both).
    pub geometry: Option<GeometrySchedule>,
    /// Fraction of misleading bytes injected per chunk (0.0 disables; the
    /// paper's §VII-D option).
    pub mislead_rate: f64,
    /// Placement strategy.
    pub placement: PlacementStrategy,
    /// Seed for placement randomization and misleading-byte positions.
    pub seed: u64,
    /// Degraded-mode I/O engine knobs (retry, hedging, reputation
    /// ordering); see [`crate::resilience`].
    pub resilience: ResilienceConfig,
    /// Durability and concurrency knobs: journal group commit, checkpoint
    /// interval, table sharding, transfer pool; see [`DurabilityConfig`].
    pub durability: DurabilityConfig,
    /// Deprecated alias for
    /// [`durability.transfer_workers`](DurabilityConfig::transfer_workers);
    /// when set to a non-default value it still wins for one release.
    #[deprecated(since = "0.6.0", note = "use `durability.transfer_workers`")]
    pub transfer_workers: usize,
    /// Deprecated alias for
    /// [`durability.pipelined_put`](DurabilityConfig::pipelined_put); when
    /// set to a non-default value it still wins for one release.
    #[deprecated(since = "0.6.0", note = "use `durability.pipelined_put`")]
    pub pipelined_put: bool,
}

impl Default for DistributorConfig {
    fn default() -> Self {
        // fraglint: allow(no-deprecated-string-api) — the one-release
        // compat shim must still initialize its own deprecated fields.
        #[allow(deprecated)]
        DistributorConfig {
            chunk_sizes: ChunkSizeSchedule::paper_default(),
            stripe_width: 4,
            raid_level: RaidLevel::Raid5,
            geometry: None,
            mislead_rate: 0.0,
            placement: PlacementStrategy::CheapestEligible,
            seed: 0x0D15_7B17,
            resilience: ResilienceConfig::default(),
            durability: DurabilityConfig::default(),
            transfer_workers: 4,
            pipelined_put: true,
        }
    }
}

impl DistributorConfig {
    /// The stripe geometry uploads at privacy level `pl` get by default:
    /// the [`geometry`](Self::geometry) schedule when set, else the
    /// ⟨[`stripe_width`](Self::stripe_width),
    /// [`raid_level`](Self::raid_level)⟩ pair.
    pub fn geometry_for(&self, pl: PrivacyLevel) -> Geometry {
        match &self.geometry {
            Some(s) => s.for_pl(pl),
            None => Geometry::new(self.stripe_width, self.raid_level.parity_shards()),
        }
    }

    /// Transfer-pool width after resolving the one-release compat shim: a
    /// deprecated `transfer_workers` set away from its old default (4)
    /// wins; otherwise [`DurabilityConfig::transfer_workers`] applies.
    pub fn effective_transfer_workers(&self) -> usize {
        // fraglint: allow(no-deprecated-string-api) — reads the deprecated
        // field to honor old callers during the one-release shim window.
        #[allow(deprecated)]
        if self.transfer_workers != 4 {
            self.transfer_workers
        } else {
            self.durability.transfer_workers
        }
    }

    /// Pipelined-put switch after resolving the one-release compat shim: a
    /// deprecated `pipelined_put` set away from its old default (true)
    /// wins; otherwise [`DurabilityConfig::pipelined_put`] applies.
    pub fn effective_pipelined_put(&self) -> bool {
        // fraglint: allow(no-deprecated-string-api) — reads the deprecated
        // field to honor old callers during the one-release shim window.
        #[allow(deprecated)]
        if !self.pipelined_put {
            false
        } else {
            self.durability.pipelined_put
        }
    }

    /// Check the configuration's invariants; the distributor constructor
    /// calls this and panics on `Err` (an invalid config is a programming
    /// error at that point), but callers building configs dynamically can
    /// inspect the [`CoreError::InvalidConfig`](crate::CoreError) instead.
    pub fn validate(&self) -> Result<(), crate::CoreError> {
        let fail = |detail: &str| {
            Err(crate::CoreError::InvalidConfig {
                detail: detail.to_string(),
            })
        };
        if self.stripe_width < 1 {
            return fail("stripe_width must be >= 1");
        }
        if !(0.0..0.5).contains(&self.mislead_rate) {
            return fail("mislead_rate must be in [0, 0.5)");
        }
        if !self.chunk_sizes.sizes.iter().all(|&s| s > 0) {
            return fail("chunk sizes must be positive");
        }
        if !(1..=64).contains(&self.effective_transfer_workers()) {
            return fail("transfer_workers must be in 1..=64");
        }
        if let Some(schedule) = &self.geometry {
            schedule.validate()?;
        }
        self.durability.validate()?;
        self.resilience.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_schedule() {
        let s = ChunkSizeSchedule::paper_default();
        assert_eq!(s.size_for(PrivacyLevel::Public), 256 << 10);
        assert_eq!(s.size_for(PrivacyLevel::High), 4 << 10);
        assert!(s.is_monotone());
    }

    #[test]
    fn uniform_schedule() {
        let s = ChunkSizeSchedule::uniform(1000);
        for pl in PrivacyLevel::ALL {
            assert_eq!(s.size_for(pl), 1000);
        }
        assert!(s.is_monotone());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_uniform_panics() {
        ChunkSizeSchedule::uniform(0);
    }

    #[test]
    fn default_config_is_valid_and_paper_shaped() {
        let c = DistributorConfig::default();
        c.validate().expect("defaults are valid");
        assert_eq!(c.raid_level, RaidLevel::Raid5);
        assert_eq!(c.placement, PlacementStrategy::CheapestEligible);
        assert_eq!(c.mislead_rate, 0.0);
    }

    #[test]
    fn invalid_configs_return_named_errors() {
        let err = DistributorConfig {
            stripe_width: 0,
            ..Default::default()
        }
        .validate()
        .expect_err("zero stripe");
        assert!(err.to_string().contains("stripe_width"));

        let err = DistributorConfig {
            mislead_rate: 0.9,
            ..Default::default()
        }
        .validate()
        .expect_err("mislead too high");
        assert!(err.to_string().contains("mislead_rate"));

        let err = DistributorConfig {
            chunk_sizes: ChunkSizeSchedule {
                sizes: [1024, 512, 0, 64],
            },
            ..Default::default()
        }
        .validate()
        .expect_err("zero chunk size");
        assert!(err.to_string().contains("chunk sizes"));

        for workers in [0usize, 65, 1000] {
            let err = DistributorConfig {
                durability: DurabilityConfig::default().with_transfer_workers(workers),
                ..Default::default()
            }
            .validate()
            .expect_err("bad worker count");
            assert!(err.to_string().contains("transfer_workers"), "{workers}");
        }
        for shards in [0usize, 65] {
            let err = DistributorConfig {
                durability: DurabilityConfig::default().with_table_shards(shards),
                ..Default::default()
            }
            .validate()
            .expect_err("bad shard count");
            assert!(err.to_string().contains("table_shards"), "{shards}");
        }
        let err = DistributorConfig {
            durability: DurabilityConfig::default().with_checkpoint_interval(0),
            ..Default::default()
        }
        .validate()
        .expect_err("zero interval");
        assert!(err.to_string().contains("checkpoint_interval"));

        DistributorConfig {
            durability: DurabilityConfig::default()
                .with_transfer_workers(1)
                .with_pipelined_put(false)
                .with_table_shards(1),
            ..Default::default()
        }
        .validate()
        .expect("1 worker, 1 shard, serial put is valid");
    }

    #[test]
    fn geometry_levels_and_defaults() {
        assert_eq!(Geometry::new(4, 0).level(), RaidLevel::None);
        assert_eq!(Geometry::new(4, 1).level(), RaidLevel::Raid5);
        assert_eq!(Geometry::new(4, 2).level(), RaidLevel::Raid6);
        assert_eq!(
            Geometry::new(8, 3).level(),
            RaidLevel::Rs { parity: 3 }
        );
        assert_eq!(Geometry::new(8, 3).total(), 11);

        // Default config: geometry derives from stripe_width + raid_level.
        let c = DistributorConfig::default();
        for pl in PrivacyLevel::ALL {
            assert_eq!(c.geometry_for(pl), Geometry::new(4, 1));
        }
        // Schedule takes precedence and can vary per PL.
        let mut sched = GeometrySchedule::uniform(Geometry::new(8, 3));
        sched.per_pl[3] = Geometry::new(12, 4);
        let c = DistributorConfig {
            geometry: Some(sched),
            ..Default::default()
        };
        c.validate().expect("valid schedule");
        assert_eq!(c.geometry_for(PrivacyLevel::Public), Geometry::new(8, 3));
        assert_eq!(c.geometry_for(PrivacyLevel::High), Geometry::new(12, 4));
    }

    #[test]
    fn invalid_geometry_rejected_via_shared_check() {
        assert!(Geometry::new(0, 2).validate().is_err());
        assert!(Geometry::new(1, 0).validate().is_ok());
        assert!(Geometry::new(254, 3).validate().is_err()); // 257 points
        let c = DistributorConfig {
            geometry: Some(GeometrySchedule::uniform(Geometry::new(0, 1))),
            ..Default::default()
        };
        let err = c.validate().expect_err("zero data shards");
        assert!(err.to_string().contains("geometry"));
    }

    #[test]
    fn deprecated_knobs_still_win_when_explicitly_set() {
        // One-release shim: an old caller writing the loose fields gets the
        // old behavior; new callers drive everything through `durability`.
        // fraglint: allow(no-deprecated-string-api) — shim regression test.
        #[allow(deprecated)]
        let old_style = DistributorConfig {
            transfer_workers: 2,
            pipelined_put: false,
            ..Default::default()
        };
        assert_eq!(old_style.effective_transfer_workers(), 2);
        assert!(!old_style.effective_pipelined_put());

        let new_style = DistributorConfig {
            durability: DurabilityConfig::default()
                .with_transfer_workers(8)
                .with_pipelined_put(false),
            ..Default::default()
        };
        assert_eq!(new_style.effective_transfer_workers(), 8);
        assert!(!new_style.effective_pipelined_put());

        let defaults = DistributorConfig::default();
        assert_eq!(defaults.effective_transfer_workers(), 4);
        assert!(defaults.effective_pipelined_put());
        assert_eq!(defaults.durability.checkpoint_interval, 16);
        assert_eq!(defaults.durability.table_shards, 4);
        assert_eq!(defaults.durability.group_commit_window, Duration::ZERO);
    }
}
