#![warn(missing_docs)]

//! The Cloud Data Distributor — the paper's primary contribution.
//!
//! "Our approach consists of categorization, fragmentation and distribution
//! of data" (§I). The distributor receives files from clients, categorizes
//! them by privacy level, splits them into PL-sized chunks, assigns opaque
//! virtual ids, and places the chunks on eligible cloud providers with
//! RAID-style parity, optional misleading bytes, and snapshot support.
//!
//! Module map (↔ paper sections):
//!
//! - [`config`] — tunables: PL→chunk-size schedule, stripe width, default
//!   RAID level, misleading-byte rate, placement strategy;
//! - [`chunker`] — fragmentation (§VI `split`), PL-dependent chunk sizes
//!   (§VII-B/C);
//! - [`vid`] — virtual-id allocation (§IV-A identity concealment);
//! - [`mislead`] — misleading-data injection and stripping (§VII-D);
//! - [`tables`] — the Cloud Provider / Client / Chunk tables
//!   (Tables I–III);
//! - [`access`] — ⟨password, PL⟩ access control (§V, Fig. 3);
//! - [`policy`] — provider-eligibility and placement (§IV-A: "a chunk is
//!   given to a provider having equal or higher privacy level", cheapest
//!   cost level preferred);
//! - [`distributor`] — the [`distributor::CloudDataDistributor`] facade:
//!   `put_file`, `get_file`, `get_chunk`, `remove_file`, `remove_chunk`,
//!   `update_chunk` with snapshots (§VI);
//! - [`pool`] — the persistent bounded transfer pool shared by sessions:
//!   parallel gets and pipelined-put encoding run on its workers;
//! - [`multi`] — multiple distributors, primary/secondary (§IV-C, Fig. 2);
//! - [`client_side`] — the CHORD-based client-side distributor (§IV-C);
//! - [`persist`] — versioned text snapshots of the table state, so a
//!   restarted (or newly promoted) distributor can rehydrate against the
//!   same provider fleet;
//! - [`journal`] — the append-only write-ahead op journal: intent records
//!   around every state-mutating operation (virtual ids logged *before*
//!   their provider uploads), commit/abort **delta records** against the
//!   last checkpoint, cross-operation group commit, and periodic
//!   checkpoint compaction;
//! - [`recovery`] — replays a journal (checkpoint + close deltas) on
//!   restart, rolling dangling ops back (or forward, for removals) and
//!   garbage-collecting orphan objects from providers;
//! - [`integrity`] — checksum framing around every stored shard: stamped
//!   at `put`, verified on every read, turning silent provider corruption
//!   into typed [`CoreError::ShardCorrupt`] erasures the parity machinery
//!   heals (and read-repair re-uploads);
//! - [`health`] — per-provider EWMA health tracking driving a
//!   closed→open→half-open circuit breaker consulted by placement and
//!   read-candidate ordering;
//! - [`rebalance`] — §VII-E locality migration of hot chunks;
//! - [`envelope`] — client-side full/partial encryption composed with
//!   fragmentation (§VII-E: "encryption is not an alternative to
//!   fragmentation, rather it is a complement").

pub mod access;
pub mod chunker;
pub mod client_side;
pub mod config;
pub mod distributor;
pub mod envelope;
pub mod health;
pub mod integrity;
pub mod journal;
pub mod mislead;
pub mod multi;
pub mod persist;
pub mod policy;
pub mod pool;
pub mod rebalance;
pub mod recovery;
pub mod resilience;
pub mod session;
pub mod tables;
pub mod vid;

pub use config::{
    ChunkSizeSchedule, DistributorConfig, DurabilityConfig, Geometry, GeometrySchedule,
    PlacementStrategy,
};
pub use distributor::{CloudDataDistributor, GetReceipt, PutOptions, PutReceipt};
pub use fragcloud_sim::{CostLevel, PrivacyLevel, VirtualId};
pub use health::{BreakerConfig, BreakerState, FailureKind, HealthTracker};
pub use integrity::{frame, unframe, FRAME_OVERHEAD, FRAME_VERSION};
pub use fragcloud_telemetry::TelemetryHandle;
pub use journal::{
    FaultySink, Journal, JournalSink, NoopSink, OpId, OpKind, OpStatus, OpView,
    SimulatedFsyncSink, SinkFault,
};
pub use pool::TransferPool;
pub use recovery::{recover, recover_with, RecoveryReport};
pub use resilience::{
    AttemptOutcome, RepairReport, ResilienceConfig, RetryExecution, RetryPolicy, ScrubReport,
};
pub use session::{Credentials, Session};

/// Errors surfaced by the distributor.
///
/// Marked `#[non_exhaustive]`: new failure modes (like the degraded-mode
/// engine's [`Timeout`](CoreError::Timeout) and
/// [`RetriesExhausted`](CoreError::RetriesExhausted)) may be added without
/// a breaking release, so downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// Unknown client name.
    UnknownClient(String),
    /// Unknown file for a client.
    UnknownFile {
        /// Client name.
        client: String,
        /// Requested filename.
        filename: String,
    },
    /// Chunk serial out of range.
    UnknownChunk {
        /// Requested filename.
        filename: String,
        /// Requested serial number.
        serial: u32,
    },
    /// Password not recognized, or its PL is below the chunk's PL —
    /// "the password is not privileged enough to access the chunk. Hence
    /// its request is denied" (§V).
    AccessDenied,
    /// A file with this name already exists for the client.
    FileExists(String),
    /// No provider is eligible to hold a chunk of this privacy level.
    NoEligibleProvider {
        /// The chunk privacy level that could not be placed.
        pl: PrivacyLevel,
    },
    /// Not enough *distinct* eligible providers for the requested stripe.
    InsufficientProviders {
        /// Providers needed (data + parity).
        needed: usize,
        /// Distinct eligible providers available.
        available: usize,
    },
    /// A provider operation failed.
    Store(fragcloud_sim::StoreError),
    /// Stripe reconstruction failed (too many providers down).
    Raid(fragcloud_raid::RaidError),
    /// Client registration conflict.
    ClientExists(String),
    /// Upload sent to a distributor that is not the client's primary
    /// (§IV-C: "a specific distributor will act as the primary distributor
    /// that will upload data").
    NotPrimary {
        /// The client whose primary is elsewhere.
        client: String,
        /// Name of the actual primary distributor.
        primary: String,
    },
    /// The addressed distributor node is down.
    DistributorDown(String),
    /// An operation's cumulative simulated retry wait exceeded the
    /// [`RetryPolicy::op_deadline`](resilience::RetryPolicy::op_deadline).
    Timeout {
        /// Provider the operation was addressed to.
        provider: String,
    },
    /// Every attempt in the per-operation retry budget failed (and no
    /// replica or parity path could absorb the loss).
    RetriesExhausted {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A configuration value failed validation (see
    /// [`DistributorConfig::validate`](config::DistributorConfig::validate)).
    InvalidConfig {
        /// The violated constraint, naming the offending field.
        detail: String,
    },
    /// A persisted artifact (a [`persist`] snapshot or a [`journal`]
    /// export) failed to parse.
    CorruptState {
        /// 1-based line number inside the artifact (0 when unknown).
        line: usize,
        /// What was wrong with the record.
        why: String,
    },
    /// A [`fragcloud_sim::CrashPlan`] fired: the distributor "died" at the
    /// given crash point. Sim-only — never produced outside a
    /// crash-injection harness.
    SimulatedCrash {
        /// Ordinal of the crash point that fired (1-based encounter count).
        point: u64,
    },
    /// A streaming put's source yielded a different number of bytes than
    /// the declared length. The put is rolled back by the journal like any
    /// other failed operation.
    StreamLengthMismatch {
        /// Length the caller declared.
        declared: u64,
        /// Bytes the source actually produced (may be a lower bound when
        /// the mismatch was detected before draining the source).
        read: u64,
    },
    /// Reading from a streaming put's source failed.
    StreamIo {
        /// The underlying I/O error, stringified (keeps `CoreError`
        /// `Clone + PartialEq`).
        why: String,
    },
    /// A stored shard failed integrity verification (see
    /// [`integrity`]): the provider returned bytes whose framing
    /// checksum does not match what was stamped at `put` time. Treated
    /// as an erasure — the read path routes it into parity
    /// reconstruction instead of handing bad bytes to decode.
    ShardCorrupt {
        /// Virtual id of the corrupt object.
        vid: VirtualId,
        /// What failed: "checksum mismatch", "unsupported frame
        /// version N", …
        why: String,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::UnknownClient(c) => write!(f, "unknown client {c:?}"),
            CoreError::UnknownFile { client, filename } => {
                write!(f, "client {client:?} has no file {filename:?}")
            }
            CoreError::UnknownChunk { filename, serial } => {
                write!(f, "file {filename:?} has no chunk #{serial}")
            }
            CoreError::AccessDenied => write!(f, "access denied"),
            CoreError::FileExists(n) => write!(f, "file {n:?} already exists"),
            CoreError::NoEligibleProvider { pl } => {
                write!(f, "no provider eligible for {pl} data")
            }
            CoreError::InsufficientProviders { needed, available } => write!(
                f,
                "stripe needs {needed} distinct providers, only {available} eligible"
            ),
            CoreError::Store(e) => write!(f, "provider error: {e}"),
            CoreError::Raid(e) => write!(f, "reconstruction error: {e}"),
            CoreError::ClientExists(c) => write!(f, "client {c:?} already registered"),
            CoreError::NotPrimary { client, primary } => {
                write!(
                    f,
                    "not the primary distributor for {client:?} (primary: {primary})"
                )
            }
            CoreError::DistributorDown(n) => write!(f, "distributor {n} is down"),
            CoreError::Timeout { provider } => {
                write!(f, "operation against {provider} exceeded its deadline")
            }
            CoreError::RetriesExhausted { attempts } => {
                write!(f, "operation failed after {attempts} attempts")
            }
            CoreError::InvalidConfig { detail } => {
                write!(f, "invalid configuration: {detail}")
            }
            CoreError::CorruptState { line, why } => {
                write!(f, "corrupt state at line {line}: {why}")
            }
            CoreError::SimulatedCrash { point } => {
                write!(f, "simulated crash at point {point}")
            }
            CoreError::StreamLengthMismatch { declared, read } => {
                write!(f, "stream declared {declared} bytes but produced {read}")
            }
            CoreError::StreamIo { why } => {
                write!(f, "stream read failed: {why}")
            }
            CoreError::ShardCorrupt { vid, why } => {
                write!(f, "stored shard {vid} failed integrity verification: {why}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<fragcloud_sim::StoreError> for CoreError {
    fn from(e: fragcloud_sim::StoreError) -> Self {
        CoreError::Store(e)
    }
}

impl From<fragcloud_raid::RaidError> for CoreError {
    fn from(e: fragcloud_raid::RaidError) -> Self {
        CoreError::Raid(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
