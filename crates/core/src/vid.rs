//! Virtual-id allocation.
//!
//! "Inside the Cloud Data Distributor each chunk is given a unique virtual
//! id … A provider storing a particular chunk with a virtual id has no idea
//! about the real owner (client) of the chunk" (§IV-A). Ids must be unique
//! and must not leak client/file/serial structure, so we emit a counter
//! passed through a 64-bit mixing permutation.

use fragcloud_sim::VirtualId;
use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe allocator of opaque virtual ids.
#[derive(Debug)]
pub struct VidAllocator {
    next: AtomicU64,
    salt: u64,
}

impl VidAllocator {
    /// Creates an allocator; `salt` varies the id sequence between
    /// distributor instances.
    pub fn new(salt: u64) -> Self {
        VidAllocator {
            next: AtomicU64::new(1),
            salt,
        }
    }

    /// Resumes an allocator after a state import: `already_allocated` ids
    /// were handed out by the previous incarnation, so the sequence
    /// continues past them (same salt ⇒ same mapping ⇒ no collisions).
    pub fn resume(salt: u64, already_allocated: u64) -> Self {
        VidAllocator {
            next: AtomicU64::new(already_allocated + 1),
            salt,
        }
    }

    /// Allocates the next id.
    pub fn allocate(&self) -> VirtualId {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        VirtualId(mix(seq ^ self.salt))
    }

    /// Number of ids handed out so far.
    pub fn allocated(&self) -> u64 {
        self.next.load(Ordering::Relaxed) - 1
    }

    /// Skips `n` ids without handing them out. Recovery fast-forwards
    /// past ids a crashed incarnation allocated (and journaled) but never
    /// persisted a counter for, so they can never be re-issued.
    pub fn skip(&self, n: u64) {
        self.next.fetch_add(n, Ordering::Relaxed);
    }
}

/// SplitMix64 finalizer — a bijection on u64, so distinct inputs give
/// distinct ids.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let a = VidAllocator::new(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(a.allocate()));
        }
        assert_eq!(a.allocated(), 10_000);
    }

    #[test]
    fn ids_do_not_expose_the_counter() {
        let a = VidAllocator::new(7);
        let v1 = a.allocate().0;
        let v2 = a.allocate().0;
        // Sequential allocations must not be sequential ids.
        assert_ne!(v2.wrapping_sub(v1), 1);
    }

    #[test]
    fn different_salts_differ() {
        let a = VidAllocator::new(1).allocate();
        let b = VidAllocator::new(2).allocate();
        assert_ne!(a, b);
    }

    #[test]
    fn concurrent_allocation_unique() {
        use std::sync::Arc;
        let alloc = Arc::new(VidAllocator::new(3));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let alloc = Arc::clone(&alloc);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| alloc.allocate()).collect::<Vec<_>>()
            }));
        }
        let mut all = std::collections::HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(all.insert(id), "duplicate id across threads");
            }
        }
        assert_eq!(all.len(), 8000);
    }
}
