//! Fragmentation: files → PL-sized chunks and back.
//!
//! §VI `chunks[] split(file)`: "The chunk size is fixed for a particular
//! privilege level. The higher the privilege level, the lower the chunk
//! size." Smaller chunks mean less minable data per exposure point
//! (§VII-C).

use crate::config::ChunkSizeSchedule;
use fragcloud_sim::PrivacyLevel;

/// Splits a file into chunks sized by the schedule for its privacy level.
///
/// The final chunk may be shorter; an empty file yields one empty chunk so
/// that every file has at least one addressable serial.
pub fn split(data: &[u8], pl: PrivacyLevel, schedule: &ChunkSizeSchedule) -> Vec<Vec<u8>> {
    let size = schedule.size_for(pl);
    if data.is_empty() {
        return vec![Vec::new()];
    }
    let mut out = Vec::with_capacity(data.len().div_ceil(size));
    for c in data.chunks(size) {
        // Exact-capacity allocation per chunk — the final (short) chunk
        // gets `c.len()`, never a rounded-up full block, so downstream
        // stages can hold many chunks without slack.
        let mut chunk = Vec::with_capacity(c.len());
        chunk.extend_from_slice(c);
        out.push(chunk);
    }
    out
}

/// Reassembles chunks (in serial order) into the original file.
pub fn join(chunks: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = chunks.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for c in chunks {
        out.extend_from_slice(c);
    }
    out
}

/// Number of chunks `split` will produce for a file of `len` bytes.
pub fn chunk_count(len: usize, pl: PrivacyLevel, schedule: &ChunkSizeSchedule) -> usize {
    if len == 0 {
        1
    } else {
        len.div_ceil(schedule.size_for(pl))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> ChunkSizeSchedule {
        ChunkSizeSchedule {
            sizes: [16, 8, 4, 2],
        }
    }

    #[test]
    fn split_exact_multiple() {
        let data: Vec<u8> = (0..16).collect();
        let chunks = split(&data, PrivacyLevel::Low, &sched());
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].len(), 8);
        assert_eq!(chunks[1].len(), 8);
    }

    #[test]
    fn split_with_remainder() {
        let data: Vec<u8> = (0..10).collect();
        let chunks = split(&data, PrivacyLevel::Moderate, &sched());
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[2], vec![8, 9]);
    }

    #[test]
    fn higher_pl_means_more_smaller_chunks() {
        let data = vec![7u8; 64];
        let s = sched();
        let mut last = 0;
        for pl in PrivacyLevel::ALL {
            let n = split(&data, pl, &s).len();
            assert!(n >= last, "chunk count must not decrease with PL");
            last = n;
        }
        assert_eq!(split(&data, PrivacyLevel::Public, &s).len(), 4);
        assert_eq!(split(&data, PrivacyLevel::High, &s).len(), 32);
    }

    #[test]
    fn empty_file_single_empty_chunk() {
        let chunks = split(&[], PrivacyLevel::Public, &sched());
        assert_eq!(chunks.len(), 1);
        assert!(chunks[0].is_empty());
        assert_eq!(chunk_count(0, PrivacyLevel::Public, &sched()), 1);
    }

    #[test]
    fn join_inverts_split() {
        let s = sched();
        for n in [0usize, 1, 2, 15, 16, 17, 100] {
            let data: Vec<u8> = (0..n).map(|i| (i * 7) as u8).collect();
            for pl in PrivacyLevel::ALL {
                assert_eq!(join(&split(&data, pl, &s)), data, "n={n} pl={pl}");
            }
        }
    }

    #[test]
    fn split_and_join_allocate_exactly() {
        let s = sched();
        // Empty file: one chunk, no heap allocation at all.
        let chunks = split(&[], PrivacyLevel::Public, &s);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].capacity(), 0);
        assert_eq!(join(&chunks).capacity(), 0);
        // Exact multiple and short-tail: every chunk's capacity equals its
        // length (no rounded-up blocks), and `join` never reallocates past
        // the total.
        let data: Vec<u8> = (0..32).map(|i| i as u8).collect();
        for body in [&data[..32], &data[..30]] {
            let chunks = split(body, PrivacyLevel::Low, &s);
            assert_eq!(chunks.capacity(), chunks.len(), "outer vec sized exactly");
            for c in &chunks {
                assert_eq!(c.capacity(), c.len(), "chunk over-allocated");
            }
            let joined = join(&chunks);
            assert_eq!(joined.capacity(), body.len());
            assert_eq!(joined, body);
        }
    }

    #[test]
    fn chunk_count_matches_split() {
        let s = sched();
        for n in [0usize, 1, 7, 8, 9, 63, 64, 65] {
            let data = vec![0u8; n];
            for pl in PrivacyLevel::ALL {
                assert_eq!(
                    chunk_count(n, pl, &s),
                    split(&data, pl, &s).len(),
                    "n={n} pl={pl}"
                );
            }
        }
    }
}
