//! Fragmentation: files → PL-sized chunks and back.
//!
//! §VI `chunks[] split(file)`: "The chunk size is fixed for a particular
//! privilege level. The higher the privilege level, the lower the chunk
//! size." Smaller chunks mean less minable data per exposure point
//! (§VII-C).

use crate::config::ChunkSizeSchedule;
use bytes::Bytes;
use fragcloud_sim::PrivacyLevel;
use std::io::Read;

/// Splits a file into chunks sized by the schedule for its privacy level.
///
/// The final chunk may be shorter; an empty file yields one empty chunk so
/// that every file has at least one addressable serial.
pub fn split(data: &[u8], pl: PrivacyLevel, schedule: &ChunkSizeSchedule) -> Vec<Vec<u8>> {
    let size = schedule.size_for(pl);
    if data.is_empty() {
        return vec![Vec::new()];
    }
    let mut out = Vec::with_capacity(data.len().div_ceil(size));
    for c in data.chunks(size) {
        // Exact-capacity allocation per chunk — the final (short) chunk
        // gets `c.len()`, never a rounded-up full block, so downstream
        // stages can hold many chunks without slack.
        let mut chunk = Vec::with_capacity(c.len());
        chunk.extend_from_slice(c);
        out.push(chunk);
    }
    out
}

/// Borrowed variant of [`split`]: the same chunk boundaries, but as slices
/// into `data` with **no per-chunk copies or allocations** beyond the outer
/// vector. This is what the serial put path routes through — the mislead
/// injector reads straight from the caller's buffer.
///
/// An empty file yields one empty slice, mirroring [`split`].
pub fn split_borrowed<'a>(
    data: &'a [u8],
    pl: PrivacyLevel,
    schedule: &ChunkSizeSchedule,
) -> Vec<&'a [u8]> {
    if data.is_empty() {
        return vec![data];
    }
    // `chunks` is an exact-size iterator, so `collect` sizes the outer
    // vector exactly — the only allocation this function performs.
    data.chunks(schedule.size_for(pl)).collect()
}

/// Shared-buffer variant of [`split`] for the pipelined put: each chunk is
/// a cheap ref-counted [`Bytes`] slice of the one shared file buffer, so
/// stripe groups can move onto transfer-pool workers (`'static`) without
/// copying any chunk bytes.
///
/// An empty file yields one empty chunk, mirroring [`split`].
pub fn split_shared(data: &Bytes, pl: PrivacyLevel, schedule: &ChunkSizeSchedule) -> Vec<Bytes> {
    let size = schedule.size_for(pl);
    if data.is_empty() {
        return vec![Bytes::new()];
    }
    let mut out = Vec::with_capacity(data.len().div_ceil(size));
    let mut off = 0;
    while off < data.len() {
        let end = (off + size).min(data.len());
        out.push(data.slice(off..end));
        off = end;
    }
    out
}

/// Incremental striper over a [`Read`]-like source: yields one stripe of up
/// to `stripe_k` chunks (each `chunk_size` bytes, the final chunk possibly
/// short) per call, so the put path can encode and upload multi-GB files
/// while holding only a bounded number of stripes in memory.
///
/// Chunk boundaries are **identical** to [`split`] over the concatenated
/// source bytes — including the empty-source case, which yields exactly one
/// stripe containing one empty chunk so every file keeps at least one
/// addressable serial.
pub struct StripeFeeder<R> {
    reader: R,
    chunk_size: usize,
    stripe_k: usize,
    bytes_read: u64,
    yielded_any: bool,
    eof: bool,
}

impl<R: Read> StripeFeeder<R> {
    /// Wraps `reader`; `chunk_size` and `stripe_k` are clamped to ≥ 1.
    pub fn new(reader: R, chunk_size: usize, stripe_k: usize) -> Self {
        StripeFeeder {
            reader,
            chunk_size: chunk_size.max(1),
            stripe_k: stripe_k.max(1),
            bytes_read: 0,
            yielded_any: false,
            eof: false,
        }
    }

    /// Total source bytes consumed so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Reads one chunk, filling up to `chunk_size` bytes (short reads are
    /// retried until the chunk is full or the source ends).
    fn next_chunk(&mut self) -> std::io::Result<Option<Vec<u8>>> {
        let mut chunk = vec![0u8; self.chunk_size];
        let mut filled = 0;
        while filled < chunk.len() {
            let n = self.reader.read(&mut chunk[filled..])?;
            if n == 0 {
                self.eof = true;
                break;
            }
            filled += n;
        }
        self.bytes_read += filled as u64;
        if filled == 0 {
            return Ok(None);
        }
        chunk.truncate(filled);
        // Short tail: release the rounded-up slack so held stripes cost
        // exactly their byte length (same invariant as `split`).
        chunk.shrink_to_fit();
        Ok(Some(chunk))
    }

    /// Yields the next stripe, or `None` once the source is exhausted.
    pub fn next_stripe(&mut self) -> std::io::Result<Option<Vec<Vec<u8>>>> {
        if self.eof {
            return Ok(None);
        }
        let mut stripe = Vec::with_capacity(self.stripe_k);
        while stripe.len() < self.stripe_k {
            match self.next_chunk()? {
                Some(c) => stripe.push(c),
                None => break,
            }
        }
        if stripe.is_empty() {
            // Empty source: one empty chunk, exactly once.
            if !self.yielded_any {
                self.yielded_any = true;
                return Ok(Some(vec![Vec::new()]));
            }
            return Ok(None);
        }
        self.yielded_any = true;
        Ok(Some(stripe))
    }
}

/// Reassembles chunks (in serial order) into the original file.
pub fn join(chunks: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = chunks.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for c in chunks {
        out.extend_from_slice(c);
    }
    out
}

/// Number of chunks `split` will produce for a file of `len` bytes.
pub fn chunk_count(len: usize, pl: PrivacyLevel, schedule: &ChunkSizeSchedule) -> usize {
    if len == 0 {
        1
    } else {
        len.div_ceil(schedule.size_for(pl))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> ChunkSizeSchedule {
        ChunkSizeSchedule {
            sizes: [16, 8, 4, 2],
        }
    }

    #[test]
    fn split_exact_multiple() {
        let data: Vec<u8> = (0..16).collect();
        let chunks = split(&data, PrivacyLevel::Low, &sched());
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].len(), 8);
        assert_eq!(chunks[1].len(), 8);
    }

    #[test]
    fn split_with_remainder() {
        let data: Vec<u8> = (0..10).collect();
        let chunks = split(&data, PrivacyLevel::Moderate, &sched());
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[2], vec![8, 9]);
    }

    #[test]
    fn higher_pl_means_more_smaller_chunks() {
        let data = vec![7u8; 64];
        let s = sched();
        let mut last = 0;
        for pl in PrivacyLevel::ALL {
            let n = split(&data, pl, &s).len();
            assert!(n >= last, "chunk count must not decrease with PL");
            last = n;
        }
        assert_eq!(split(&data, PrivacyLevel::Public, &s).len(), 4);
        assert_eq!(split(&data, PrivacyLevel::High, &s).len(), 32);
    }

    #[test]
    fn empty_file_single_empty_chunk() {
        let chunks = split(&[], PrivacyLevel::Public, &sched());
        assert_eq!(chunks.len(), 1);
        assert!(chunks[0].is_empty());
        assert_eq!(chunk_count(0, PrivacyLevel::Public, &sched()), 1);
    }

    #[test]
    fn join_inverts_split() {
        let s = sched();
        for n in [0usize, 1, 2, 15, 16, 17, 100] {
            let data: Vec<u8> = (0..n).map(|i| (i * 7) as u8).collect();
            for pl in PrivacyLevel::ALL {
                assert_eq!(join(&split(&data, pl, &s)), data, "n={n} pl={pl}");
            }
        }
    }

    #[test]
    fn split_and_join_allocate_exactly() {
        let s = sched();
        // Empty file: one chunk, no heap allocation at all.
        let chunks = split(&[], PrivacyLevel::Public, &s);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].capacity(), 0);
        assert_eq!(join(&chunks).capacity(), 0);
        // Exact multiple and short-tail: every chunk's capacity equals its
        // length (no rounded-up blocks), and `join` never reallocates past
        // the total.
        let data: Vec<u8> = (0..32).map(|i| i as u8).collect();
        for body in [&data[..32], &data[..30]] {
            let chunks = split(body, PrivacyLevel::Low, &s);
            assert_eq!(chunks.capacity(), chunks.len(), "outer vec sized exactly");
            for c in &chunks {
                assert_eq!(c.capacity(), c.len(), "chunk over-allocated");
            }
            let joined = join(&chunks);
            assert_eq!(joined.capacity(), body.len());
            assert_eq!(joined, body);
        }
    }

    #[test]
    fn borrowed_and_shared_variants_are_zero_copy() {
        let s = sched();
        let data: Vec<u8> = (0..37).map(|i| i as u8).collect();
        let owned = split(&data, PrivacyLevel::Low, &s);

        // Borrowed: same boundaries, every slice points INTO the caller's
        // buffer (pointer identity proves zero-copy), outer vec exact.
        let borrowed = split_borrowed(&data, PrivacyLevel::Low, &s);
        assert_eq!(borrowed.len(), owned.len());
        assert_eq!(borrowed.capacity(), borrowed.len());
        let range = data.as_ptr() as usize..data.as_ptr() as usize + data.len();
        for (b, o) in borrowed.iter().zip(&owned) {
            assert_eq!(*b, o.as_slice());
            assert!(range.contains(&(b.as_ptr() as usize)), "slice escaped buffer");
        }

        // Shared: ref-counted slices of ONE buffer — again pointer
        // identity, no per-chunk copies.
        let shared_buf = Bytes::from(data.clone());
        let base = shared_buf.as_ptr() as usize;
        let shared = split_shared(&shared_buf, PrivacyLevel::Low, &s);
        assert_eq!(shared.len(), owned.len());
        for (sh, o) in shared.iter().zip(&owned) {
            assert_eq!(sh.as_ref(), o.as_slice());
            let p = sh.as_ptr() as usize;
            assert!((base..base + data.len()).contains(&p), "chunk was copied");
        }

        // Empty-file semantics match `split` for both variants.
        assert_eq!(split_borrowed(&[], PrivacyLevel::Low, &s).len(), 1);
        assert!(split_borrowed(&[], PrivacyLevel::Low, &s)[0].is_empty());
        let e = split_shared(&Bytes::new(), PrivacyLevel::Low, &s);
        assert_eq!(e.len(), 1);
        assert!(e[0].is_empty());
    }

    #[test]
    fn feeder_matches_split_boundaries() {
        let s = sched();
        for n in [0usize, 1, 7, 8, 9, 16, 17, 40, 100] {
            let data: Vec<u8> = (0..n).map(|i| (i * 13) as u8).collect();
            for pl in PrivacyLevel::ALL {
                for k in [1usize, 2, 3, 5] {
                    let expect = split(&data, pl, &s);
                    let mut feeder = StripeFeeder::new(&data[..], s.size_for(pl), k);
                    let mut got: Vec<Vec<u8>> = Vec::new();
                    while let Some(stripe) = feeder.next_stripe().expect("in-memory read") {
                        assert!(stripe.len() <= k, "stripe overfilled");
                        got.extend(stripe);
                    }
                    assert_eq!(got, expect, "n={n} pl={pl} k={k}");
                    assert_eq!(feeder.bytes_read(), n as u64);
                    // Exhausted feeder stays exhausted.
                    assert!(feeder.next_stripe().expect("eof").is_none());
                }
            }
        }
    }

    #[test]
    fn feeder_survives_short_reads() {
        // A reader that returns one byte at a time exercises the
        // fill-until-full loop.
        struct OneByte<'a>(&'a [u8]);
        impl std::io::Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.0.is_empty() || buf.is_empty() {
                    return Ok(0);
                }
                buf[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let s = sched();
        let data: Vec<u8> = (0..25).map(|i| i as u8).collect();
        let mut feeder = StripeFeeder::new(OneByte(&data), s.size_for(PrivacyLevel::Low), 2);
        let mut got = Vec::new();
        while let Some(stripe) = feeder.next_stripe().expect("read") {
            got.extend(stripe);
        }
        assert_eq!(got, split(&data, PrivacyLevel::Low, &s));
    }

    #[test]
    fn feeder_holds_exact_capacity_chunks() {
        let s = sched();
        let data = [9u8; 21]; // Low → 8-byte chunks, 5-byte tail
        let mut feeder = StripeFeeder::new(&data[..], s.size_for(PrivacyLevel::Low), 4);
        let stripe = feeder.next_stripe().expect("read").expect("stripe");
        for c in &stripe {
            assert_eq!(c.capacity(), c.len(), "feeder chunk over-allocated");
        }
    }

    #[test]
    fn chunk_count_matches_split() {
        let s = sched();
        for n in [0usize, 1, 7, 8, 9, 63, 64, 65] {
            let data = vec![0u8; n];
            for pl in PrivacyLevel::ALL {
                assert_eq!(
                    chunk_count(n, pl, &s),
                    split(&data, pl, &s).len(),
                    "n={n} pl={pl}"
                );
            }
        }
    }
}
