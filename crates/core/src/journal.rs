//! Append-only write-ahead op journal for the distributor — delta records
//! with cross-operation group commit.
//!
//! [`persist`](crate::persist) gives durability of *quiescent* table
//! state; this module makes the mutating operations themselves
//! crash-consistent. Every state-mutating operation (`put_file`,
//! `remove_file`, `repair`, rebalance moves) brackets its work with
//! intent/commit/abort records, and — critically — logs every virtual id
//! it allocates *before* the corresponding provider upload. A distributor
//! that dies mid-operation therefore leaves a journal whose dangling op
//! names exactly the objects that may exist on providers without being
//! acknowledged in any snapshot; [`recovery`](crate::recovery) uses that
//! to garbage-collect them.
//!
//! ## v2: deltas instead of snapshots
//!
//! v1 closed every op by rewriting a **full** checkpoint snapshot — the
//! ~1.9× put-path tax E20 measured. v2 closes an op with a small **delta**
//! against the last checkpoint: just the table rows the op touched
//! (serialized by the distributor; the journal treats the payload as
//! opaque text). The checkpoint is refreshed only every
//! [`checkpoint_interval`](crate::config::DurabilityConfig::checkpoint_interval)
//! commits, when the accumulated deltas are folded in and the closed
//! records dropped ([`compact_upto`](Journal::compact_upto)).
//!
//! Record grammar (one record per line, `|`-separated, the same `%xx`
//! escaping as `persist`):
//!
//! ```text
//! fragcloud-journal|v2
//! checkpoint|<escaped full persist snapshot>
//! begin|<op>|<kind>|<client>|<target>
//! alloc|<op>|<vid>,<vid>,...     # fresh ids, logged BEFORE upload
//! doom|<op>|<vid>,<vid>,...      # ids this op intends to delete
//! commit|<op>|<escaped delta>
//! abort|<op>|<escaped delta>
//! end
//! ```
//!
//! ## Group commit
//!
//! Closing records are made durable in **batches**: [`commit_prepare`]
//! appends the record (cheap, under the journal mutex) and returns a
//! sequence number; [`sync`] blocks until a flush covering that sequence
//! has run. The first syncer becomes the *leader*: it optionally lingers
//! for the configured group-commit window (skipped when other close
//! records are already pending — the batch the linger exists to gather
//! has formed), then drains every pending close record into a single
//! [`JournalSink::persist`] call — the modeled fsync — so N concurrent
//! operations pay ~1 flush instead of N.
//! Followers that arrive while a flush is in flight piggyback on it
//! (`fsync_waits` counts them, `journal_fsync_wait_us` observes how long
//! they blocked; `journal_batch_ops_count` observes the drain size).
//!
//! A close record that was appended but **not yet flushed** is not
//! durable: [`ops`](Journal::ops) reports its op as dangling,
//! [`export`](Journal::export) omits it, and recovery begins by
//! [`discard_unflushed`](Journal::discard_unflushed) — exactly the "crash
//! between batch intent and group fsync" window of the crash matrix. An
//! operation is only acknowledged to its caller after its record is
//! flushed, so *acked ⇔ durable* holds under group commit too.
//!
//! [`commit_prepare`]: Journal::commit_prepare
//! [`sync`]: Journal::sync
//! [`persist`]: crate::persist

use crate::config::DurabilityConfig;
use crate::persist::{esc, unesc};
use crate::{CoreError, Result};
use fragcloud_sim::VirtualId;
use fragcloud_telemetry::{clock, TelemetryHandle};
use parking_lot::Mutex;
use std::sync::{Arc, Condvar, Mutex as StdMutex, PoisonError};
use std::time::Duration;

/// Journal format version.
const VERSION: u32 = 2;

/// Identifier of one journaled operation (unique per journal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u64);

impl std::fmt::Display for OpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// Which mutation path an op belongs to — determines how recovery treats
/// a dangling instance (roll back for `Put`/`Repair`/`Migrate`, roll
/// *forward* for `Remove`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `put_file`: new file upload.
    Put,
    /// `remove_file`: file deletion.
    Remove,
    /// `repair`: stripe re-placement after provider loss.
    Repair,
    /// A rebalance move (`migrate_chunk`).
    Migrate,
}

impl OpKind {
    fn tag(self) -> &'static str {
        match self {
            OpKind::Put => "put",
            OpKind::Remove => "remove",
            OpKind::Repair => "repair",
            OpKind::Migrate => "migrate",
        }
    }

    fn parse(s: &str, line_no: usize) -> Result<Self> {
        match s {
            "put" => Ok(OpKind::Put),
            "remove" => Ok(OpKind::Remove),
            "repair" => Ok(OpKind::Repair),
            "migrate" => Ok(OpKind::Migrate),
            other => Err(bad(line_no, &format!("unknown op kind {other:?}"))),
        }
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// Fate of a journaled op, as read back by recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpStatus {
    /// A *flushed* `commit` record exists: the op finished and its delta
    /// is durable.
    Committed,
    /// A *flushed* `abort` record exists: the op failed and was rolled
    /// back inline by the live distributor.
    Aborted,
    /// Neither record is durable: the distributor died inside the op (or
    /// between appending the close record and the group fsync).
    Dangling,
}

/// One op folded out of the record stream (see [`Journal::ops`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpView {
    /// The op's journal-unique id.
    pub id: OpId,
    /// Mutation path.
    pub kind: OpKind,
    /// Client the op acted for (empty for client-less ops like `repair`).
    pub client: String,
    /// Target of the op — a filename, or a descriptive tag for
    /// repair/migrate ops.
    pub target: String,
    /// Freshly allocated vids, in allocation order.
    pub fresh: Vec<VirtualId>,
    /// Vids the op intended to delete.
    pub doomed: Vec<VirtualId>,
    /// Committed / aborted / dangling.
    pub status: OpStatus,
}

/// The durable medium behind the journal's group commit.
///
/// [`Journal::sync`]'s leader calls [`persist`](JournalSink::persist)
/// exactly once per flush with the batch of newly durable close records.
/// The default sink is a no-op (the in-memory journal *is* the durable
/// medium in this simulation); experiments install a
/// [`SimulatedFsyncSink`] to price each flush realistically.
pub trait JournalSink: Send + Sync {
    /// Persist one flushed batch of serialized close records.
    fn persist(&self, batch: &str);
}

/// The default sink: flushing costs nothing.
#[derive(Debug, Default)]
pub struct NoopSink;

impl JournalSink for NoopSink {
    fn persist(&self, _batch: &str) {}
}

/// A sink that charges a fixed wall-clock cost per flush, standing in for
/// a real fsync. With group commit, N concurrent operations amortize one
/// such cost instead of paying N.
#[derive(Debug)]
pub struct SimulatedFsyncSink {
    /// Wall-clock cost of one flush.
    pub cost: Duration,
}

impl JournalSink for SimulatedFsyncSink {
    fn persist(&self, _batch: &str) {
        std::thread::sleep(self.cost);
    }
}

/// How a [`FaultySink`] sabotages its scheduled flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkFault {
    /// The flush is silently dropped: the inner sink never sees the batch
    /// (a lost fsync — power cut after the write syscall returned).
    Drop,
    /// Only the given number of bytes reach the inner sink (a torn write:
    /// the tail of the batch never hit the platter). Clamped to the batch
    /// length; cutting on a UTF-8 boundary is handled internally.
    Torn(usize),
}

/// A [`JournalSink`] wrapper that injects exactly one scheduled flush
/// fault — the journal-side leg of the chaos harness. Deterministic: the
/// fault fires on the `at_flush`-th call to [`persist`](JournalSink::persist)
/// (1-based) and never again; all other flushes pass through untouched.
///
/// Recovery code paired with this sink asserts the invariant the delta
/// log is designed around: a dropped or torn close-record batch rolls the
/// affected ops back (or forward, for removals) — it never invents state.
pub struct FaultySink<S: JournalSink> {
    inner: S,
    fault: SinkFault,
    at_flush: u64,
    flushes: std::sync::atomic::AtomicU64,
    fired: std::sync::atomic::AtomicBool,
}

impl<S: JournalSink> FaultySink<S> {
    /// Wraps `inner`, scheduling `fault` for the `at_flush`-th flush
    /// (1-based; 0 never fires).
    pub fn new(inner: S, fault: SinkFault, at_flush: u64) -> Self {
        FaultySink {
            inner,
            fault,
            at_flush,
            flushes: std::sync::atomic::AtomicU64::new(0),
            fired: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Whether the scheduled fault has fired yet.
    pub fn fired(&self) -> bool {
        self.fired.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Flushes the inner sink has been asked to persist so far (the
    /// faulted one included — it was *attempted*).
    pub fn flushes(&self) -> u64 {
        self.flushes.load(std::sync::atomic::Ordering::Acquire)
    }

    /// The wrapped sink, for post-crash inspection.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: JournalSink> JournalSink for FaultySink<S> {
    fn persist(&self, batch: &str) {
        use std::sync::atomic::Ordering;
        let n = self.flushes.fetch_add(1, Ordering::AcqRel) + 1;
        if n == self.at_flush {
            self.fired.store(true, Ordering::Release);
            match self.fault {
                SinkFault::Drop => {}
                SinkFault::Torn(keep) => {
                    let mut keep = keep.min(batch.len());
                    while keep > 0 && !batch.is_char_boundary(keep) {
                        keep -= 1;
                    }
                    self.inner.persist(&batch[..keep]);
                }
            }
            return;
        }
        self.inner.persist(batch);
    }
}

#[derive(Debug, Clone)]
enum Record {
    Begin {
        op: OpId,
        kind: OpKind,
        client: String,
        target: String,
    },
    Alloc {
        op: OpId,
        vids: Vec<VirtualId>,
    },
    Doom {
        op: OpId,
        vids: Vec<VirtualId>,
    },
    Commit {
        op: OpId,
        delta: String,
        flushed: bool,
    },
    Abort {
        op: OpId,
        delta: String,
        flushed: bool,
    },
}

impl Record {
    fn op(&self) -> OpId {
        match self {
            Record::Begin { op, .. }
            | Record::Alloc { op, .. }
            | Record::Doom { op, .. }
            | Record::Commit { op, .. }
            | Record::Abort { op, .. } => *op,
        }
    }
}

#[derive(Default)]
struct JournalInner {
    next_op: u64,
    checkpoint: String,
    records: Vec<Record>,
    /// Close records appended so far — the group-commit sequence space.
    closes_appended: u64,
    /// Commits since the last checkpoint compaction.
    commits_since_checkpoint: u32,
}

/// Group-commit flush progress, guarded by a std mutex so the leader's
/// followers can park on the condvar.
struct FlushState {
    /// Highest close sequence covered by a completed flush.
    flushed: u64,
    /// Whether a leader currently owns the flush.
    leader: bool,
}

/// The append-only write-ahead op journal.
///
/// Thread-safe; attach one to a
/// [`CloudDataDistributor`](crate::CloudDataDistributor) via
/// [`attach_journal`](crate::CloudDataDistributor::attach_journal) and it
/// records every mutation. [`export`](Self::export) the text form to
/// durable storage as often as desired; after a crash,
/// [`parse`](Self::parse) it back and hand it to
/// [`recover`](crate::recovery::recover).
pub struct Journal {
    inner: Mutex<JournalInner>,
    flush: StdMutex<FlushState>,
    flush_cv: Condvar,
    sink: Mutex<Arc<dyn JournalSink>>,
    tel: Mutex<TelemetryHandle>,
    window: Mutex<Duration>,
    checkpoint_interval: Mutex<u32>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal").finish_non_exhaustive()
    }
}

impl Default for Journal {
    fn default() -> Self {
        Journal {
            inner: Mutex::new(JournalInner::default()),
            flush: StdMutex::new(FlushState {
                flushed: 0,
                leader: false,
            }),
            flush_cv: Condvar::new(),
            sink: Mutex::new(Arc::new(NoopSink)),
            tel: Mutex::new(TelemetryHandle::disabled()),
            window: Mutex::new(Duration::ZERO),
            checkpoint_interval: Mutex::new(DurabilityConfig::default().checkpoint_interval),
        }
    }
}

fn bad(line_no: usize, why: &str) -> CoreError {
    CoreError::CorruptState {
        line: line_no,
        why: why.to_string(),
    }
}

impl Journal {
    /// An empty journal (no checkpoint, no records, no-op sink).
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies a [`DurabilityConfig`]'s journal knobs (group-commit window
    /// and checkpoint interval). The distributor calls this from
    /// [`attach_journal`](crate::CloudDataDistributor::attach_journal).
    pub fn configure(&self, durability: &DurabilityConfig) {
        *self.window.lock() = durability.group_commit_window;
        *self.checkpoint_interval.lock() = durability.checkpoint_interval.max(1);
    }

    /// Installs the durable-medium sink the group-commit leader flushes
    /// through.
    pub fn set_sink(&self, sink: Arc<dyn JournalSink>) {
        *self.sink.lock() = sink;
    }

    /// Routes the journal's `fsync_total` / `fsync_waits` /
    /// `journal_batch_ops_count` / `journal_fsync_wait_us` telemetry to
    /// `tel`.
    pub fn set_telemetry(&self, tel: TelemetryHandle) {
        *self.tel.lock() = tel;
    }

    /// Opens an op: appends its `begin` record and returns the new id.
    pub fn begin(&self, kind: OpKind, client: &str, target: &str) -> OpId {
        let mut inner = self.inner.lock();
        inner.next_op += 1;
        let op = OpId(inner.next_op);
        inner.records.push(Record::Begin {
            op,
            kind,
            client: client.to_string(),
            target: target.to_string(),
        });
        op
    }

    /// Logs freshly allocated vids for `op`. Must happen *before* the
    /// corresponding provider uploads — that ordering is what makes
    /// orphans enumerable after a crash.
    pub fn log_alloc(&self, op: OpId, vids: &[VirtualId]) {
        if vids.is_empty() {
            return;
        }
        self.inner.lock().records.push(Record::Alloc {
            op,
            vids: vids.to_vec(),
        });
    }

    /// Logs vids `op` intends to delete (roll-forward set for removals,
    /// doomed source copies for migrations).
    pub fn log_doom(&self, op: OpId, vids: &[VirtualId]) {
        if vids.is_empty() {
            return;
        }
        self.inner.lock().records.push(Record::Doom {
            op,
            vids: vids.to_vec(),
        });
    }

    /// Appends `op`'s commit record carrying its state delta, **without**
    /// flushing it. Returns the close sequence to pass to
    /// [`sync`](Self::sync) and whether a checkpoint compaction is due
    /// (every [`checkpoint_interval`] commits).
    ///
    /// Until the sequence is covered by a flush the record is not durable:
    /// the op still reads as [`OpStatus::Dangling`].
    ///
    /// [`checkpoint_interval`]: crate::config::DurabilityConfig::checkpoint_interval
    pub fn commit_prepare(&self, op: OpId, delta: String) -> (u64, bool) {
        let interval = *self.checkpoint_interval.lock();
        let mut inner = self.inner.lock();
        inner.records.push(Record::Commit {
            op,
            delta,
            flushed: false,
        });
        inner.closes_appended += 1;
        let seq = inner.closes_appended;
        inner.commits_since_checkpoint += 1;
        let due = inner.commits_since_checkpoint >= interval;
        if due {
            inner.commits_since_checkpoint = 0;
        }
        (seq, due)
    }

    /// True when at least two unflushed close records are already pending
    /// — the group-commit linger has nothing left to buy.
    fn batch_formed(&self) -> bool {
        let appended = self.inner.lock().closes_appended;
        let flushed = self
            .flush
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .flushed;
        appended.saturating_sub(flushed) >= 2
    }

    /// Blocks until a group flush covering close sequence `seq` has run.
    ///
    /// The first caller to find no flush in flight becomes the leader: it
    /// lingers for the configured group-commit window (default zero),
    /// drains **every** pending close record in one [`JournalSink`] call,
    /// and wakes the followers. Followers count into `fsync_waits` and
    /// observe their blocked time into `journal_fsync_wait_us`; the
    /// drain size lands in the `journal_batch_ops_count` histogram.
    pub fn sync(&self, seq: u64) {
        let tel = self.tel.lock().clone();
        let mut waited: Option<std::time::Instant> = None;
        let mut g = self.flush.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if g.flushed >= seq {
                if let Some(since) = waited {
                    tel.incr("fsync_waits");
                    tel.observe_micros("journal_fsync_wait_us", since.elapsed());
                }
                return;
            }
            if g.leader {
                waited.get_or_insert_with(clock::monotonic_now);
                g = self
                    .flush_cv
                    .wait(g)
                    .unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            g.leader = true;
            drop(g);

            let window = *self.window.lock();
            if window > Duration::ZERO && !self.batch_formed() {
                // Linger: let concurrent commits pile into this window.
                // Skipped when a batch has already formed behind this
                // leader — lingering then would only delay an fsync that
                // is already amortized.
                std::thread::sleep(window);
            }

            // Drain every unflushed close record in one batch.
            let (batch, n, upto) = {
                let mut inner = self.inner.lock();
                let mut batch = String::new();
                let mut n = 0u64;
                for r in inner.records.iter_mut() {
                    match r {
                        Record::Commit { op, delta, flushed } if !*flushed => {
                            *flushed = true;
                            batch.push_str(&format!("commit|{}|{}\n", op.0, esc(delta)));
                            n += 1;
                        }
                        Record::Abort { op, delta, flushed } if !*flushed => {
                            *flushed = true;
                            batch.push_str(&format!("abort|{}|{}\n", op.0, esc(delta)));
                            n += 1;
                        }
                        _ => {}
                    }
                }
                (batch, n, inner.closes_appended)
            };
            if n > 0 {
                let sink = Arc::clone(&self.sink.lock());
                sink.persist(&batch);
                tel.observe("journal_batch_ops_count", n);
            }
            tel.incr("fsync_total");

            let mut g2 = self.flush.lock().unwrap_or_else(PoisonError::into_inner);
            g2.flushed = g2.flushed.max(upto);
            g2.leader = false;
            self.flush_cv.notify_all();
            if let Some(since) = waited {
                tel.incr("fsync_waits");
                tel.observe_micros("journal_fsync_wait_us", since.elapsed());
            }
            return;
        }
    }

    /// Closes `op` as committed and flushes immediately:
    /// [`commit_prepare`](Self::commit_prepare) + [`sync`](Self::sync).
    /// Returns whether a checkpoint compaction is due.
    pub fn commit(&self, op: OpId, delta: String) -> bool {
        let (seq, due) = self.commit_prepare(op, delta);
        self.sync(seq);
        due
    }

    /// Closes `op` as aborted (the live distributor already rolled it
    /// back), carrying the post-rollback delta, and flushes immediately.
    pub fn abort(&self, op: OpId, delta: String) {
        let seq = {
            let mut inner = self.inner.lock();
            inner.records.push(Record::Abort {
                op,
                delta,
                flushed: false,
            });
            inner.closes_appended += 1;
            inner.closes_appended
        };
        self.sync(seq);
    }

    /// Replaces the checkpoint without touching the record stream — used
    /// after mutations that are snapshot-only (e.g. client registration).
    pub fn set_checkpoint(&self, checkpoint: String) {
        self.inner.lock().checkpoint = checkpoint;
    }

    /// The latest committed state snapshot (empty string if none yet).
    pub fn checkpoint(&self) -> String {
        self.inner.lock().checkpoint.clone()
    }

    /// Current record count — the watermark to pass to
    /// [`compact_upto`](Self::compact_upto): a snapshot exported *after*
    /// reading this covers every close record below it.
    pub fn record_len(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// Drops all records of ops whose durable close record sits below
    /// index `upto`, installing `checkpoint` as the new baseline. Ops
    /// closed *after* the watermark keep their records (their deltas may
    /// postdate the snapshot); dangling ops always survive. Delta replay
    /// is idempotent, so a checkpoint that already contains a surviving
    /// delta's rows is harmless.
    pub fn compact_upto(&self, checkpoint: String, upto: usize) {
        let mut inner = self.inner.lock();
        let closed: std::collections::HashSet<OpId> = inner
            .records
            .iter()
            .enumerate()
            .filter_map(|(i, r)| match r {
                Record::Commit { op, flushed, .. } | Record::Abort { op, flushed, .. }
                    if *flushed && i < upto =>
                {
                    Some(*op)
                }
                _ => None,
            })
            .collect();
        inner.records.retain(|r| !closed.contains(&r.op()));
        inner.checkpoint = checkpoint;
    }

    /// Drops all records of closed (durably committed or aborted) ops,
    /// installing `checkpoint` as the new baseline. Recovery calls this
    /// once the journal has been fully resolved.
    pub fn compact(&self, checkpoint: String) {
        self.compact_upto(checkpoint, usize::MAX);
    }

    /// Removes close records that were appended but never covered by a
    /// group flush — after a crash, what never reached the sink is gone.
    /// Recovery calls this first; the affected ops read as dangling.
    pub fn discard_unflushed(&self) {
        self.inner.lock().records.retain(|r| {
            !matches!(
                r,
                Record::Commit { flushed: false, .. } | Record::Abort { flushed: false, .. }
            )
        });
    }

    /// The durable close records in record order:
    /// ⟨op, status, delta⟩ for every flushed commit/abort. Recovery
    /// replays these against the checkpoint.
    pub fn closed_deltas(&self) -> Vec<(OpId, OpStatus, String)> {
        self.inner
            .lock()
            .records
            .iter()
            .filter_map(|r| match r {
                Record::Commit {
                    op,
                    delta,
                    flushed: true,
                } => Some((*op, OpStatus::Committed, delta.clone())),
                Record::Abort {
                    op,
                    delta,
                    flushed: true,
                } => Some((*op, OpStatus::Aborted, delta.clone())),
                _ => None,
            })
            .collect()
    }

    /// Folds the record stream into per-op views, in `begin` order.
    /// Unflushed close records do not count: their ops read as dangling.
    pub fn ops(&self) -> Vec<OpView> {
        let inner = self.inner.lock();
        let mut views: Vec<OpView> = Vec::new();
        for r in &inner.records {
            match r {
                Record::Begin {
                    op,
                    kind,
                    client,
                    target,
                } => views.push(OpView {
                    id: *op,
                    kind: *kind,
                    client: client.clone(),
                    target: target.clone(),
                    fresh: Vec::new(),
                    doomed: Vec::new(),
                    status: OpStatus::Dangling,
                }),
                Record::Alloc { op, vids } => {
                    if let Some(v) = views.iter_mut().find(|v| v.id == *op) {
                        v.fresh.extend_from_slice(vids);
                    }
                }
                Record::Doom { op, vids } => {
                    if let Some(v) = views.iter_mut().find(|v| v.id == *op) {
                        v.doomed.extend_from_slice(vids);
                    }
                }
                Record::Commit { op, flushed, .. } => {
                    if *flushed {
                        if let Some(v) = views.iter_mut().find(|v| v.id == *op) {
                            v.status = OpStatus::Committed;
                        }
                    }
                }
                Record::Abort { op, flushed, .. } => {
                    if *flushed {
                        if let Some(v) = views.iter_mut().find(|v| v.id == *op) {
                            v.status = OpStatus::Aborted;
                        }
                    }
                }
            }
        }
        views
    }

    /// Serializes the journal to its versioned text form. Unflushed close
    /// records are omitted — the text form models what durable storage
    /// would hold after a crash.
    pub fn export(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::new();
        out.push_str(&format!("fragcloud-journal|v{VERSION}\n"));
        out.push_str(&format!("checkpoint|{}\n", esc(&inner.checkpoint)));
        for r in &inner.records {
            match r {
                Record::Begin {
                    op,
                    kind,
                    client,
                    target,
                } => out.push_str(&format!(
                    "begin|{}|{}|{}|{}\n",
                    op.0,
                    kind.tag(),
                    esc(client),
                    esc(target)
                )),
                Record::Alloc { op, vids } => {
                    out.push_str(&format!("alloc|{}|{}\n", op.0, join_vids(vids)))
                }
                Record::Doom { op, vids } => {
                    out.push_str(&format!("doom|{}|{}\n", op.0, join_vids(vids)))
                }
                Record::Commit {
                    op,
                    delta,
                    flushed: true,
                } => out.push_str(&format!("commit|{}|{}\n", op.0, esc(delta))),
                Record::Abort {
                    op,
                    delta,
                    flushed: true,
                } => out.push_str(&format!("abort|{}|{}\n", op.0, esc(delta))),
                Record::Commit { .. } | Record::Abort { .. } => {}
            }
        }
        out.push_str("end\n");
        out
    }

    /// Parses a journal back from its text form. Reports malformed input
    /// through [`CoreError::CorruptState`], like the snapshot parser.
    pub fn parse(text: &str) -> Result<Journal> {
        let mut lines = text.lines().enumerate();
        let (ln, header) = lines.next().ok_or_else(|| bad(0, "empty journal"))?;
        if header != format!("fragcloud-journal|v{VERSION}") {
            return Err(bad(ln + 1, "bad journal header/version"));
        }
        let (ln, cline) = lines.next().ok_or_else(|| bad(0, "truncated journal"))?;
        let checkpoint = unesc(
            cline
                .strip_prefix("checkpoint|")
                .ok_or_else(|| bad(ln + 1, "expected checkpoint"))?,
        );

        let mut records = Vec::new();
        let mut next_op = 0u64;
        let mut closes = 0u64;
        let mut saw_end = false;
        for (ln, line) in lines {
            let line_no = ln + 1;
            if line == "end" {
                saw_end = true;
                break;
            }
            let f: Vec<&str> = line.split('|').collect();
            let op_of = |s: &str| -> Result<OpId> {
                s.parse::<u64>()
                    .map(OpId)
                    .map_err(|_| bad(line_no, "expected op id"))
            };
            match f[0] {
                "begin" => {
                    if f.len() != 5 {
                        return Err(bad(line_no, "expected begin record"));
                    }
                    let op = op_of(f[1])?;
                    next_op = next_op.max(op.0);
                    records.push(Record::Begin {
                        op,
                        kind: OpKind::parse(f[2], line_no)?,
                        client: unesc(f[3]),
                        target: unesc(f[4]),
                    });
                }
                "alloc" | "doom" => {
                    if f.len() != 3 {
                        return Err(bad(line_no, "expected vid-list record"));
                    }
                    let op = op_of(f[1])?;
                    let vids = parse_vids(f[2], line_no)?;
                    records.push(if f[0] == "alloc" {
                        Record::Alloc { op, vids }
                    } else {
                        Record::Doom { op, vids }
                    });
                }
                "commit" | "abort" => {
                    if f.len() != 3 {
                        return Err(bad(line_no, "expected op-close record"));
                    }
                    let op = op_of(f[1])?;
                    let delta = unesc(f[2]);
                    closes += 1;
                    // Parsed records were durable by definition.
                    records.push(if f[0] == "commit" {
                        Record::Commit {
                            op,
                            delta,
                            flushed: true,
                        }
                    } else {
                        Record::Abort {
                            op,
                            delta,
                            flushed: true,
                        }
                    });
                }
                other => return Err(bad(line_no, &format!("unexpected record {other:?}"))),
            }
        }
        if !saw_end {
            return Err(bad(0, "missing end marker"));
        }
        Ok(Journal {
            inner: Mutex::new(JournalInner {
                next_op,
                checkpoint,
                records,
                closes_appended: closes,
                commits_since_checkpoint: 0,
            }),
            flush: StdMutex::new(FlushState {
                flushed: closes,
                leader: false,
            }),
            ..Default::default()
        })
    }
}

fn join_vids(vids: &[VirtualId]) -> String {
    vids.iter()
        .map(|v| v.0.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_vids(s: &str, line_no: usize) -> Result<Vec<VirtualId>> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|x| {
            x.parse::<u64>()
                .map(VirtualId)
                .map_err(|_| bad(line_no, "expected vid"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vids(xs: &[u64]) -> Vec<VirtualId> {
        xs.iter().map(|&x| VirtualId(x)).collect()
    }

    #[test]
    fn export_parse_roundtrip() {
        let j = Journal::new();
        j.set_checkpoint("fake|snapshot\nwith lines\n".to_string());
        let a = j.begin(OpKind::Put, "cli|ent", "fi%le");
        j.log_alloc(a, &vids(&[10, 11]));
        j.log_alloc(a, &vids(&[12]));
        j.commit(a, "chunk|0|0|some|row\nvids|12\n".to_string());
        let b = j.begin(OpKind::Remove, "c", "gone");
        j.log_doom(b, &vids(&[10]));
        // b left dangling: the crash case.

        let text = j.export();
        assert!(text.starts_with("fragcloud-journal|v2\n"));
        assert!(text.ends_with("end\n"));
        let back = Journal::parse(&text).unwrap();
        assert_eq!(back.checkpoint(), "fake|snapshot\nwith lines\n");
        let ops = back.ops();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].id, a);
        assert_eq!(ops[0].kind, OpKind::Put);
        assert_eq!(ops[0].client, "cli|ent");
        assert_eq!(ops[0].target, "fi%le");
        assert_eq!(ops[0].fresh, vids(&[10, 11, 12]));
        assert_eq!(ops[0].status, OpStatus::Committed);
        assert_eq!(ops[1].status, OpStatus::Dangling);
        assert_eq!(ops[1].doomed, vids(&[10]));
        // The delta survives the roundtrip verbatim.
        let deltas = back.closed_deltas();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].0, a);
        assert_eq!(deltas[0].2, "chunk|0|0|some|row\nvids|12\n");

        // A re-parsed journal keeps allocating fresh op ids.
        let c = back.begin(OpKind::Repair, "", "stripes");
        assert!(c.0 > b.0);
    }

    #[test]
    fn abort_marks_op_aborted() {
        let j = Journal::new();
        let a = j.begin(OpKind::Put, "c", "f");
        j.log_alloc(a, &vids(&[7]));
        j.abort(a, "chunk|0|3|rolled|back".to_string());
        assert_eq!(j.ops()[0].status, OpStatus::Aborted);
        let deltas = j.closed_deltas();
        assert_eq!(deltas[0].1, OpStatus::Aborted);
        assert_eq!(deltas[0].2, "chunk|0|3|rolled|back");
    }

    #[test]
    fn compact_drops_closed_ops_keeps_dangling() {
        let j = Journal::new();
        let a = j.begin(OpKind::Put, "c", "f1");
        j.commit(a, "d1".to_string());
        let b = j.begin(OpKind::Put, "c", "f2");
        j.log_alloc(b, &vids(&[5]));
        j.compact("ck2".to_string());
        let ops = j.ops();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].id, b);
        assert_eq!(ops[0].status, OpStatus::Dangling);
        assert_eq!(j.checkpoint(), "ck2");
        assert!(j.closed_deltas().is_empty());
    }

    #[test]
    fn compact_upto_spares_late_closes() {
        let j = Journal::new();
        let a = j.begin(OpKind::Put, "c", "f1");
        j.commit(a, "da".to_string());
        let watermark = j.record_len();
        let b = j.begin(OpKind::Put, "c", "f2");
        j.commit(b, "db".to_string());
        // Only a's records fall below the watermark; b's delta postdates
        // the snapshot and must survive.
        j.compact_upto("snap".to_string(), watermark);
        let deltas = j.closed_deltas();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].0, b);
        assert_eq!(j.checkpoint(), "snap");
    }

    #[test]
    fn unflushed_commits_are_not_durable() {
        let j = Journal::new();
        let a = j.begin(OpKind::Put, "c", "f");
        j.log_alloc(a, &vids(&[3]));
        let (seq, _) = j.commit_prepare(a, "delta-a".to_string());
        // Before sync: dangling everywhere a reader looks.
        assert_eq!(j.ops()[0].status, OpStatus::Dangling);
        assert!(j.closed_deltas().is_empty());
        assert!(!j.export().contains("commit|"));
        // The crash path: discard, and the record is gone for good.
        j.discard_unflushed();
        j.sync(seq); // a flush with nothing to drain is harmless
        assert_eq!(j.ops()[0].status, OpStatus::Dangling);

        // The happy path on a fresh op: prepare + sync = durable.
        let b = j.begin(OpKind::Put, "c", "g");
        let (seq, _) = j.commit_prepare(b, "delta-b".to_string());
        j.sync(seq);
        let ops = j.ops();
        assert_eq!(ops[1].status, OpStatus::Committed);
        assert!(j.export().contains("commit|"));
    }

    #[test]
    fn checkpoint_interval_signals_compaction() {
        let j = Journal::new();
        j.configure(&DurabilityConfig::default().with_checkpoint_interval(3));
        let mut dues = Vec::new();
        for i in 0..7 {
            let op = j.begin(OpKind::Put, "c", &format!("f{i}"));
            dues.push(j.commit(op, String::new()));
        }
        assert_eq!(dues, vec![false, false, true, false, false, true, false]);
    }

    #[test]
    fn group_commit_batches_concurrent_closes() {
        use std::sync::atomic::{AtomicU64, Ordering};

        struct CountingSink(AtomicU64);
        impl JournalSink for CountingSink {
            fn persist(&self, _batch: &str) {
                self.0.fetch_add(1, Ordering::SeqCst);
                // Make the flush slow enough that other threads pile up.
                std::thread::sleep(Duration::from_millis(2));
            }
        }

        let j = Arc::new(Journal::new());
        let sink = Arc::new(CountingSink(AtomicU64::new(0)));
        j.set_sink(Arc::clone(&sink) as Arc<dyn JournalSink>);
        let tel = TelemetryHandle::enabled();
        j.set_telemetry(tel.clone());

        const N: usize = 16;
        crossbeam::thread::scope(|s| {
            for i in 0..N {
                let j = Arc::clone(&j);
                s.spawn(move |_| {
                    let op = j.begin(OpKind::Put, "c", &format!("f{i}"));
                    let (seq, _) = j.commit_prepare(op, format!("delta-{i}"));
                    j.sync(seq);
                });
            }
        })
        .expect("no panics");

        // Every op is durable…
        assert!(j.ops().iter().all(|o| o.status == OpStatus::Committed));
        // …but the sink saw strictly fewer flushes than closes: at least
        // one batch carried more than one record.
        let flushes = sink.0.load(Ordering::SeqCst);
        assert!(flushes >= 1);
        assert!(
            flushes < N as u64,
            "expected batching, got {flushes} flushes for {N} closes"
        );
        let reg = tel.registry().expect("enabled");
        assert_eq!(reg.counter_total("fsync_total"), flushes);
        let batched: u64 = reg.histogram("journal_batch_ops_count", "").count();
        assert!(batched >= 1);
        // Every follower that counted a wait also observed its duration.
        assert_eq!(
            reg.histogram("journal_fsync_wait_us", "").count(),
            reg.counter_total("fsync_waits")
        );
    }

    #[test]
    fn faulty_sink_drops_or_tears_exactly_the_scheduled_flush() {
        use parking_lot::Mutex as PlMutex;

        #[derive(Default)]
        struct RecordingSink(PlMutex<Vec<String>>);
        impl JournalSink for RecordingSink {
            fn persist(&self, batch: &str) {
                self.0.lock().push(batch.to_string());
            }
        }

        // Drop: flush 2 of 3 vanishes; 1 and 3 arrive intact.
        let sink = FaultySink::new(RecordingSink::default(), SinkFault::Drop, 2);
        sink.persist("one");
        sink.persist("two");
        sink.persist("three");
        assert!(sink.fired());
        assert_eq!(sink.flushes(), 3);
        assert_eq!(*sink.inner().0.lock(), vec!["one", "three"]);

        // Torn: flush 1 is cut mid-record (on a char boundary).
        let sink = FaultySink::new(RecordingSink::default(), SinkFault::Torn(4), 1);
        sink.persist("commit|1|é");
        sink.persist("commit|2|x");
        assert!(sink.fired());
        assert_eq!(*sink.inner().0.lock(), vec!["comm", "commit|2|x"]);
        // A cut landing inside a multi-byte char backs off to the boundary.
        let sink = FaultySink::new(RecordingSink::default(), SinkFault::Torn(2), 1);
        sink.persist("aé");
        assert_eq!(*sink.inner().0.lock(), vec!["a"]);

        // `at_flush: 0` never fires.
        let sink = FaultySink::new(RecordingSink::default(), SinkFault::Drop, 0);
        sink.persist("only");
        assert!(!sink.fired());
        assert_eq!(*sink.inner().0.lock(), vec!["only"]);
    }

    #[test]
    fn journal_survives_faulty_sink() {
        // The sink losing a flush must not corrupt the in-memory journal:
        // ops still read back Committed, and the export still parses.
        let j = Journal::new();
        j.set_sink(Arc::new(FaultySink::new(NoopSink, SinkFault::Drop, 1)));
        for i in 0..3 {
            let op = j.begin(OpKind::Put, "c", &format!("f{i}"));
            j.commit(op, String::new());
        }
        assert!(j.ops().iter().all(|o| o.status == OpStatus::Committed));
        Journal::parse(&j.export()).expect("export still parses");
    }

    #[test]
    fn parse_errors_are_corrupt_state() {
        for garbage in [
            "",
            "fragcloud-journal|v999\ncheckpoint|\nend\n",
            "fragcloud-journal|v1\ncheckpoint|\nend\n",
            "fragcloud-journal|v2\nno-checkpoint\nend\n",
            "fragcloud-journal|v2\ncheckpoint|\nbegin|1|teleport|c|f\nend\n",
            "fragcloud-journal|v2\ncheckpoint|\nalloc|1|notanumber\nend\n",
            "fragcloud-journal|v2\ncheckpoint|\ncommit|1\nend\n",
            "fragcloud-journal|v2\ncheckpoint|\nbegin|1|put|c|f\n",
        ] {
            let err = Journal::parse(garbage).unwrap_err();
            assert!(
                matches!(err, CoreError::CorruptState { .. }),
                "{garbage:?} -> {err:?}"
            );
        }
    }

    #[test]
    fn empty_vid_lists_are_not_recorded() {
        let j = Journal::new();
        let a = j.begin(OpKind::Put, "c", "f");
        j.log_alloc(a, &[]);
        j.log_doom(a, &[]);
        // Only the begin line plus header/checkpoint/end.
        assert_eq!(j.export().lines().count(), 4);
    }
}
