//! Append-only write-ahead op journal for the distributor.
//!
//! [`persist`](crate::persist) gives durability of *quiescent* table
//! state; this module makes the mutating operations themselves
//! crash-consistent. Every state-mutating operation (`put_file`,
//! `remove_file`, `repair`, rebalance moves) brackets its work with
//! intent/commit/abort records, and — critically — logs every virtual id
//! it allocates *before* the corresponding provider upload. A distributor
//! that dies mid-operation therefore leaves a journal whose dangling op
//! names exactly the objects that may exist on providers without being
//! acknowledged in any snapshot; [`recovery`](crate::recovery) uses that
//! to garbage-collect them.
//!
//! Record grammar (one record per line, `|`-separated, the same `%xx`
//! escaping as `persist`):
//!
//! ```text
//! fragcloud-journal|v1
//! checkpoint|<escaped full persist snapshot>
//! begin|<op>|<kind>|<client>|<target>
//! alloc|<op>|<vid>,<vid>,...     # fresh ids, logged BEFORE upload
//! doom|<op>|<vid>,<vid>,...      # ids this op intends to delete
//! commit|<op>
//! abort|<op>
//! end
//! ```
//!
//! The `checkpoint` line holds the latest committed [`persist`] snapshot
//! (refreshed on every commit/abort, which also lets the record list be
//! compacted): recovery = import checkpoint + resolve dangling ops. An op
//! with a `commit` record is **committed**, with an `abort` record
//! **aborted**, with neither **dangling** — the crash happened inside it.
//!
//! [`persist`]: crate::persist

use crate::persist::{esc, unesc};
use crate::{CoreError, Result};
use fragcloud_sim::VirtualId;
use parking_lot::Mutex;

/// Journal format version.
const VERSION: u32 = 1;

/// Identifier of one journaled operation (unique per journal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u64);

impl std::fmt::Display for OpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// Which mutation path an op belongs to — determines how recovery treats
/// a dangling instance (roll back for `Put`/`Repair`/`Migrate`, roll
/// *forward* for `Remove`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `put_file`: new file upload.
    Put,
    /// `remove_file`: file deletion.
    Remove,
    /// `repair`: stripe re-placement after provider loss.
    Repair,
    /// A rebalance move (`migrate_chunk`).
    Migrate,
}

impl OpKind {
    fn tag(self) -> &'static str {
        match self {
            OpKind::Put => "put",
            OpKind::Remove => "remove",
            OpKind::Repair => "repair",
            OpKind::Migrate => "migrate",
        }
    }

    fn parse(s: &str, line_no: usize) -> Result<Self> {
        match s {
            "put" => Ok(OpKind::Put),
            "remove" => Ok(OpKind::Remove),
            "repair" => Ok(OpKind::Repair),
            "migrate" => Ok(OpKind::Migrate),
            other => Err(bad(line_no, &format!("unknown op kind {other:?}"))),
        }
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// Fate of a journaled op, as read back by recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpStatus {
    /// A `commit` record exists: the op finished and its checkpoint
    /// includes it.
    Committed,
    /// An `abort` record exists: the op failed and was rolled back inline
    /// by the live distributor.
    Aborted,
    /// Neither record exists: the distributor died inside the op.
    Dangling,
}

/// One op folded out of the record stream (see [`Journal::ops`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpView {
    /// The op's journal-unique id.
    pub id: OpId,
    /// Mutation path.
    pub kind: OpKind,
    /// Client the op acted for (empty for client-less ops like `repair`).
    pub client: String,
    /// Target of the op — a filename, or a descriptive tag for
    /// repair/migrate ops.
    pub target: String,
    /// Freshly allocated vids, in allocation order.
    pub fresh: Vec<VirtualId>,
    /// Vids the op intended to delete.
    pub doomed: Vec<VirtualId>,
    /// Committed / aborted / dangling.
    pub status: OpStatus,
}

#[derive(Debug, Clone)]
enum Record {
    Begin {
        op: OpId,
        kind: OpKind,
        client: String,
        target: String,
    },
    Alloc {
        op: OpId,
        vids: Vec<VirtualId>,
    },
    Doom {
        op: OpId,
        vids: Vec<VirtualId>,
    },
    Commit {
        op: OpId,
    },
    Abort {
        op: OpId,
    },
}

#[derive(Debug, Default)]
struct JournalInner {
    next_op: u64,
    checkpoint: String,
    records: Vec<Record>,
}

/// The append-only write-ahead op journal.
///
/// Thread-safe; attach one to a
/// [`CloudDataDistributor`](crate::CloudDataDistributor) via
/// [`attach_journal`](crate::CloudDataDistributor::attach_journal) and it
/// records every mutation. [`export`](Self::export) the text form to
/// durable storage as often as desired; after a crash,
/// [`parse`](Self::parse) it back and hand it to
/// [`recover`](crate::recovery::recover).
#[derive(Debug, Default)]
pub struct Journal {
    inner: Mutex<JournalInner>,
}

fn bad(line_no: usize, why: &str) -> CoreError {
    CoreError::CorruptState {
        line: line_no,
        why: why.to_string(),
    }
}

impl Journal {
    /// An empty journal (no checkpoint, no records).
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens an op: appends its `begin` record and returns the new id.
    pub fn begin(&self, kind: OpKind, client: &str, target: &str) -> OpId {
        let mut inner = self.inner.lock();
        inner.next_op += 1;
        let op = OpId(inner.next_op);
        inner.records.push(Record::Begin {
            op,
            kind,
            client: client.to_string(),
            target: target.to_string(),
        });
        op
    }

    /// Logs freshly allocated vids for `op`. Must happen *before* the
    /// corresponding provider uploads — that ordering is what makes
    /// orphans enumerable after a crash.
    pub fn log_alloc(&self, op: OpId, vids: &[VirtualId]) {
        if vids.is_empty() {
            return;
        }
        self.inner.lock().records.push(Record::Alloc {
            op,
            vids: vids.to_vec(),
        });
    }

    /// Logs vids `op` intends to delete (roll-forward set for removals,
    /// doomed source copies for migrations).
    pub fn log_doom(&self, op: OpId, vids: &[VirtualId]) {
        if vids.is_empty() {
            return;
        }
        self.inner.lock().records.push(Record::Doom {
            op,
            vids: vids.to_vec(),
        });
    }

    /// Closes `op` as committed and installs the post-op state snapshot
    /// as the new checkpoint.
    pub fn commit(&self, op: OpId, checkpoint: String) {
        let mut inner = self.inner.lock();
        inner.records.push(Record::Commit { op });
        inner.checkpoint = checkpoint;
    }

    /// Closes `op` as aborted (the live distributor already rolled it
    /// back) and installs the post-rollback snapshot as the checkpoint.
    pub fn abort(&self, op: OpId, checkpoint: String) {
        let mut inner = self.inner.lock();
        inner.records.push(Record::Abort { op });
        inner.checkpoint = checkpoint;
    }

    /// Replaces the checkpoint without touching the record stream — used
    /// after mutations that are snapshot-only (e.g. client registration).
    pub fn set_checkpoint(&self, checkpoint: String) {
        self.inner.lock().checkpoint = checkpoint;
    }

    /// The latest committed state snapshot (empty string if none yet).
    pub fn checkpoint(&self) -> String {
        self.inner.lock().checkpoint.clone()
    }

    /// Drops all records whose ops are closed (committed or aborted),
    /// installing `checkpoint` as the new baseline. Recovery calls this
    /// once the journal has been fully resolved.
    pub fn compact(&self, checkpoint: String) {
        let mut inner = self.inner.lock();
        let closed: std::collections::HashSet<OpId> = inner
            .records
            .iter()
            .filter_map(|r| match r {
                Record::Commit { op } | Record::Abort { op } => Some(*op),
                _ => None,
            })
            .collect();
        inner.records.retain(|r| {
            let op = match r {
                Record::Begin { op, .. }
                | Record::Alloc { op, .. }
                | Record::Doom { op, .. }
                | Record::Commit { op }
                | Record::Abort { op } => *op,
            };
            !closed.contains(&op)
        });
        inner.checkpoint = checkpoint;
    }

    /// Folds the record stream into per-op views, in `begin` order.
    pub fn ops(&self) -> Vec<OpView> {
        let inner = self.inner.lock();
        let mut views: Vec<OpView> = Vec::new();
        for r in &inner.records {
            match r {
                Record::Begin {
                    op,
                    kind,
                    client,
                    target,
                } => views.push(OpView {
                    id: *op,
                    kind: *kind,
                    client: client.clone(),
                    target: target.clone(),
                    fresh: Vec::new(),
                    doomed: Vec::new(),
                    status: OpStatus::Dangling,
                }),
                Record::Alloc { op, vids } => {
                    if let Some(v) = views.iter_mut().find(|v| v.id == *op) {
                        v.fresh.extend_from_slice(vids);
                    }
                }
                Record::Doom { op, vids } => {
                    if let Some(v) = views.iter_mut().find(|v| v.id == *op) {
                        v.doomed.extend_from_slice(vids);
                    }
                }
                Record::Commit { op } => {
                    if let Some(v) = views.iter_mut().find(|v| v.id == *op) {
                        v.status = OpStatus::Committed;
                    }
                }
                Record::Abort { op } => {
                    if let Some(v) = views.iter_mut().find(|v| v.id == *op) {
                        v.status = OpStatus::Aborted;
                    }
                }
            }
        }
        views
    }

    /// Serializes the journal to its versioned text form.
    pub fn export(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::new();
        out.push_str(&format!("fragcloud-journal|v{VERSION}\n"));
        out.push_str(&format!("checkpoint|{}\n", esc(&inner.checkpoint)));
        for r in &inner.records {
            match r {
                Record::Begin {
                    op,
                    kind,
                    client,
                    target,
                } => out.push_str(&format!(
                    "begin|{}|{}|{}|{}\n",
                    op.0,
                    kind.tag(),
                    esc(client),
                    esc(target)
                )),
                Record::Alloc { op, vids } => {
                    out.push_str(&format!("alloc|{}|{}\n", op.0, join_vids(vids)))
                }
                Record::Doom { op, vids } => {
                    out.push_str(&format!("doom|{}|{}\n", op.0, join_vids(vids)))
                }
                Record::Commit { op } => out.push_str(&format!("commit|{}\n", op.0)),
                Record::Abort { op } => out.push_str(&format!("abort|{}\n", op.0)),
            }
        }
        out.push_str("end\n");
        out
    }

    /// Parses a journal back from its text form. Reports malformed input
    /// through [`CoreError::CorruptState`], like the snapshot parser.
    pub fn parse(text: &str) -> Result<Journal> {
        let mut lines = text.lines().enumerate();
        let (ln, header) = lines.next().ok_or_else(|| bad(0, "empty journal"))?;
        if header != format!("fragcloud-journal|v{VERSION}") {
            return Err(bad(ln + 1, "bad journal header/version"));
        }
        let (ln, cline) = lines.next().ok_or_else(|| bad(0, "truncated journal"))?;
        let checkpoint = unesc(
            cline
                .strip_prefix("checkpoint|")
                .ok_or_else(|| bad(ln + 1, "expected checkpoint"))?,
        );

        let mut records = Vec::new();
        let mut next_op = 0u64;
        let mut saw_end = false;
        for (ln, line) in lines {
            let line_no = ln + 1;
            if line == "end" {
                saw_end = true;
                break;
            }
            let f: Vec<&str> = line.split('|').collect();
            let op_of = |s: &str| -> Result<OpId> {
                s.parse::<u64>()
                    .map(OpId)
                    .map_err(|_| bad(line_no, "expected op id"))
            };
            match f[0] {
                "begin" => {
                    if f.len() != 5 {
                        return Err(bad(line_no, "expected begin record"));
                    }
                    let op = op_of(f[1])?;
                    next_op = next_op.max(op.0);
                    records.push(Record::Begin {
                        op,
                        kind: OpKind::parse(f[2], line_no)?,
                        client: unesc(f[3]),
                        target: unesc(f[4]),
                    });
                }
                "alloc" | "doom" => {
                    if f.len() != 3 {
                        return Err(bad(line_no, "expected vid-list record"));
                    }
                    let op = op_of(f[1])?;
                    let vids = parse_vids(f[2], line_no)?;
                    records.push(if f[0] == "alloc" {
                        Record::Alloc { op, vids }
                    } else {
                        Record::Doom { op, vids }
                    });
                }
                "commit" | "abort" => {
                    if f.len() != 2 {
                        return Err(bad(line_no, "expected op-close record"));
                    }
                    let op = op_of(f[1])?;
                    records.push(if f[0] == "commit" {
                        Record::Commit { op }
                    } else {
                        Record::Abort { op }
                    });
                }
                other => return Err(bad(line_no, &format!("unexpected record {other:?}"))),
            }
        }
        if !saw_end {
            return Err(bad(0, "missing end marker"));
        }
        Ok(Journal {
            inner: Mutex::new(JournalInner {
                next_op,
                checkpoint,
                records,
            }),
        })
    }
}

fn join_vids(vids: &[VirtualId]) -> String {
    vids.iter()
        .map(|v| v.0.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_vids(s: &str, line_no: usize) -> Result<Vec<VirtualId>> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|x| {
            x.parse::<u64>()
                .map(VirtualId)
                .map_err(|_| bad(line_no, "expected vid"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vids(xs: &[u64]) -> Vec<VirtualId> {
        xs.iter().map(|&x| VirtualId(x)).collect()
    }

    #[test]
    fn export_parse_roundtrip() {
        let j = Journal::new();
        j.set_checkpoint("fake|snapshot\nwith lines\n".to_string());
        let a = j.begin(OpKind::Put, "cli|ent", "fi%le");
        j.log_alloc(a, &vids(&[10, 11]));
        j.log_alloc(a, &vids(&[12]));
        j.commit(a, "ckpt-after-a\n".to_string());
        let b = j.begin(OpKind::Remove, "c", "gone");
        j.log_doom(b, &vids(&[10]));
        // b left dangling: the crash case.

        let text = j.export();
        assert!(text.starts_with("fragcloud-journal|v1\n"));
        assert!(text.ends_with("end\n"));
        let back = Journal::parse(&text).unwrap();
        assert_eq!(back.checkpoint(), "ckpt-after-a\n");
        let ops = back.ops();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].id, a);
        assert_eq!(ops[0].kind, OpKind::Put);
        assert_eq!(ops[0].client, "cli|ent");
        assert_eq!(ops[0].target, "fi%le");
        assert_eq!(ops[0].fresh, vids(&[10, 11, 12]));
        assert_eq!(ops[0].status, OpStatus::Committed);
        assert_eq!(ops[1].status, OpStatus::Dangling);
        assert_eq!(ops[1].doomed, vids(&[10]));

        // A re-parsed journal keeps allocating fresh op ids.
        let c = back.begin(OpKind::Repair, "", "stripes");
        assert!(c.0 > b.0);
    }

    #[test]
    fn abort_marks_op_aborted() {
        let j = Journal::new();
        let a = j.begin(OpKind::Put, "c", "f");
        j.log_alloc(a, &vids(&[7]));
        j.abort(a, "rolled-back".to_string());
        assert_eq!(j.ops()[0].status, OpStatus::Aborted);
        assert_eq!(j.checkpoint(), "rolled-back");
    }

    #[test]
    fn compact_drops_closed_ops_keeps_dangling() {
        let j = Journal::new();
        let a = j.begin(OpKind::Put, "c", "f1");
        j.commit(a, "ck1".to_string());
        let b = j.begin(OpKind::Put, "c", "f2");
        j.log_alloc(b, &vids(&[5]));
        j.compact("ck2".to_string());
        let ops = j.ops();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].id, b);
        assert_eq!(ops[0].status, OpStatus::Dangling);
        assert_eq!(j.checkpoint(), "ck2");
    }

    #[test]
    fn parse_errors_are_corrupt_state() {
        for garbage in [
            "",
            "fragcloud-journal|v999\ncheckpoint|\nend\n",
            "fragcloud-journal|v1\nno-checkpoint\nend\n",
            "fragcloud-journal|v1\ncheckpoint|\nbegin|1|teleport|c|f\nend\n",
            "fragcloud-journal|v1\ncheckpoint|\nalloc|1|notanumber\nend\n",
            "fragcloud-journal|v1\ncheckpoint|\nbegin|1|put|c|f\n",
        ] {
            let err = Journal::parse(garbage).unwrap_err();
            assert!(
                matches!(err, CoreError::CorruptState { .. }),
                "{garbage:?} -> {err:?}"
            );
        }
    }

    #[test]
    fn empty_vid_lists_are_not_recorded() {
        let j = Journal::new();
        let a = j.begin(OpKind::Put, "c", "f");
        j.log_alloc(a, &[]);
        j.log_doom(a, &[]);
        // Only the begin line plus header/checkpoint/end.
        assert_eq!(j.export().lines().count(), 4);
    }
}
