//! Client-side encryption composed with fragmentation (§VII-E).
//!
//! "Concerned clients can also use encryption along with fragmentation.
//! But encryption is not an alternative to fragmentation, rather it is a
//! complement. Clients can also use partial encryption along with
//! fragmentation, that involves partitioning data and encrypting a portion
//! of it."
//!
//! [`EncryptedClient`] wraps a [`CloudDataDistributor`] **on the client
//! side**: bytes are encrypted before they ever reach the distributor (who,
//! being a third party, never sees the key) and decrypted after retrieval.
//! Both full and partial (suffix-fraction) encryption are supported; the
//! per-file mode is remembered in a small client-local table.

use crate::distributor::{CloudDataDistributor, PutOptions, PutReceipt};
use crate::{PrivacyLevel, Result};
use fragcloud_crypto::{decrypt_ranges, encrypt_ranges, ByteRange, ChaCha20};
use std::collections::HashMap;

/// How much of each file is encrypted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EncryptionMode {
    /// Encrypt every byte.
    Full,
    /// Encrypt only the trailing fraction (0, 1] of the file — the
    /// "sensitive portion" of §VII-E's partial-encryption suggestion.
    PartialSuffix(f64),
}

/// A client-side encrypting wrapper around the distributor.
pub struct EncryptedClient<'a> {
    distributor: &'a CloudDataDistributor,
    key: [u8; 32],
    /// filename → (mode, encrypted range) so decryption is self-contained.
    modes: HashMap<String, (EncryptionMode, Option<ByteRange>)>,
}

impl<'a> EncryptedClient<'a> {
    /// Wraps a distributor with a client-held 256-bit key.
    pub fn new(distributor: &'a CloudDataDistributor, key: [u8; 32]) -> Self {
        EncryptedClient {
            distributor,
            key,
            modes: HashMap::new(),
        }
    }

    /// Derives a per-file nonce from the filename (96-bit, FNV-based).
    fn nonce_for(filename: &str) -> [u8; 12] {
        let h1 = fragcloud_dht::hash::fnv1a(filename.as_bytes());
        let h2 = fragcloud_dht::hash::fnv1a(&h1.to_le_bytes());
        let mut nonce = [0u8; 12];
        nonce[..8].copy_from_slice(&h1.to_le_bytes());
        nonce[8..].copy_from_slice(&h2.to_le_bytes()[..4]);
        nonce
    }

    fn cipher_for(&self, filename: &str) -> ChaCha20 {
        ChaCha20::new(&self.key, &Self::nonce_for(filename))
    }

    /// Encrypts (per `mode`) and uploads through the distributor.
    #[allow(clippy::too_many_arguments)]
    pub fn put_file(
        &mut self,
        client: &str,
        password: &str,
        filename: &str,
        data: &[u8],
        pl: PrivacyLevel,
        mode: EncryptionMode,
        opts: PutOptions,
    ) -> Result<PutReceipt> {
        let cipher = self.cipher_for(filename);
        let mut payload = data.to_vec();
        let range = match mode {
            EncryptionMode::Full => {
                let r = ByteRange::new(0, payload.len());
                encrypt_ranges(&cipher, &mut payload, &[r]);
                Some(r)
            }
            EncryptionMode::PartialSuffix(fraction) => {
                assert!(
                    fraction > 0.0 && fraction <= 1.0,
                    "partial fraction must be in (0, 1]"
                );
                let start = payload.len() - (payload.len() as f64 * fraction) as usize;
                let r = ByteRange::new(start, payload.len());
                encrypt_ranges(&cipher, &mut payload, &[r]);
                Some(r)
            }
        };
        let receipt = self
            .distributor
            .put_file_impl(client, password, filename, &payload, pl, opts)?;
        self.modes.insert(filename.to_string(), (mode, range));
        Ok(receipt)
    }

    /// Retrieves and decrypts a file uploaded through this wrapper.
    pub fn get_file(&self, client: &str, password: &str, filename: &str) -> Result<Vec<u8>> {
        let receipt = self.distributor.get_file_impl(client, password, filename)?;
        let mut data = receipt.data;
        if let Some((_, Some(range))) = self.modes.get(filename) {
            if !range.is_empty() {
                let cipher = self.cipher_for(filename);
                decrypt_ranges(&cipher, &mut data, &[*range]);
            }
        }
        Ok(data)
    }

    /// The recorded mode for a file, if uploaded through this wrapper.
    pub fn mode_of(&self, filename: &str) -> Option<EncryptionMode> {
        self.modes.get(filename).map(|(m, _)| *m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ChunkSizeSchedule, DistributorConfig};
    use fragcloud_sim::{CloudProvider, CostLevel, ObjectStore, ProviderProfile};
    use std::sync::Arc;

    fn distributor() -> CloudDataDistributor {
        let fleet: Vec<Arc<CloudProvider>> = (0..6)
            .map(|i| {
                Arc::new(CloudProvider::new(ProviderProfile::new(
                    format!("cp{i}"),
                    PrivacyLevel::High,
                    CostLevel::new(1),
                )))
            })
            .collect();
        let d = CloudDataDistributor::new(
            fleet,
            DistributorConfig {
                chunk_sizes: ChunkSizeSchedule::uniform(64),
                stripe_width: 3,
                ..Default::default()
            },
        );
        d.register_client("c").unwrap();
        d.add_password("c", "pw", PrivacyLevel::High).unwrap();
        d
    }

    fn body(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn full_encryption_roundtrip_and_providers_see_ciphertext() {
        let d = distributor();
        let mut ec = EncryptedClient::new(&d, [7u8; 32]);
        let data = body(500);
        ec.put_file(
            "c",
            "pw",
            "f",
            &data,
            PrivacyLevel::High,
            EncryptionMode::Full,
            PutOptions::default(),
        )
        .unwrap();
        assert_eq!(ec.get_file("c", "pw", "f").unwrap(), data);
        assert_eq!(ec.mode_of("f"), Some(EncryptionMode::Full));
        // No provider-stored object contains any 32-byte window of the
        // plaintext.
        let window = &data[100..132];
        for p in d.providers() {
            for key in p.keys() {
                let stored = p.get(key).unwrap();
                assert!(
                    !stored.windows(32).any(|w| w == window),
                    "plaintext leaked to {}",
                    p.name()
                );
            }
        }
    }

    #[test]
    fn partial_encryption_roundtrip_and_prefix_visible() {
        let d = distributor();
        let mut ec = EncryptedClient::new(&d, [9u8; 32]);
        let data = body(400);
        ec.put_file(
            "c",
            "pw",
            "f",
            &data,
            PrivacyLevel::Moderate,
            EncryptionMode::PartialSuffix(0.25),
            PutOptions::default(),
        )
        .unwrap();
        assert_eq!(ec.get_file("c", "pw", "f").unwrap(), data);
        // The raw distributor view shows the cleartext prefix but not the
        // encrypted suffix.
        let raw = d.session("c", "pw").unwrap().get_file("f").unwrap().data;
        assert_eq!(&raw[..300], &data[..300]);
        assert_ne!(&raw[300..], &data[300..]);
    }

    #[test]
    fn different_files_use_different_nonces() {
        let d = distributor();
        let mut ec = EncryptedClient::new(&d, [1u8; 32]);
        let data = body(128);
        ec.put_file(
            "c",
            "pw",
            "a",
            &data,
            PrivacyLevel::Low,
            EncryptionMode::Full,
            PutOptions::default(),
        )
        .unwrap();
        ec.put_file(
            "c",
            "pw",
            "b",
            &data,
            PrivacyLevel::Low,
            EncryptionMode::Full,
            PutOptions::default(),
        )
        .unwrap();
        let ra = d.session("c", "pw").unwrap().get_file("a").unwrap().data;
        let rb = d.session("c", "pw").unwrap().get_file("b").unwrap().data;
        assert_ne!(ra, rb, "same plaintext must encrypt differently per file");
        assert_eq!(ec.get_file("c", "pw", "a").unwrap(), data);
        assert_eq!(ec.get_file("c", "pw", "b").unwrap(), data);
    }

    #[test]
    fn files_not_uploaded_through_wrapper_pass_through() {
        let d = distributor();
        let ec = EncryptedClient::new(&d, [1u8; 32]);
        let data = body(64);
        d.session("c", "pw")
            .unwrap()
            .put_file("plain", &data, PrivacyLevel::Low, PutOptions::default())
            .unwrap();
        assert_eq!(ec.get_file("c", "pw", "plain").unwrap(), data);
        assert_eq!(ec.mode_of("plain"), None);
    }

    #[test]
    #[should_panic(expected = "partial fraction")]
    fn zero_fraction_panics() {
        let d = distributor();
        let mut ec = EncryptedClient::new(&d, [1u8; 32]);
        let _ = ec.put_file(
            "c",
            "pw",
            "f",
            &body(10),
            PrivacyLevel::Low,
            EncryptionMode::PartialSuffix(0.0),
            PutOptions::default(),
        );
    }
}
