//! The distributor's three tables (paper Tables I–III).
//!
//! - **Cloud Provider Table** — name, PL, CL, chunk count, virtual-id list
//!   (we hold a live handle to the simulated provider and derive the
//!   count/list columns from it);
//! - **Client Table** — client name, ⟨password, PL⟩ pairs, chunk count, and
//!   per-chunk ⟨filename, serial, PL, chunk-table index⟩ quadruples;
//! - **Chunk Table** — virtual id, PL, current-provider index, snapshot-
//!   provider index, misleading-byte positions (plus the stripe bookkeeping
//!   our RAID layer needs).

use crate::{CoreError, Result};
use fragcloud_raid::RaidLevel;
use fragcloud_sim::{CloudProvider, PrivacyLevel, VirtualId};
use std::collections::HashMap;
use std::sync::Arc;

/// Role of a chunk within its stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkRole {
    /// A data chunk, carrying the file's serial `sl`.
    Data {
        /// Serial number within the file.
        serial: u32,
    },
    /// A parity chunk (`index` 0 = P, 1 = Q).
    Parity {
        /// Parity slot within the stripe.
        index: u8,
    },
}

/// Stripe membership pointer stored on each chunk entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeRef {
    /// Index into the stripe list.
    pub stripe_id: usize,
    /// Shard index within the stripe: `0..k` data, `k` = P, `k+1` = Q.
    pub index: usize,
}

/// One row of the Chunk Table (Table III) plus RAID bookkeeping.
#[derive(Debug, Clone)]
pub struct ChunkEntry {
    /// Opaque id under which the chunk is stored at providers.
    pub vid: VirtualId,
    /// The chunk's privacy level (inherited from its file).
    pub pl: PrivacyLevel,
    /// Cloud Provider Table index of the current provider (`CP`).
    pub provider_idx: usize,
    /// Provider index of the snapshot provider (`SP`), if a snapshot exists.
    pub snapshot_provider_idx: Option<usize>,
    /// Virtual id of the snapshot object at the snapshot provider.
    pub snapshot_vid: Option<VirtualId>,
    /// Misleading-byte positions of the snapshotted pre-state (the snapshot
    /// object holds the *stored* form, so restore needs these to strip it).
    pub snapshot_mislead: Vec<usize>,
    /// Ascending positions of misleading bytes in the stored chunk (`M`).
    pub mislead_positions: Vec<usize>,
    /// Stored length (logical + misleading bytes).
    pub stored_len: usize,
    /// Logical (client-visible) length.
    pub logical_len: usize,
    /// Stripe membership, when RAID is active.
    pub stripe: Option<StripeRef>,
    /// Data or parity role.
    pub role: ChunkRole,
    /// Tombstone: the chunk was explicitly removed (§VI `remove chunk`);
    /// its stripe slot contributes zeros to parity from then on.
    pub removed: bool,
    /// Extra copies: "same chunk can be provided to multiple Cloud
    /// Providers depending on the clients' requirement" (§VI). Each replica
    /// lives at a distinct provider under its own virtual id (so providers
    /// cannot correlate copies).
    pub replicas: Vec<(usize, VirtualId)>,
}

/// Geometry and membership of one RAID stripe.
#[derive(Debug, Clone)]
pub struct StripeInfo {
    /// Number of data shards.
    pub k: usize,
    /// Assurance level.
    pub level: RaidLevel,
    /// Chunk-table indices of the members: `k` data chunks then parity.
    pub members: Vec<usize>,
    /// Common padded shard width used for parity math.
    pub shard_width: usize,
    /// Degraded marker: at least one member shard is known lost (write
    /// skipped a dead provider, or a scrub found the object missing) and a
    /// repair pass has not yet re-materialized it.
    pub degraded: bool,
}

/// One file's metadata inside a client entry.
#[derive(Debug, Clone)]
pub struct FileEntry {
    /// Privacy level chosen by the client at upload.
    pub pl: PrivacyLevel,
    /// Chunk-table indices of the data chunks, in serial order.
    pub chunk_indices: Vec<usize>,
    /// Stripes covering this file.
    pub stripe_ids: Vec<usize>,
    /// Original file length.
    pub total_len: usize,
}

/// One row of the Client Table (Table II).
#[derive(Debug, Clone, Default)]
pub struct ClientEntry {
    /// ⟨password, PL⟩ pairs; "associates a group of users with a
    /// ⟨password, PL⟩ pair at client side".
    pub passwords: Vec<(String, PrivacyLevel)>,
    /// Files owned by the client.
    pub files: HashMap<String, FileEntry>,
}

impl ClientEntry {
    /// Total chunk count across files (Table II's `Count`).
    pub fn chunk_count(&self) -> usize {
        self.files.values().map(|f| f.chunk_indices.len()).sum()
    }
}

/// All distributor state: the three tables.
#[derive(Debug, Default)]
pub struct Tables {
    /// Cloud Provider Table: live provider handles; row index = CP index.
    pub providers: Vec<Arc<CloudProvider>>,
    /// Client Table.
    pub clients: HashMap<String, ClientEntry>,
    /// Chunk Table.
    pub chunks: Vec<ChunkEntry>,
    /// Stripe list (not in the paper's tables; implements its RAID call).
    pub stripes: Vec<StripeInfo>,
}

impl Tables {
    /// Creates tables over a provider fleet.
    pub fn new(providers: Vec<Arc<CloudProvider>>) -> Self {
        Tables {
            providers,
            ..Default::default()
        }
    }

    /// Looks up a client or fails.
    pub fn client(&self, name: &str) -> Result<&ClientEntry> {
        self.clients
            .get(name)
            .ok_or_else(|| CoreError::UnknownClient(name.to_string()))
    }

    /// Mutable client lookup.
    pub fn client_mut(&mut self, name: &str) -> Result<&mut ClientEntry> {
        self.clients
            .get_mut(name)
            .ok_or_else(|| CoreError::UnknownClient(name.to_string()))
    }

    /// Looks up a client's file or fails.
    pub fn file(&self, client: &str, filename: &str) -> Result<&FileEntry> {
        self.client(client)?
            .files
            .get(filename)
            .ok_or_else(|| CoreError::UnknownFile {
                client: client.to_string(),
                filename: filename.to_string(),
            })
    }

    /// Chunk-table index for a file's serial number.
    pub fn chunk_index(&self, client: &str, filename: &str, serial: u32) -> Result<usize> {
        let file = self.file(client, filename)?;
        file.chunk_indices
            .get(serial as usize)
            .copied()
            .ok_or_else(|| CoreError::UnknownChunk {
                filename: filename.to_string(),
                serial,
            })
    }

    /// Every virtual id the tables still reference: live chunks' primary
    /// ids and replicas, plus any snapshot ids (snapshots can outlive a
    /// chunk tombstone until `remove_file` sweeps them). The complement —
    /// an id a provider holds that is *not* in this set — is an orphan.
    pub fn referenced_vids(&self) -> std::collections::HashSet<VirtualId> {
        let mut set = std::collections::HashSet::new();
        for e in &self.chunks {
            if !e.removed {
                set.insert(e.vid);
                for &(_, rv) in &e.replicas {
                    set.insert(rv);
                }
            }
            if let Some(sv) = e.snapshot_vid {
                set.insert(sv);
            }
        }
        set
    }

    /// Renders the Cloud Provider Table like the paper's Table I.
    pub fn render_provider_table(&self) -> String {
        let mut out = String::from("Cloud Provider | PL | CL | Count | Virtual id list\n");
        for p in &self.providers {
            let ids = p.virtual_id_list();
            let preview: Vec<String> = ids.iter().take(3).map(|v| v.0.to_string()).collect();
            let ell = if ids.len() > 3 { ", ..." } else { "" };
            out.push_str(&format!(
                "{} | {} | {} | {} | {{{}{}}}\n",
                p.name(),
                p.profile().privacy_level,
                p.profile().cost_level,
                p.chunk_count(),
                preview.join(", "),
                ell
            ));
        }
        out
    }

    /// Renders the Client Table like the paper's Table II.
    pub fn render_client_table(&self) -> String {
        let mut out = String::from("Client | (pass, PL) | Count | (filename, sl, PL, idx)\n");
        let mut names: Vec<&String> = self.clients.keys().collect();
        names.sort();
        for name in names {
            let c = &self.clients[name];
            let passes: Vec<String> = c
                .passwords
                .iter()
                .map(|(p, pl)| format!("({p}, {})", pl.as_u8()))
                .collect();
            let mut quads = Vec::new();
            let mut files: Vec<(&String, &FileEntry)> = c.files.iter().collect();
            files.sort_by_key(|(n, _)| (*n).clone());
            for (fname, fe) in files {
                for (sl, &idx) in fe.chunk_indices.iter().enumerate() {
                    quads.push(format!("({fname}, {sl}, {}, {idx})", fe.pl.as_u8()));
                }
            }
            out.push_str(&format!(
                "{name} | {} | {} | {}\n",
                passes.join(" "),
                c.chunk_count(),
                quads.join(" ")
            ));
        }
        out
    }

    /// Renders the Chunk Table like the paper's Table III.
    pub fn render_chunk_table(&self) -> String {
        let mut out = String::from("virtual id | PL | CP index | SP index | M\n");
        for ch in &self.chunks {
            let sp = ch
                .snapshot_provider_idx
                .map(|i| i.to_string())
                .unwrap_or_else(|| "NA".to_string());
            let m: Vec<String> = ch
                .mislead_positions
                .iter()
                .take(3)
                .map(|p| p.to_string())
                .collect();
            let ell = if ch.mislead_positions.len() > 3 {
                ", ..."
            } else {
                ""
            };
            out.push_str(&format!(
                "{} | {} | {} | {} | {{{}{}}}\n",
                ch.vid.0,
                ch.pl.as_u8(),
                ch.provider_idx,
                sp,
                m.join(", "),
                ell
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragcloud_sim::{CostLevel, ProviderProfile};

    fn fleet() -> Vec<Arc<CloudProvider>> {
        ["Adobe", "AWS", "Google"]
            .iter()
            .map(|n| {
                Arc::new(CloudProvider::new(ProviderProfile::new(
                    *n,
                    PrivacyLevel::High,
                    CostLevel::new(3),
                )))
            })
            .collect()
    }

    #[test]
    fn lookups_fail_cleanly() {
        let t = Tables::new(fleet());
        assert!(matches!(t.client("Bob"), Err(CoreError::UnknownClient(_))));
        let mut t = t;
        t.clients.insert("Bob".into(), ClientEntry::default());
        assert!(t.client("Bob").is_ok());
        assert!(matches!(
            t.file("Bob", "file1"),
            Err(CoreError::UnknownFile { .. })
        ));
        t.client_mut("Bob").unwrap().files.insert(
            "file1".into(),
            FileEntry {
                pl: PrivacyLevel::Low,
                chunk_indices: vec![0],
                stripe_ids: vec![],
                total_len: 10,
            },
        );
        assert!(t.chunk_index("Bob", "file1", 0).is_ok());
        assert!(matches!(
            t.chunk_index("Bob", "file1", 5),
            Err(CoreError::UnknownChunk { serial: 5, .. })
        ));
    }

    #[test]
    fn chunk_count_sums_files() {
        let mut c = ClientEntry::default();
        c.files.insert(
            "a".into(),
            FileEntry {
                pl: PrivacyLevel::Public,
                chunk_indices: vec![0, 1, 2],
                stripe_ids: vec![],
                total_len: 3,
            },
        );
        c.files.insert(
            "b".into(),
            FileEntry {
                pl: PrivacyLevel::Public,
                chunk_indices: vec![3],
                stripe_ids: vec![],
                total_len: 1,
            },
        );
        assert_eq!(c.chunk_count(), 4);
    }

    #[test]
    fn renders_contain_headers_and_rows() {
        let mut t = Tables::new(fleet());
        t.clients.insert(
            "Bob".into(),
            ClientEntry {
                passwords: vec![("x9pr".into(), PrivacyLevel::Low)],
                files: HashMap::new(),
            },
        );
        t.chunks.push(ChunkEntry {
            vid: VirtualId(10986),
            pl: PrivacyLevel::Low,
            provider_idx: 0,
            snapshot_provider_idx: None,
            snapshot_vid: None,
            snapshot_mislead: Vec::new(),
            mislead_positions: vec![],
            stored_len: 8,
            logical_len: 8,
            stripe: None,
            role: ChunkRole::Data { serial: 0 },
            removed: false,
            replicas: Vec::new(),
        });
        let pt = t.render_provider_table();
        assert!(pt.contains("AWS"));
        assert!(pt.contains("PL3"));
        let ct = t.render_client_table();
        assert!(ct.contains("Bob"));
        assert!(ct.contains("x9pr"));
        let kt = t.render_chunk_table();
        assert!(kt.contains("10986"));
        assert!(kt.contains("NA"));
    }
}
