//! Per-provider health tracking and circuit breaking.
//!
//! The paper grades providers by *declared* trust (privacy level) and
//! price; this module grades them by *observed behavior*. Every provider
//! operation the distributor issues feeds an EWMA failure score — weighted
//! so a detected corruption (a Byzantine act) counts far more than a slow
//! response (a gray failure) — and the score drives a classic three-state
//! circuit breaker:
//!
//! ```text
//!            score > trip_threshold
//!   Closed ──────────────────────────▶ Open
//!     ▲                                 │ probe_after_ops sheds
//!     │ score ≤ recover_threshold       ▼
//!     └────────────────────────────  HalfOpen
//!                (probe succeeds)       │ probe fails (score trips again)
//!                                       └──────▶ Open
//! ```
//!
//! - **Closed**: healthy — no effect on placement or read ordering.
//! - **Open**: quarantined — placement sheds it when enough other
//!   providers remain, and read-candidate ordering deprioritizes it (it is
//!   *never* skipped outright for reads: a limping provider still beats a
//!   reconstruction that cannot find `k` shards).
//! - **HalfOpen**: one probe operation is allowed through; a success
//!   recovers the provider, another failure re-opens the breaker.
//!
//! Everything is counted in *operations*, never wall-clock time, so runs
//! stay deterministic under the simulated clock.

use crate::CoreError;
use fragcloud_telemetry::TelemetryHandle;
use parking_lot::Mutex;

/// Circuit-breaker tunables, [`Default`]-enabled with conservative
/// thresholds. Marked `#[non_exhaustive]` with `with_*` builders so later
/// releases can add knobs without breaking construction sites.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct BreakerConfig {
    /// Master switch; `false` makes the tracker a no-op (no shedding, no
    /// penalties) while still recording scores for observability.
    pub enabled: bool,
    /// EWMA smoothing factor in `(0, 1]`: weight of the newest
    /// observation. Higher = faster to trip *and* faster to recover.
    pub ewma_alpha: f64,
    /// Failure score above which a Closed breaker opens.
    pub trip_threshold: f64,
    /// Operations shed while Open before the breaker moves to HalfOpen
    /// and lets one probe through.
    pub probe_after_ops: u64,
    /// Failure score at or below which a non-Closed breaker closes again.
    pub recover_threshold: f64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            enabled: true,
            ewma_alpha: 0.3,
            trip_threshold: 0.5,
            probe_after_ops: 16,
            recover_threshold: 0.1,
        }
    }
}

impl BreakerConfig {
    /// A configuration with breaking disabled entirely.
    pub fn disabled() -> Self {
        BreakerConfig {
            enabled: false,
            ..Default::default()
        }
    }

    /// Returns `self` with the master switch set.
    pub fn with_enabled(mut self, enabled: bool) -> Self {
        self.enabled = enabled;
        self
    }

    /// Returns `self` with the EWMA smoothing factor set.
    pub fn with_ewma_alpha(mut self, alpha: f64) -> Self {
        self.ewma_alpha = alpha;
        self
    }

    /// Returns `self` with the trip threshold set.
    pub fn with_trip_threshold(mut self, threshold: f64) -> Self {
        self.trip_threshold = threshold;
        self
    }

    /// Returns `self` with the Open→HalfOpen probe interval set.
    pub fn with_probe_after_ops(mut self, ops: u64) -> Self {
        self.probe_after_ops = ops;
        self
    }

    /// Returns `self` with the recovery threshold set.
    pub fn with_recover_threshold(mut self, threshold: f64) -> Self {
        self.recover_threshold = threshold;
        self
    }

    /// Check the configuration's invariants; called via
    /// `DistributorConfig::validate`.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0) {
            return Err(CoreError::InvalidConfig {
                detail: "breaker ewma_alpha must be in (0, 1]".into(),
            });
        }
        if !(self.trip_threshold > 0.0 && self.trip_threshold <= 1.0) {
            return Err(CoreError::InvalidConfig {
                detail: "breaker trip_threshold must be in (0, 1]".into(),
            });
        }
        if !(self.recover_threshold >= 0.0 && self.recover_threshold < self.trip_threshold) {
            return Err(CoreError::InvalidConfig {
                detail: "breaker recover_threshold must be in [0, trip_threshold)".into(),
            });
        }
        if self.probe_after_ops == 0 {
            return Err(CoreError::InvalidConfig {
                detail: "breaker probe_after_ops must be >= 1".into(),
            });
        }
        Ok(())
    }
}

/// Position of one provider's circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow normally.
    Closed,
    /// Quarantined: placement sheds this provider, reads deprioritize it.
    Open,
    /// Probing: one operation is allowed through to test recovery.
    HalfOpen,
}

impl BreakerState {
    fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// How a provider operation failed, ordered by how strongly it indicts the
/// provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The provider returned bytes that failed integrity verification —
    /// Byzantine behavior, the strongest possible signal.
    Corruption,
    /// The operation breached its deadline.
    Timeout,
    /// The provider returned an error (offline, flaky, missing object on
    /// a path where it was expected).
    Error,
    /// The operation succeeded but the provider was anomalously slow
    /// (a "limping" gray failure).
    Slow,
}

impl FailureKind {
    fn weight(self) -> f64 {
        match self {
            FailureKind::Corruption => 1.0,
            FailureKind::Timeout => 1.0,
            FailureKind::Error => 0.6,
            FailureKind::Slow => 0.3,
        }
    }
}

#[derive(Debug)]
struct ProviderHealth {
    /// EWMA of failure weights in `[0, 1]`; 0 = flawless.
    score: f64,
    state: BreakerState,
    /// Operations shed since the breaker opened (resets on transitions).
    sheds: u64,
}

impl ProviderHealth {
    fn new() -> Self {
        ProviderHealth {
            score: 0.0,
            state: BreakerState::Closed,
            sheds: 0,
        }
    }
}

/// EWMA health scores and circuit breakers for a provider fleet, indexed
/// by the distributor's provider index.
///
/// Interior-mutable (per-provider mutexes) so the distributor can feed it
/// from concurrent transfer-pool workers without serializing reads.
#[derive(Debug)]
pub struct HealthTracker {
    config: BreakerConfig,
    cells: Vec<Mutex<ProviderHealth>>,
}

impl HealthTracker {
    /// A tracker for `fleet` providers, all starting Closed with score 0.
    pub fn new(fleet: usize, config: BreakerConfig) -> Self {
        HealthTracker {
            config,
            cells: (0..fleet).map(|_| Mutex::new(ProviderHealth::new())).collect(),
        }
    }

    /// The configuration this tracker was built with.
    pub fn config(&self) -> BreakerConfig {
        self.config
    }

    /// Current breaker state for provider `idx` (Closed for indexes the
    /// tracker does not know, so callers never have to range-check).
    pub fn state(&self, idx: usize) -> BreakerState {
        match self.cells.get(idx) {
            Some(p) => p.lock().state,
            None => BreakerState::Closed,
        }
    }

    /// Current EWMA failure score for provider `idx` (0 when unknown).
    pub fn score(&self, idx: usize) -> f64 {
        match self.cells.get(idx) {
            Some(p) => p.lock().score,
            None => 0.0,
        }
    }

    /// Records a successful operation against provider `idx`: the score
    /// decays toward 0, and a non-Closed breaker whose score falls to the
    /// recovery threshold closes (a HalfOpen probe succeeding is the
    /// canonical path here).
    pub fn record_success(&self, idx: usize, tel: &TelemetryHandle) {
        let Some(cell) = self.cells.get(idx) else {
            return;
        };
        let mut p = cell.lock();
        p.score *= 1.0 - self.config.ewma_alpha;
        if p.state != BreakerState::Closed && p.score <= self.config.recover_threshold {
            self.transition(&mut p, BreakerState::Closed, tel);
        }
    }

    /// Records a failed operation against provider `idx`, weighted by
    /// `kind`. A Closed (or probing HalfOpen) breaker whose score crosses
    /// the trip threshold opens.
    pub fn record_failure(&self, idx: usize, kind: FailureKind, tel: &TelemetryHandle) {
        let Some(cell) = self.cells.get(idx) else {
            return;
        };
        let mut p = cell.lock();
        let a = self.config.ewma_alpha;
        p.score = (1.0 - a) * p.score + a * kind.weight();
        if p.state != BreakerState::Open && p.score > self.config.trip_threshold {
            self.transition(&mut p, BreakerState::Open, tel);
        }
    }

    /// Consulted by *placement* before writing to provider `idx`: `true`
    /// means the breaker is Open and this operation should go elsewhere.
    /// Every shed is counted; after
    /// [`probe_after_ops`](BreakerConfig::probe_after_ops) sheds the
    /// breaker moves to HalfOpen and the next operation is let through as
    /// a probe. Disabled trackers never shed.
    pub fn should_shed(&self, idx: usize, tel: &TelemetryHandle) -> bool {
        if !self.config.enabled {
            return false;
        }
        let Some(cell) = self.cells.get(idx) else {
            return false;
        };
        let mut p = cell.lock();
        if p.state != BreakerState::Open {
            return false;
        }
        if p.sheds >= self.config.probe_after_ops {
            self.transition(&mut p, BreakerState::HalfOpen, tel);
            return false;
        }
        p.sheds += 1;
        tel.incr("breaker_shed_total");
        true
    }

    /// Read-ordering penalty for provider `idx`: 0 for Closed, and an
    /// increasingly large value (state rank + score) for HalfOpen and
    /// Open, so sorting candidates by `(penalty, estimated time)` pushes
    /// quarantined providers to the back *without ever removing them* —
    /// reads must still be able to fall through to an Open provider when
    /// it holds the only copy. Always 0 when the breaker is disabled.
    pub fn penalty(&self, idx: usize) -> f64 {
        if !self.config.enabled {
            return 0.0;
        }
        let Some(cell) = self.cells.get(idx) else {
            return 0.0;
        };
        let p = cell.lock();
        match p.state {
            BreakerState::Closed => 0.0,
            BreakerState::HalfOpen => 1.0 + p.score,
            BreakerState::Open => 2.0 + p.score,
        }
    }

    /// Indexes whose breaker is currently Open (quarantined).
    pub fn open_providers(&self) -> Vec<usize> {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, p)| p.lock().state == BreakerState::Open)
            .map(|(i, _)| i)
            .collect()
    }

    fn transition(&self, p: &mut ProviderHealth, to: BreakerState, tel: &TelemetryHandle) {
        p.state = to;
        p.sheds = 0;
        tel.add_labeled("breaker_transitions_total", to.label(), 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(config: BreakerConfig) -> (HealthTracker, TelemetryHandle) {
        (HealthTracker::new(3, config), TelemetryHandle::enabled())
    }

    #[test]
    fn defaults_validate_and_start_closed() {
        BreakerConfig::default().validate().expect("defaults valid");
        let (t, _) = tracker(BreakerConfig::default());
        for idx in 0..3 {
            assert_eq!(t.state(idx), BreakerState::Closed);
            assert_eq!(t.score(idx), 0.0);
            assert_eq!(t.penalty(idx), 0.0);
        }
        // Out-of-range indexes read as healthy rather than panicking.
        assert_eq!(t.state(99), BreakerState::Closed);
        assert_eq!(t.penalty(99), 0.0);
    }

    #[test]
    fn builders_and_validation() {
        let c = BreakerConfig::default()
            .with_ewma_alpha(0.5)
            .with_trip_threshold(0.9)
            .with_probe_after_ops(4)
            .with_recover_threshold(0.2)
            .with_enabled(false);
        assert!(!c.enabled);
        assert_eq!(c.probe_after_ops, 4);
        c.validate().expect("tuned config valid");
        assert!(!BreakerConfig::disabled().enabled);

        for bad in [
            BreakerConfig::default().with_ewma_alpha(0.0),
            BreakerConfig::default().with_ewma_alpha(1.5),
            BreakerConfig::default().with_trip_threshold(0.0),
            BreakerConfig::default().with_recover_threshold(0.5),
            BreakerConfig::default().with_probe_after_ops(0),
        ] {
            assert!(
                matches!(bad.validate(), Err(CoreError::InvalidConfig { .. })),
                "{bad:?} should fail validation"
            );
        }
    }

    #[test]
    fn corruption_trips_faster_than_slowness() {
        let (t, tel) = tracker(BreakerConfig::default());
        // Two corruptions: 0.3, then 0.51 > 0.5 → Open.
        t.record_failure(0, FailureKind::Corruption, &tel);
        assert_eq!(t.state(0), BreakerState::Closed);
        t.record_failure(0, FailureKind::Corruption, &tel);
        assert_eq!(t.state(0), BreakerState::Open);
        // Slow responses alone converge to 0.3 < 0.5: never trips.
        for _ in 0..50 {
            t.record_failure(1, FailureKind::Slow, &tel);
        }
        assert_eq!(t.state(1), BreakerState::Closed);
        assert!(t.score(1) < BreakerConfig::default().trip_threshold);
        assert_eq!(
            tel.registry().unwrap().counter_value("breaker_transitions_total", "open"),
            1
        );
    }

    #[test]
    fn shed_then_probe_then_recover() {
        let cfg = BreakerConfig::default().with_probe_after_ops(3);
        let (t, tel) = tracker(cfg);
        t.record_failure(0, FailureKind::Corruption, &tel);
        t.record_failure(0, FailureKind::Corruption, &tel);
        assert_eq!(t.state(0), BreakerState::Open);
        assert!(t.penalty(0) > 2.0);

        // Three sheds while Open, then the breaker half-opens and lets a
        // probe through.
        for _ in 0..3 {
            assert!(t.should_shed(0, &tel));
        }
        assert!(!t.should_shed(0, &tel));
        assert_eq!(t.state(0), BreakerState::HalfOpen);
        assert!(t.penalty(0) > 1.0 && t.penalty(0) < 2.0);
        assert!(!t.should_shed(0, &tel), "HalfOpen does not shed");

        // Successful probes decay the score below recover_threshold →
        // Closed.
        while t.state(0) != BreakerState::Closed {
            t.record_success(0, &tel);
        }
        assert_eq!(t.penalty(0), 0.0);
        let reg = tel.registry().unwrap();
        assert_eq!(reg.counter_total("breaker_shed_total"), 3);
        assert_eq!(reg.counter_value("breaker_transitions_total", "half_open"), 1);
        assert_eq!(reg.counter_value("breaker_transitions_total", "closed"), 1);
    }

    #[test]
    fn failed_probe_reopens() {
        let (t, tel) = tracker(BreakerConfig::default().with_probe_after_ops(1));
        t.record_failure(2, FailureKind::Corruption, &tel);
        t.record_failure(2, FailureKind::Corruption, &tel);
        assert!(t.should_shed(2, &tel));
        assert!(!t.should_shed(2, &tel));
        assert_eq!(t.state(2), BreakerState::HalfOpen);
        // The probe comes back corrupt: straight back to Open.
        t.record_failure(2, FailureKind::Corruption, &tel);
        assert_eq!(t.state(2), BreakerState::Open);
        assert_eq!(t.open_providers(), vec![2]);
    }

    #[test]
    fn disabled_tracker_never_sheds_or_penalizes() {
        let (t, tel) = tracker(BreakerConfig::disabled());
        for _ in 0..10 {
            t.record_failure(0, FailureKind::Corruption, &tel);
        }
        // Scores and states still track (observability)…
        assert_eq!(t.state(0), BreakerState::Open);
        // …but nothing is shed and ordering is untouched.
        assert!(!t.should_shed(0, &tel));
        assert_eq!(t.penalty(0), 0.0);
        assert_eq!(tel.registry().unwrap().counter_total("breaker_shed_total"), 0);
    }

    #[test]
    fn success_decays_score() {
        let (t, tel) = tracker(BreakerConfig::default());
        t.record_failure(1, FailureKind::Error, &tel);
        let before = t.score(1);
        t.record_success(1, &tel);
        assert!(t.score(1) < before);
    }
}
