//! Persistent bounded transfer pool.
//!
//! A [`TransferPool`] owns a fixed set of worker threads fed from one MPMC
//! channel (the vendored `crossbeam::channel`). The distributor creates it
//! lazily on first use and shares it across every
//! [`Session`](crate::Session): parallel gets and pipelined-put encoding
//! submit closures here instead of spawning fresh threads per call, which
//! is what keeps the hot I/O paths free of thread-creation cost.
//!
//! Panics inside a task are caught per task, so one poisoned job can never
//! wedge the queue or kill a worker. Dropping the pool closes the channel
//! and joins all workers.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{self, Sender};
use fragcloud_telemetry::{clock, TelemetryHandle};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size worker pool consuming boxed closures from a shared queue.
pub struct TransferPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    depth: Arc<AtomicUsize>,
    panicked: Arc<AtomicUsize>,
}

impl TransferPool {
    /// Spawns `workers` threads (clamped to at least one) draining one
    /// shared queue.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = channel::unbounded::<Job>();
        let depth = Arc::new(AtomicUsize::new(0));
        let panicked = Arc::new(AtomicUsize::new(0));
        let handles = (0..workers)
            .map(|i| {
                let rx = rx.clone();
                let depth = Arc::clone(&depth);
                let panicked = Arc::clone(&panicked);
                std::thread::Builder::new()
                    .name(format!("fragcloud-xfer-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            depth.fetch_sub(1, Ordering::Relaxed);
                            // A panicking task must not take the worker
                            // down with it: swallow the payload, count it,
                            // keep draining.
                            if catch_unwind(AssertUnwindSafe(job)).is_err() {
                                panicked.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    })
                    // fraglint: allow(no-unwrap-in-lib) — a failed worker
                    // spawn at pool construction leaves nothing to fall
                    // back to, and `OnceLock::get_or_init` (the shared-pool
                    // path) cannot thread a Result out.
                    .expect("spawn transfer-pool worker")
            })
            .collect();
        TransferPool {
            tx: Some(tx),
            workers: handles,
            depth,
            panicked,
        }
    }

    /// Enqueues a task. Tasks start in submission order but complete in
    /// any order; callers needing results thread their own channel through
    /// the closure.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.depth.fetch_add(1, Ordering::Relaxed);
        let sent = self
            .tx
            .as_ref()
            // fraglint: allow(no-unwrap-in-lib) — `tx` is Some from
            // construction until Drop takes it; no caller can reach
            // `submit` on a dropped pool.
            .expect("pool alive until drop")
            .send(Box::new(job))
            .is_ok();
        assert!(sent, "workers outlive the sender");
    }

    /// [`submit`](Self::submit) plus telemetry: bumps `pool_tasks_total`,
    /// records the post-submit queue depth into the
    /// `pool_queue_depth_count` histogram (a gauge-style sample of
    /// backlog at submission time), and observes how long the task sat
    /// queued before a worker picked it up into `pool_queue_dwell_us`.
    pub fn submit_observed(&self, tel: &TelemetryHandle, job: impl FnOnce() + Send + 'static) {
        let enqueued = clock::monotonic_now();
        let dwell_tel = tel.clone();
        self.submit(move || {
            dwell_tel.observe_micros("pool_queue_dwell_us", enqueued.elapsed());
            job();
        });
        tel.incr("pool_tasks_total");
        tel.observe("pool_queue_depth_count", self.queue_depth() as u64);
    }

    /// Tasks submitted but not yet started (snapshot; racy by nature).
    pub fn queue_depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Tasks that terminated by panicking (swallowed, workers kept).
    pub fn panicked_tasks(&self) -> usize {
        self.panicked.load(Ordering::Relaxed)
    }
}

impl Drop for TransferPool {
    fn drop(&mut self) {
        // Disconnect the queue so workers drain what's left and exit.
        drop(self.tx.take());
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for TransferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransferPool")
            .field("workers", &self.workers.len())
            .field("queue_depth", &self.queue_depth())
            .field("panicked_tasks", &self.panicked_tasks())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn tasks_run_and_drop_joins() {
        let pool = TransferPool::new(3);
        assert_eq!(pool.worker_count(), 3);
        let (tx, rx) = mpsc::channel();
        for i in 0..20u32 {
            let tx = tx.clone();
            pool.submit(move || tx.send(i).expect("receiver alive"));
        }
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
        drop(pool); // joins without hanging
    }

    #[test]
    fn zero_workers_clamped_to_one() {
        let pool = TransferPool::new(0);
        assert_eq!(pool.worker_count(), 1);
        let (tx, rx) = mpsc::channel();
        pool.submit(move || tx.send(7u8).expect("receiver alive"));
        assert_eq!(rx.recv().expect("task ran"), 7);
    }

    #[test]
    fn panicking_task_does_not_wedge_the_queue() {
        let pool = TransferPool::new(1); // single worker: a dead worker would hang us
        let (tx, rx) = mpsc::channel();
        pool.submit(|| panic!("task goes boom"));
        let tx2 = tx.clone();
        pool.submit(move || tx2.send("after panic").expect("receiver alive"));
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(10))
                .expect("queue survived the panic"),
            "after panic"
        );
        assert_eq!(pool.panicked_tasks(), 1);
        // And the worker still accepts more work.
        pool.submit(move || tx.send("still alive").expect("receiver alive"));
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(10))
                .expect("worker alive"),
            "still alive"
        );
    }

    #[test]
    fn observed_submit_records_counters() {
        let tel = TelemetryHandle::enabled();
        let pool = TransferPool::new(2);
        let (tx, rx) = mpsc::channel();
        for _ in 0..5 {
            let tx = tx.clone();
            pool.submit_observed(&tel, move || tx.send(()).expect("receiver alive"));
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 5);
        let reg = tel.registry().expect("enabled");
        assert_eq!(reg.counter_total("pool_tasks_total"), 5);
        assert_eq!(reg.histogram("pool_queue_depth_count", "").count(), 5);
        // Every task that ran also reported how long it sat queued.
        assert_eq!(reg.histogram("pool_queue_dwell_us", "").count(), 5);
    }
}
