//! Zero-dependency 64-bit content checksum (XXH64).
//!
//! The shard-integrity layer (see `fragcloud_core::integrity`) stamps a
//! 64-bit checksum into every stored object's framing at `put` time and
//! verifies it on every read, turning silent provider corruption —
//! bit-rot, truncation, wrong-object swaps — into a typed erasure the
//! parity machinery can heal. That detector must be:
//!
//! - **fast** (it sits on every shard read and write),
//! - **seedable** (seeding by virtual id makes a swapped object fail
//!   verification even when its bytes are internally consistent), and
//! - **dependency-free** (the workspace vendors no hashing crate).
//!
//! XXH64 fits all three. This is a from-scratch implementation of the
//! public XXH64 algorithm, checked against its published test vectors.
//! It is a *corruption* detector, not a MAC: an adversary who can write
//! arbitrary bytes can forge a matching checksum. The threat model here
//! is gray failure, not malice against the framing itself.

const PRIME64_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME64_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME64_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME64_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME64_5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME64_2))
        .rotate_left(31)
        .wrapping_mul(PRIME64_1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val))
        .wrapping_mul(PRIME64_1)
        .wrapping_add(PRIME64_4)
}

#[inline]
fn read_u64(data: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&data[at..at + 8]);
    u64::from_le_bytes(b)
}

#[inline]
fn read_u32(data: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&data[at..at + 4]);
    u32::from_le_bytes(b)
}

/// XXH64 of `data` under `seed`.
///
/// Deterministic across platforms (little-endian lane reads regardless of
/// host endianness) and sensitive to every input bit, input length, and
/// the seed.
pub fn checksum64(data: &[u8], seed: u64) -> u64 {
    let len = data.len();
    let mut i = 0usize;
    let mut h: u64;
    if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
        let mut v2 = seed.wrapping_add(PRIME64_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME64_1);
        while i + 32 <= len {
            v1 = round(v1, read_u64(data, i));
            v2 = round(v2, read_u64(data, i + 8));
            v3 = round(v3, read_u64(data, i + 16));
            v4 = round(v4, read_u64(data, i + 24));
            i += 32;
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(PRIME64_5);
    }
    h = h.wrapping_add(len as u64);
    while i + 8 <= len {
        h ^= round(0, read_u64(data, i));
        h = h
            .rotate_left(27)
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4);
        i += 8;
    }
    if i + 4 <= len {
        h ^= u64::from(read_u32(data, i)).wrapping_mul(PRIME64_1);
        h = h
            .rotate_left(23)
            .wrapping_mul(PRIME64_2)
            .wrapping_add(PRIME64_3);
        i += 4;
    }
    while i < len {
        h ^= u64::from(data[i]).wrapping_mul(PRIME64_5);
        h = h.rotate_left(11).wrapping_mul(PRIME64_1);
        i += 1;
    }
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^= h >> 32;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_vectors_seed_zero() {
        // Reference vectors from the canonical xxHash distribution.
        assert_eq!(checksum64(b"", 0), 0xEF46_DB37_51D8_E999);
        assert_eq!(checksum64(b"a", 0), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(checksum64(b"abc", 0), 0x44BC_2CF5_AD77_0999);
    }

    #[test]
    fn every_input_bit_matters() {
        // Cover all lane paths: sub-4, sub-8, sub-32, and multi-block
        // lengths, including non-multiples that exercise every tail arm.
        for len in [1usize, 3, 4, 7, 8, 13, 31, 32, 33, 64, 100, 257] {
            let base: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let h0 = checksum64(&base, 7);
            assert_eq!(h0, checksum64(&base, 7), "len={len}: deterministic");
            for byte in 0..len {
                for bit in 0..8 {
                    let mut flipped = base.clone();
                    flipped[byte] ^= 1 << bit;
                    assert_ne!(
                        checksum64(&flipped, 7),
                        h0,
                        "len={len} byte={byte} bit={bit}: flip must change the sum"
                    );
                }
            }
        }
    }

    #[test]
    fn length_and_seed_matter() {
        let data = [0u8; 64];
        // Truncation detection: a zero-filled prefix still changes the sum.
        assert_ne!(checksum64(&data[..63], 0), checksum64(&data, 0));
        assert_ne!(checksum64(&data[..32], 0), checksum64(&data, 0));
        // Seed separation: the same bytes under different seeds disagree
        // (this is what catches wrong-object swaps, where the seed is the
        // virtual id).
        assert_ne!(checksum64(&data, 1), checksum64(&data, 2));
        assert_ne!(checksum64(b"abc", 0), checksum64(b"abc", 0xDEAD_BEEF));
    }
}
