//! Partial encryption: encrypt selected byte ranges of a record.
//!
//! §VII-E: "Clients can also use partial encryption along with
//! fragmentation, that involves partitioning data and encrypting a portion
//! of it." A [`ByteRange`] list marks the sensitive regions; everything
//! outside remains plaintext (and therefore cheap to query).

use crate::chacha20::ChaCha20;

/// A half-open byte range `[start, end)` within a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteRange {
    /// Inclusive start offset.
    pub start: usize,
    /// Exclusive end offset.
    pub end: usize,
}

impl ByteRange {
    /// Creates a range; `start ≤ end` is required.
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start <= end, "ByteRange: start {start} > end {end}");
        ByteRange { start, end }
    }

    /// Length of the range.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Encrypts the listed ranges of `data` in place.
///
/// Each range gets an independent keystream segment: range `i` starts at
/// block counter `1 + i·2³²⁄₂` — in practice we simply give each range its
/// own counter base spaced far apart (2²⁴ blocks ≈ 1 GiB per range), so
/// ranges never share keystream even if the caller reorders them.
///
/// Ranges must be within bounds and non-overlapping (checked).
///
/// # Panics
/// Panics on out-of-bounds or overlapping ranges.
pub fn encrypt_ranges(cipher: &ChaCha20, data: &mut [u8], ranges: &[ByteRange]) {
    validate(data.len(), ranges);
    for (i, r) in ranges.iter().enumerate() {
        let counter = range_counter(i);
        cipher.apply_keystream(&mut data[r.start..r.end], counter);
    }
}

/// Decrypts ranges previously encrypted with [`encrypt_ranges`] (same
/// cipher, same range order).
pub fn decrypt_ranges(cipher: &ChaCha20, data: &mut [u8], ranges: &[ByteRange]) {
    // XOR keystream is an involution.
    encrypt_ranges(cipher, data, ranges);
}

/// Keystream counter base for range `i`: 2²⁴ blocks (1 GiB) apart.
fn range_counter(i: usize) -> u32 {
    let base = 1u64 + (i as u64) * (1 << 24);
    u32::try_from(base).expect("too many ranges: counter space exhausted")
}

fn validate(len: usize, ranges: &[ByteRange]) {
    let mut sorted: Vec<ByteRange> = ranges.to_vec();
    sorted.sort_by_key(|r| r.start);
    let mut prev_end = 0usize;
    for r in &sorted {
        assert!(r.end <= len, "range {r:?} out of bounds (len {len})");
        assert!(
            r.start >= prev_end || r.is_empty(),
            "overlapping ranges at {r:?}"
        );
        if !r.is_empty() {
            prev_end = r.end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cipher() -> ChaCha20 {
        ChaCha20::new(&[5u8; 32], &[6u8; 12])
    }

    #[test]
    fn roundtrip_single_range() {
        let c = cipher();
        let orig: Vec<u8> = (0..100).map(|i| i as u8).collect();
        let mut data = orig.clone();
        let ranges = [ByteRange::new(10, 50)];
        encrypt_ranges(&c, &mut data, &ranges);
        assert_eq!(&data[..10], &orig[..10], "prefix untouched");
        assert_eq!(&data[50..], &orig[50..], "suffix untouched");
        assert_ne!(&data[10..50], &orig[10..50], "range encrypted");
        decrypt_ranges(&c, &mut data, &ranges);
        assert_eq!(data, orig);
    }

    #[test]
    fn roundtrip_multiple_ranges() {
        let c = cipher();
        let orig: Vec<u8> = (0..=255).collect();
        let mut data = orig.clone();
        let ranges = [
            ByteRange::new(0, 16),
            ByteRange::new(100, 132),
            ByteRange::new(200, 256),
        ];
        encrypt_ranges(&c, &mut data, &ranges);
        assert_eq!(&data[16..100], &orig[16..100]);
        assert_eq!(&data[132..200], &orig[132..200]);
        decrypt_ranges(&c, &mut data, &ranges);
        assert_eq!(data, orig);
    }

    #[test]
    fn ranges_use_independent_keystreams() {
        // Two identical plaintext ranges must encrypt to different bytes.
        let c = cipher();
        let mut data = vec![0xAAu8; 128];
        let ranges = [ByteRange::new(0, 64), ByteRange::new(64, 128)];
        encrypt_ranges(&c, &mut data, &ranges);
        assert_ne!(&data[..64], &data[64..]);
    }

    #[test]
    fn empty_range_is_noop() {
        let c = cipher();
        let orig = vec![1u8, 2, 3];
        let mut data = orig.clone();
        encrypt_ranges(&c, &mut data, &[ByteRange::new(1, 1)]);
        assert_eq!(data, orig);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let c = cipher();
        let mut data = vec![0u8; 10];
        encrypt_ranges(&c, &mut data, &[ByteRange::new(5, 11)]);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlap_panics() {
        let c = cipher();
        let mut data = vec![0u8; 20];
        encrypt_ranges(
            &c,
            &mut data,
            &[ByteRange::new(0, 10), ByteRange::new(5, 15)],
        );
    }

    #[test]
    #[should_panic(expected = "start 5 > end 2")]
    fn inverted_range_panics() {
        ByteRange::new(5, 2);
    }

    #[test]
    fn range_len() {
        let r = ByteRange::new(3, 8);
        assert_eq!(r.len(), 5);
        assert!(!r.is_empty());
        assert!(ByteRange::new(4, 4).is_empty());
    }
}
