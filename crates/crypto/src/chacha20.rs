//! ChaCha20 stream cipher (RFC 8439), implemented from scratch.

/// ChaCha20 cipher instance: 256-bit key + 96-bit nonce, 32-bit block
/// counter (RFC 8439 layout).
#[derive(Clone)]
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
}

/// The ChaCha constant "expand 32-byte k" as four little-endian words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha20 {
    /// Creates a cipher from a 32-byte key and 12-byte nonce.
    pub fn new(key: &[u8; 32], nonce: &[u8; 12]) -> Self {
        let mut k = [0u32; 8];
        for (i, w) in k.iter_mut().enumerate() {
            *w = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().unwrap());
        }
        let mut n = [0u32; 3];
        for (i, w) in n.iter_mut().enumerate() {
            *w = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().unwrap());
        }
        ChaCha20 { key: k, nonce: n }
    }

    /// Computes the 64-byte keystream block for the given counter.
    pub fn block(&self, counter: u32) -> [u8; 64] {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter;
        state[13..16].copy_from_slice(&self.nonce);

        let mut working = state;
        for _ in 0..10 {
            // column rounds
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // diagonal rounds
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = working[i].wrapping_add(state[i]);
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// XORs the keystream (starting at block `initial_counter`) into `data`
    /// in place. Apply twice to decrypt.
    pub fn apply_keystream(&self, data: &mut [u8], initial_counter: u32) {
        let mut counter = initial_counter;
        for chunk in data.chunks_mut(64) {
            let ks = self.block(counter);
            for (d, k) in chunk.iter_mut().zip(ks.iter()) {
                *d ^= k;
            }
            counter = counter
                .checked_add(1)
                .expect("chacha20: block counter overflow");
        }
    }

    /// Convenience: returns an encrypted copy (counter starts at 1, the RFC
    /// 8439 AEAD convention that reserves block 0).
    pub fn encrypt(&self, plaintext: &[u8]) -> Vec<u8> {
        let mut out = plaintext.to_vec();
        self.apply_keystream(&mut out, 1);
        out
    }

    /// Convenience: returns a decrypted copy (inverse of [`Self::encrypt`]).
    pub fn decrypt(&self, ciphertext: &[u8]) -> Vec<u8> {
        self.encrypt(ciphertext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 key/nonce.
    fn rfc_key() -> [u8; 32] {
        let mut k = [0u8; 32];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    #[test]
    fn rfc8439_block_test_vector() {
        // §2.3.2: counter = 1, nonce = 00:00:00:09:00:00:00:4a:00:00:00:00
        let nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let cipher = ChaCha20::new(&rfc_key(), &nonce);
        let block = cipher.block(1);
        let expected: [u8; 64] = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0, 0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a,
            0xc3, 0xd4, 0x6c, 0x4e, 0xd2, 0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2,
            0xd7, 0x05, 0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e, 0xb9,
            0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e,
        ];
        assert_eq!(block, expected);
    }

    #[test]
    fn rfc8439_encryption_test_vector() {
        // §2.4.2: the "Ladies and Gentlemen" plaintext.
        let nonce = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let cipher = ChaCha20::new(&rfc_key(), &nonce);
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let ct = cipher.encrypt(plaintext);
        let expected_first16: [u8; 16] = [
            0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80, 0x41, 0xba, 0x07, 0x28, 0xdd, 0x0d,
            0x69, 0x81,
        ];
        assert_eq!(&ct[..16], &expected_first16);
        let expected_last8: [u8; 8] = [0x8e, 0xed, 0xf2, 0x78, 0x5e, 0x42, 0x87, 0x4d];
        assert_eq!(&ct[ct.len() - 8..], &expected_last8);
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let cipher = ChaCha20::new(&[7u8; 32], &[3u8; 12]);
        for n in [0usize, 1, 63, 64, 65, 1000] {
            let pt: Vec<u8> = (0..n).map(|i| (i * 13) as u8).collect();
            let ct = cipher.encrypt(&pt);
            assert_eq!(cipher.decrypt(&ct), pt, "n={n}");
            if n > 0 {
                assert_ne!(ct, pt, "ciphertext must differ (n={n})");
            }
        }
    }

    #[test]
    fn different_nonces_give_different_streams() {
        let key = [42u8; 32];
        let c1 = ChaCha20::new(&key, &[0u8; 12]);
        let c2 = ChaCha20::new(&key, &[1u8; 12]);
        assert_ne!(c1.block(1), c2.block(1));
    }

    #[test]
    fn keystream_counter_offsets_compose() {
        // Encrypting in two halves with the right counters equals one pass.
        let cipher = ChaCha20::new(&[9u8; 32], &[1u8; 12]);
        let pt: Vec<u8> = (0..200).map(|i| i as u8).collect();
        let mut whole = pt.clone();
        cipher.apply_keystream(&mut whole, 1);
        let mut a = pt[..128].to_vec();
        let mut b = pt[128..].to_vec();
        cipher.apply_keystream(&mut a, 1);
        cipher.apply_keystream(&mut b, 3); // 128 bytes = 2 blocks
        a.extend_from_slice(&b);
        assert_eq!(a, whole);
    }

    #[test]
    #[should_panic(expected = "counter overflow")]
    fn counter_overflow_panics() {
        let cipher = ChaCha20::new(&[0u8; 32], &[0u8; 12]);
        let mut data = vec![0u8; 130];
        cipher.apply_keystream(&mut data, u32::MAX);
    }
}
