#![warn(missing_docs)]

//! Stream-cipher substrate for the paper's §VII-E comparison.
//!
//! The paper argues that *fragmentation* preserves privacy at a much lower
//! cost than *encryption* ("the client has to fetch the whole database, then
//! decrypt it and run queries"), and that the two can also be combined
//! ("partial encryption along with fragmentation"). To benchmark that
//! comparison honestly we need a real cipher, implemented from scratch:
//!
//! - [`chacha20`] — the ChaCha20 stream cipher (RFC 8439 block function and
//!   counter-mode keystream), verified against the RFC test vectors;
//! - [`partial`] — partial encryption: encrypt only a sensitive prefix
//!   (or byte ranges) of each record, as §VII-E suggests;
//! - [`checksum`] — a zero-dep seedable 64-bit content checksum (XXH64),
//!   the detector behind the distributor's shard-integrity framing.
//!
//! This crate is an experiment substrate, **not** a hardened security
//! product — there is no authentication (no Poly1305), no key management,
//! and no constant-time guarantee beyond what the straightforward code
//! provides.

pub mod chacha20;
pub mod checksum;
pub mod partial;

pub use chacha20::ChaCha20;
pub use checksum::checksum64;
pub use partial::{decrypt_ranges, encrypt_ranges, ByteRange};
