//! Property tests for the cipher layer.

use fragcloud_crypto::{decrypt_ranges, encrypt_ranges, ByteRange, ChaCha20};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Encrypt/decrypt is the identity for any key, nonce and payload.
    #[test]
    fn roundtrip(key: [u8; 32], nonce: [u8; 12], pt in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let cipher = ChaCha20::new(&key, &nonce);
        let ct = cipher.encrypt(&pt);
        prop_assert_eq!(cipher.decrypt(&ct), pt.clone());
        if !pt.is_empty() {
            prop_assert_ne!(ct, pt, "ciphertext must differ from plaintext");
        }
    }

    /// Keystream is position-additive: encrypting block-aligned pieces with
    /// offset counters equals one pass.
    #[test]
    fn keystream_composition(key: [u8; 32], nonce: [u8; 12], pt in proptest::collection::vec(any::<u8>(), 128..1024), cut_pick: usize) {
        let cipher = ChaCha20::new(&key, &nonce);
        let blocks = pt.len() / 64;
        let cut = 64 * (1 + cut_pick % blocks.max(1)).min(blocks);
        let mut whole = pt.clone();
        cipher.apply_keystream(&mut whole, 1);
        let mut a = pt[..cut].to_vec();
        let mut b = pt[cut..].to_vec();
        cipher.apply_keystream(&mut a, 1);
        cipher.apply_keystream(&mut b, 1 + (cut / 64) as u32);
        a.extend_from_slice(&b);
        prop_assert_eq!(a, whole);
    }

    /// Partial-range encryption touches exactly the listed ranges and
    /// roundtrips.
    #[test]
    fn ranges_touch_only_their_bytes(
        key: [u8; 32],
        nonce: [u8; 12],
        pt in proptest::collection::vec(any::<u8>(), 32..512),
        a_pick: usize,
        b_pick: usize,
    ) {
        let cipher = ChaCha20::new(&key, &nonce);
        let n = pt.len();
        let mut cuts = [a_pick % (n + 1), b_pick % (n + 1)];
        cuts.sort_unstable();
        let range = ByteRange::new(cuts[0], cuts[1]);
        let mut data = pt.clone();
        encrypt_ranges(&cipher, &mut data, &[range]);
        // Outside bytes untouched.
        prop_assert_eq!(&data[..range.start], &pt[..range.start]);
        prop_assert_eq!(&data[range.end..], &pt[range.end..]);
        decrypt_ranges(&cipher, &mut data, &[range]);
        prop_assert_eq!(data, pt);
    }

    /// Different nonces yield unrelated ciphertexts for the same plaintext.
    #[test]
    fn nonce_separation(key: [u8; 32], n1: [u8; 12], n2: [u8; 12], pt in proptest::collection::vec(any::<u8>(), 64..256)) {
        prop_assume!(n1 != n2);
        let c1 = ChaCha20::new(&key, &n1).encrypt(&pt);
        let c2 = ChaCha20::new(&key, &n2).encrypt(&pt);
        prop_assert_ne!(c1, c2);
    }
}
