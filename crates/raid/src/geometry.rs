//! Shared stripe-geometry validation.
//!
//! Historically `raid5`, `raid6` and `stripe` each re-validated shard
//! counts with slightly different wording and limits; `rs` would have made
//! it a fourth copy. Every codec now funnels through [`check_geometry`],
//! so a geometry accepted at codec construction is accepted by every
//! encode/reconstruct entry point with the same error text.

use crate::{RaidError, Result};

/// Largest `data + parity` total any code in this crate supports: the
/// Cauchy construction needs `k + m` distinct evaluation points in
/// GF(2⁸).
pub const MAX_TOTAL_SHARDS: usize = 256;

/// Largest data-shard count for codes whose coefficients are the distinct
/// powers `g⁰..g^{k−1}` (RAID-6's Q row, RS with m = 2).
pub const MAX_POWER_DATA_SHARDS: usize = 255;

/// Validates a `(data, parity)` stripe geometry.
///
/// - `data` must be ≥ 1 — `data = 1` is valid (mirroring, with parity);
/// - `parity = 0` is valid (plain striping, no fault tolerance);
/// - `parity = 1` places no further limit (XOR parity is field-free);
/// - `parity = 2` requires `data ≤ 255` (distinct `gⁱ` coefficients);
/// - `parity ≥ 3` requires `data + parity ≤ 256` (distinct Cauchy points).
pub fn check_geometry(data: usize, parity: usize) -> Result<()> {
    if data == 0 {
        return Err(RaidError::BadGeometry {
            detail: "stripe needs at least one data shard".into(),
        });
    }
    if parity == 2 && data > MAX_POWER_DATA_SHARDS {
        return Err(RaidError::BadGeometry {
            detail: format!(
                "dual parity supports at most {MAX_POWER_DATA_SHARDS} data shards"
            ),
        });
    }
    if parity >= 3 && data + parity > MAX_TOTAL_SHARDS {
        return Err(RaidError::BadGeometry {
            detail: format!(
                "RS({data},{parity}) exceeds {MAX_TOTAL_SHARDS} total shards"
            ),
        });
    }
    Ok(())
}

/// Validates that every shard fits within the stripe `width` (shards may
/// be shorter — they are logically zero-padded).
pub(crate) fn check_within_width(shards: &[&[u8]], width: usize) -> Result<()> {
    if shards.iter().any(|s| s.len() > width) {
        return Err(RaidError::BadGeometry {
            detail: format!("shard longer than stripe width {width}"),
        });
    }
    Ok(())
}

/// Validates that all shards share one length, returning it.
pub(crate) fn check_equal_lengths(shards: &[&[u8]]) -> Result<usize> {
    let len = shards.first().map_or(0, |s| s.len());
    if shards.iter().any(|s| s.len() != len) {
        return Err(RaidError::ShardLengthMismatch);
    }
    Ok(len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k1_is_valid_for_every_parity_count() {
        // Regression: k = 1 used to be accepted by raid5 but the stripe
        // facade's wording differed; now one helper answers for all.
        for m in 0..=8 {
            assert!(check_geometry(1, m).is_ok(), "m={m}");
        }
    }

    #[test]
    fn m0_is_valid_striping() {
        // Regression: parity = 0 (RaidLevel::None) must pass for any k.
        for k in [1usize, 2, 255, 256, 1000] {
            assert!(check_geometry(k, 0).is_ok(), "k={k}");
        }
    }

    #[test]
    fn k0_rejected_uniformly() {
        for m in 0..=4 {
            assert!(matches!(
                check_geometry(0, m),
                Err(RaidError::BadGeometry { .. })
            ));
        }
    }

    #[test]
    fn field_limits_by_parity_count() {
        // m = 1: XOR, unlimited k.
        assert!(check_geometry(1000, 1).is_ok());
        // m = 2: distinct powers cap at 255 data shards.
        assert!(check_geometry(255, 2).is_ok());
        assert!(check_geometry(256, 2).is_err());
        // m ≥ 3: Cauchy cap at 256 total.
        assert!(check_geometry(252, 4).is_ok());
        assert!(check_geometry(253, 4).is_err());
    }

    #[test]
    fn width_and_length_helpers() {
        let a = [1u8, 2, 3];
        let b = [4u8];
        assert!(check_within_width(&[&a, &b], 3).is_ok());
        assert!(check_within_width(&[&a, &b], 2).is_err());
        assert_eq!(check_equal_lengths(&[&a, &a]).unwrap(), 3);
        assert_eq!(check_equal_lengths(&[]).unwrap(), 0);
        assert_eq!(
            check_equal_lengths(&[&a, &b]).unwrap_err(),
            RaidError::ShardLengthMismatch
        );
    }
}
