//! General RS(k, m) erasure coding: `k` data shards, `m` parity shards,
//! any `m` losses tolerated.
//!
//! The encode matrix is systematic — `[Iₖ ; C]` with `C` an `m × k`
//! coefficient block — chosen per parity count so the small geometries
//! stay bit-identical to the dedicated codes:
//!
//! - `m = 1`: the all-ones row (parity ≡ [`raid5::parity`](crate::raid5)),
//! - `m = 2`: rows `[1 … 1]` and `[g⁰ … g^{k−1}]` (≡ RAID-6 P and Q);
//!   every 2×2 minor is `gʲ¹ ⊕ gʲ²` ≠ 0 for distinct powers, so the code
//!   is MDS for `k ≤ 255`,
//! - `m ≥ 3`: a Cauchy block `C[r][j] = (xᵣ ⊕ yⱼ)⁻¹` with `xᵣ = k + r`,
//!   `yⱼ = j` — all points distinct for `k + m ≤ 256`, and every minor of
//!   a Cauchy matrix is nonzero, so `[Iₖ ; C]` is MDS.
//!
//! Each geometry's coefficient block is expanded **once** into split-nibble
//! multiplication tables (one `NibbleTables` per `(row, column)` cell,
//! 32 bytes each) and cached process-wide, so the encode hot loop is a
//! single pass per parity row through the same SSSE3/`pshufb` kernels the
//! RAID-6 path uses — no per-call table builds, no log/exp walks.
//!
//! Decode picks any `k` surviving rows of `[Iₖ ; C]`, inverts that
//! submatrix exactly with [`fragcloud_linalg::FieldLu`] over GF(2⁸), and
//! drives the back-substituted product through the same kernels.

use crate::geometry::{check_equal_lengths, check_geometry, check_within_width};
use crate::kernel::{self, NibbleTables};
use crate::{gf256, RaidError, Result};
use fragcloud_linalg::{Field, FieldLu};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// GF(2⁸) element adapter for the exact-LU [`Field`] trait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Gf(u8);

impl Field for Gf {
    const ZERO: Self = Gf(0);
    const ONE: Self = Gf(1);
    fn add(self, rhs: Self) -> Self {
        Gf(self.0 ^ rhs.0)
    }
    fn sub(self, rhs: Self) -> Self {
        // Characteristic 2: subtraction is addition.
        Gf(self.0 ^ rhs.0)
    }
    fn mul(self, rhs: Self) -> Self {
        Gf(gf256::mul(self.0, rhs.0))
    }
    fn inv(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            Some(Gf(gf256::inv(self.0)))
        }
    }
}

/// One geometry's coefficient block plus its cached kernel tables.
#[derive(Debug)]
struct RsMatrix {
    k: usize,
    m: usize,
    /// `m × k` parity coefficients (row-major).
    rows: Vec<Vec<u8>>,
    /// Split-nibble tables, one per `(row, column)` cell, built once.
    tables: Vec<Vec<NibbleTables>>,
}

impl RsMatrix {
    fn build(k: usize, m: usize) -> Self {
        let mut rows: Vec<Vec<u8>> = Vec::with_capacity(m);
        match m {
            0 => {}
            1 => rows.push(vec![1u8; k]),
            2 => {
                rows.push(vec![1u8; k]);
                rows.push((0..k).map(|j| gf256::pow(gf256::GENERATOR, j as u32)).collect());
            }
            _ => {
                // Cauchy points: x_r = k + r, y_j = j; disjoint by
                // construction, all within u8 because k + m ≤ 256.
                for r in 0..m {
                    rows.push(
                        (0..k)
                            .map(|j| gf256::inv(((k + r) as u8) ^ (j as u8)))
                            .collect(),
                    );
                }
            }
        }
        let tables = rows
            .iter()
            .map(|row| row.iter().map(|&c| NibbleTables::new(c)).collect())
            .collect();
        RsMatrix { k, m, rows, tables }
    }
}

/// Process-wide matrix cache: the tables are immutable once built, so one
/// `Arc` per geometry serves every codec, thread and stripe.
fn matrix(k: usize, m: usize) -> Arc<RsMatrix> {
    type Cache = Mutex<HashMap<(usize, usize), Arc<RsMatrix>>>;
    static CACHE: OnceLock<Cache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = match cache.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(), // cache holds no invariants beyond the map
    };
    Arc::clone(
        guard
            .entry((k, m))
            .or_insert_with(|| Arc::new(RsMatrix::build(k, m))),
    )
}

/// RS(k, m) encoder/decoder with a fixed geometry.
///
/// Cheap to construct after the first build of a given `(k, m)` — the
/// coefficient tables come from a process-wide cache.
#[derive(Debug, Clone)]
pub struct RsCodec {
    matrix: Arc<RsMatrix>,
}

impl RsCodec {
    /// Creates a codec for `data_shards` data and `parity_shards` parity
    /// shards; the geometry must pass
    /// [`check_geometry`].
    pub fn new(data_shards: usize, parity_shards: usize) -> Result<Self> {
        check_geometry(data_shards, parity_shards)?;
        Ok(RsCodec {
            matrix: matrix(data_shards, parity_shards),
        })
    }

    /// Data-shard count `k`.
    pub fn data_shards(&self) -> usize {
        self.matrix.k
    }

    /// Parity-shard count `m`.
    pub fn parity_shards(&self) -> usize {
        self.matrix.m
    }

    /// Total shards per stripe.
    pub fn total_shards(&self) -> usize {
        self.matrix.k + self.matrix.m
    }

    /// Parity coefficient for `(row, data column)` — row `r` of the `C`
    /// block. Exposed so equivalence tests can pin the construction.
    pub fn coefficient(&self, row: usize, col: usize) -> u8 {
        self.matrix.rows[row][col]
    }

    fn check_shard_count(&self, n: usize) -> Result<()> {
        if n != self.matrix.k {
            return Err(RaidError::BadGeometry {
                detail: format!("expected {} data shards, got {n}", self.matrix.k),
            });
        }
        Ok(())
    }

    /// Computes all `m` parity shards for `k` equal-length data shards
    /// through the cached-table kernels.
    pub fn parity(&self, shards: &[&[u8]]) -> Result<Vec<Vec<u8>>> {
        self.check_shard_count(shards.len())?;
        let width = check_equal_lengths(shards)?;
        let mut out: Vec<Vec<u8>> = (0..self.matrix.m).map(|_| Vec::new()).collect();
        self.parity_padded_into(shards, width, &mut out)?;
        Ok(out)
    }

    /// Parity of shards logically zero-padded to `width`, written into
    /// caller-provided buffers (cleared and resized to `width`) so
    /// pipelined encoders can recycle allocations across stripes. `out`
    /// must hold exactly `m` buffers.
    ///
    /// Single pass per parity row: each data shard is folded into the row
    /// accumulator with one kernel call (`xor_acc` for coefficient 1,
    /// cached split-nibble `mul_acc` otherwise).
    pub fn parity_padded_into(
        &self,
        shards: &[&[u8]],
        width: usize,
        out: &mut [Vec<u8>],
    ) -> Result<()> {
        self.check_shard_count(shards.len())?;
        check_within_width(shards, width)?;
        if out.len() != self.matrix.m {
            return Err(RaidError::BadGeometry {
                detail: format!(
                    "expected {} parity buffers, got {}",
                    self.matrix.m,
                    out.len()
                ),
            });
        }
        for (r, o) in out.iter_mut().enumerate() {
            o.clear();
            o.resize(width, 0);
            for (j, s) in shards.iter().enumerate() {
                match self.matrix.rows[r][j] {
                    0 => {}
                    1 => kernel::xor_acc(o, s),
                    _ => kernel::mul_acc_wide(o, s, &self.matrix.tables[r][j]),
                }
            }
        }
        Ok(())
    }

    /// Byte-at-a-time reference implementation of [`parity`](Self::parity)
    /// via [`gf256::mul_acc_scalar`] — kept so proptests and the
    /// `rs_coding` criterion group can pin the kernel path against it.
    pub fn parity_scalar(&self, shards: &[&[u8]]) -> Result<Vec<Vec<u8>>> {
        self.check_shard_count(shards.len())?;
        let width = check_equal_lengths(shards)?;
        let mut out = Vec::with_capacity(self.matrix.m);
        for row in &self.matrix.rows {
            let mut acc = vec![0u8; width];
            for (j, s) in shards.iter().enumerate() {
                gf256::mul_acc_scalar(&mut acc, s, row[j]);
            }
            out.push(acc);
        }
        Ok(out)
    }

    /// Rebuilds the full data stripe (`k` shards, in order) from any `≥ k`
    /// surviving stripe members.
    ///
    /// `available` pairs each survivor with its stripe index (`0..k` =
    /// data, `k..k+m` = parity row `idx − k`); all survivors must share
    /// one width. Surviving data shards are passed through verbatim;
    /// missing ones are solved by inverting the surviving-row submatrix of
    /// `[Iₖ ; C]` with an exact GF(2⁸) LU and applying only the rows for
    /// the lost shards through the kernels.
    pub fn reconstruct(&self, available: &[(usize, &[u8])]) -> Result<Vec<Vec<u8>>> {
        let k = self.matrix.k;
        let m = self.matrix.m;
        let total = k + m;
        let mut seen = vec![false; total];
        for (idx, _) in available {
            if *idx >= total {
                return Err(RaidError::BadGeometry {
                    detail: format!("shard index {idx} out of range (total {total})"),
                });
            }
            if seen[*idx] {
                return Err(RaidError::BadGeometry {
                    detail: format!("duplicate shard index {idx}"),
                });
            }
            seen[*idx] = true;
        }
        let width = check_equal_lengths(
            &available.iter().map(|(_, s)| *s).collect::<Vec<_>>(),
        )?;

        let mut data: Vec<Option<Vec<u8>>> = vec![None; k];
        for (idx, s) in available {
            if *idx < k {
                data[*idx] = Some(s.to_vec());
            }
        }
        let missing: Vec<usize> = (0..k).filter(|&i| data[i].is_none()).collect();
        if missing.is_empty() {
            return Ok(data
                .into_iter()
                // fraglint: allow(no-unwrap-in-lib) — no index is missing.
                .map(|d| d.expect("all data present"))
                .collect());
        }
        if available.len() < k {
            return Err(RaidError::TooManyErasures {
                missing: total - available.len(),
                tolerable: m,
            });
        }

        // Select k surviving rows of [I_k ; C]: all surviving data rows
        // first, then parity rows until the square system is full.
        let mut sel_rows: Vec<Vec<Gf>> = Vec::with_capacity(k);
        let mut sel_payload: Vec<&[u8]> = Vec::with_capacity(k);
        let mut sorted = available.to_vec();
        sorted.sort_by_key(|(i, _)| *i);
        for (idx, s) in &sorted {
            if sel_rows.len() == k {
                break;
            }
            let mut row = vec![Gf::ZERO; k];
            if *idx < k {
                row[*idx] = Gf::ONE;
            } else {
                for (j, cell) in row.iter_mut().enumerate() {
                    *cell = Gf(self.matrix.rows[*idx - k][j]);
                }
            }
            sel_rows.push(row);
            sel_payload.push(s);
        }

        // The code is MDS, so this submatrix is invertible; Singular here
        // would indicate a construction bug, surfaced as BadGeometry.
        let lu = FieldLu::decompose(&sel_rows).map_err(|e| RaidError::BadGeometry {
            detail: format!("survivor submatrix not invertible: {e}"),
        })?;
        let inv = lu.inverse().map_err(|e| RaidError::BadGeometry {
            detail: format!("survivor submatrix not invertible: {e}"),
        })?;

        // data_j = Σ_i inv[j][i] · survivor_i — only for the lost shards.
        for &j in &missing {
            let mut acc = vec![0u8; width];
            for (i, payload) in sel_payload.iter().enumerate() {
                gf256::mul_acc(&mut acc, payload, inv[j][i].0);
            }
            data[j] = Some(acc);
        }
        Ok(data
            .into_iter()
            // fraglint: allow(no-unwrap-in-lib) — every missing slot was
            // just solved.
            .map(|d| d.expect("all data reconstructed"))
            .collect())
    }

    /// Rebuilds **one** shard (data `0..k`, parity `k..k+m`) from the
    /// survivors — the repair path's workhorse.
    pub fn reconstruct_shard(
        &self,
        available: &[(usize, &[u8])],
        target: usize,
    ) -> Result<Vec<u8>> {
        let k = self.matrix.k;
        let total = self.total_shards();
        if target >= total {
            return Err(RaidError::BadGeometry {
                detail: format!("target shard {target} out of range (total {total})"),
            });
        }
        if let Some((_, s)) = available.iter().find(|(i, _)| *i == target) {
            return Ok(s.to_vec());
        }
        let others: Vec<(usize, &[u8])> = available
            .iter()
            .filter(|(i, _)| *i != target)
            .copied()
            .collect();
        let data = self.reconstruct(&others)?;
        if target < k {
            return Ok(data[target].to_vec());
        }
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let width = refs.first().map_or(0, |s| s.len());
        let mut out: Vec<Vec<u8>> = (0..self.matrix.m).map(|_| Vec::new()).collect();
        self.parity_padded_into(&refs, width, &mut out)?;
        Ok(out.swap_remove(target - k))
    }

    /// Verifies that data and parity are consistent.
    pub fn verify(&self, shards: &[&[u8]], parity: &[Vec<u8>]) -> Result<bool> {
        let computed = self.parity(shards)?;
        Ok(computed == parity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stripe(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|b| ((i * 37 + b * 11 + 5) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    fn refs(v: &[Vec<u8>]) -> Vec<&[u8]> {
        v.iter().map(|s| s.as_slice()).collect()
    }

    /// All shards + parity as (index, slice) pairs.
    fn full_avail<'a>(data: &'a [Vec<u8>], parity: &'a [Vec<u8>]) -> Vec<(usize, &'a [u8])> {
        data.iter()
            .chain(parity.iter())
            .enumerate()
            .map(|(i, s)| (i, s.as_slice()))
            .collect()
    }

    #[test]
    fn kernel_parity_matches_scalar_reference() {
        for (k, m) in [(1, 1), (4, 2), (5, 3), (8, 4), (3, 5)] {
            for len in [0usize, 1, 7, 16, 63, 257] {
                let data = stripe(k, len);
                let c = RsCodec::new(k, m).unwrap();
                assert_eq!(
                    c.parity(&refs(&data)).unwrap(),
                    c.parity_scalar(&refs(&data)).unwrap(),
                    "k={k} m={m} len={len}"
                );
            }
        }
    }

    #[test]
    fn rs_k1_matches_raid5_parity() {
        for k in [1usize, 3, 7] {
            let data = stripe(k, 97);
            let c = RsCodec::new(k, 1).unwrap();
            let p = c.parity(&refs(&data)).unwrap();
            assert_eq!(p.len(), 1);
            assert_eq!(p[0], crate::raid5::parity(&refs(&data)).unwrap(), "k={k}");
        }
    }

    #[test]
    fn rs_k2_matches_raid6_pq() {
        for k in [1usize, 4, 9] {
            let data = stripe(k, 64);
            let c = RsCodec::new(k, 2).unwrap();
            let p = c.parity(&refs(&data)).unwrap();
            let pq = crate::raid6::parity(&refs(&data)).unwrap();
            assert_eq!(p[0], pq.p, "k={k} P");
            assert_eq!(p[1], pq.q, "k={k} Q");
        }
    }

    #[test]
    fn survives_every_m_loss_pattern_small_geometries() {
        // Exhaustive loss patterns for small (k, m): choose(k+m, m) cases.
        for (k, m) in [(2usize, 3usize), (4, 2), (3, 3), (5, 4)] {
            let data = stripe(k, 33);
            let c = RsCodec::new(k, m).unwrap();
            let parity = c.parity(&refs(&data)).unwrap();
            let total = k + m;
            // Iterate all subsets of size `total - m` (the survivors).
            for mask in 0u32..(1 << total) {
                if mask.count_ones() as usize != total - m {
                    continue;
                }
                let avail: Vec<(usize, &[u8])> = full_avail(&data, &parity)
                    .into_iter()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .collect();
                let rec = c.reconstruct(&avail).unwrap();
                assert_eq!(rec, data, "k={k} m={m} mask={mask:b}");
            }
        }
    }

    #[test]
    fn too_many_losses_rejected() {
        let data = stripe(4, 16);
        let c = RsCodec::new(4, 3).unwrap();
        let parity = c.parity(&refs(&data)).unwrap();
        let avail: Vec<(usize, &[u8])> = full_avail(&data, &parity)
            .into_iter()
            .skip(4) // lose all 4 data shards, keep only 3 parity
            .collect();
        assert!(matches!(
            c.reconstruct(&avail),
            Err(RaidError::TooManyErasures {
                missing: 4,
                tolerable: 3
            })
        ));
    }

    #[test]
    fn reconstruct_shard_rebuilds_every_member() {
        let (k, m) = (5usize, 3usize);
        let data = stripe(k, 41);
        let c = RsCodec::new(k, m).unwrap();
        let parity = c.parity(&refs(&data)).unwrap();
        let all = full_avail(&data, &parity);
        for lost in 0..(k + m) {
            let avail: Vec<(usize, &[u8])> =
                all.iter().filter(|(i, _)| *i != lost).copied().collect();
            let rebuilt = c.reconstruct_shard(&avail, lost).unwrap();
            let want = if lost < k { &data[lost] } else { &parity[lost - k] };
            assert_eq!(&rebuilt, want, "lost={lost}");
        }
    }

    #[test]
    fn duplicate_and_out_of_range_indices_rejected() {
        let data = stripe(3, 8);
        let c = RsCodec::new(3, 3).unwrap();
        let parity = c.parity(&refs(&data)).unwrap();
        let mut avail = full_avail(&data, &parity);
        avail[1] = avail[0];
        assert!(matches!(
            c.reconstruct(&avail),
            Err(RaidError::BadGeometry { ref detail }) if detail.contains("duplicate")
        ));
        let bad = [(99usize, data[0].as_slice())];
        assert!(matches!(
            c.reconstruct(&bad),
            Err(RaidError::BadGeometry { .. })
        ));
    }

    #[test]
    fn verify_detects_corruption() {
        let data = stripe(4, 32);
        let c = RsCodec::new(4, 3).unwrap();
        let parity = c.parity(&refs(&data)).unwrap();
        assert!(c.verify(&refs(&data), &parity).unwrap());
        let mut bad = parity.clone();
        bad[2][7] ^= 1;
        assert!(!c.verify(&refs(&data), &bad).unwrap());
    }

    #[test]
    fn geometry_validation_shared() {
        assert!(RsCodec::new(0, 3).is_err());
        assert!(RsCodec::new(1, 0).is_ok()); // m = 0: striping only
        assert!(RsCodec::new(253, 3).is_ok());
        assert!(RsCodec::new(254, 3).is_err()); // 257 total points
        // m = 0 parity is empty and reconstruct needs all data.
        let c = RsCodec::new(2, 0).unwrap();
        let data = stripe(2, 8);
        assert!(c.parity(&refs(&data)).unwrap().is_empty());
        let avail = [(0usize, data[0].as_slice())];
        assert!(matches!(
            c.reconstruct(&avail),
            Err(RaidError::TooManyErasures { tolerable: 0, .. })
        ));
    }

    #[test]
    fn padded_parity_matches_explicit_zero_pad() {
        let mut data = stripe(4, 33);
        data[3].truncate(9);
        let mut full = data.clone();
        full[3].resize(33, 0);
        let c = RsCodec::new(4, 3).unwrap();
        let mut padded: Vec<Vec<u8>> = (0..3).map(|_| Vec::new()).collect();
        c.parity_padded_into(&refs(&data), 33, &mut padded).unwrap();
        assert_eq!(padded, c.parity(&refs(&full)).unwrap());
        // Wrong buffer count rejected.
        let mut two: Vec<Vec<u8>> = (0..2).map(|_| Vec::new()).collect();
        assert!(c.parity_padded_into(&refs(&data), 33, &mut two).is_err());
    }

    #[test]
    fn matrix_cache_shares_one_build_per_geometry() {
        let a = RsCodec::new(6, 3).unwrap();
        let b = RsCodec::new(6, 3).unwrap();
        assert!(Arc::ptr_eq(&a.matrix, &b.matrix));
        let c = RsCodec::new(6, 4).unwrap();
        assert!(!Arc::ptr_eq(&a.matrix, &c.matrix));
    }

    #[test]
    fn large_geometry_double_ended_loss() {
        let (k, m) = (16usize, 4usize);
        let data = stripe(k, 128);
        let c = RsCodec::new(k, m).unwrap();
        let parity = c.parity(&refs(&data)).unwrap();
        // Lose first and last data shards plus two parity rows.
        let avail: Vec<(usize, &[u8])> = full_avail(&data, &parity)
            .into_iter()
            .filter(|(i, _)| *i != 0 && *i != k - 1 && *i != k && *i != k + 3)
            .collect();
        assert_eq!(c.reconstruct(&avail).unwrap(), data);
    }
}
