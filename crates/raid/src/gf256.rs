#![allow(clippy::needless_range_loop)] // index form mirrors the math

//! Arithmetic in GF(2⁸) modulo x⁸+x⁴+x³+x²+1 (`0x11D`), the standard
//! Reed–Solomon / RAID-6 polynomial, under which `g = 2` is primitive.
//!
//! Multiplication and inversion are table-driven (exp/log tables built at
//! first use from generator 2), which keeps the hot Reed–Solomon paths in
//! `raid6` branch-free per byte.

use std::sync::OnceLock;

/// The field polynomial (x⁸ + x⁴ + x³ + x² + 1).
pub const POLY: u16 = 0x11D;

/// The primitive generator used for tables and RAID-6 coefficients.
pub const GENERATOR: u8 = 2;

/// Exp/log tables for GF(2⁸) with generator 2.
struct Tables {
    /// `exp[i] = g^i` for i in 0..510 (doubled so mul avoids a mod 255).
    exp: [u8; 510],
    /// `log[x]` for x in 1..=255; `log[0]` is unused (set to 0).
    log: [u16; 256],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 510];
        let mut log = [0u16; 256];
        let mut x: u16 = 1;
        for i in 0..255 {
            exp[i] = x as u8;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        for i in 255..510 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// Adds two field elements (XOR).
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplies two field elements.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[(t.log[a as usize] + t.log[b as usize]) as usize]
}

/// Multiplicative inverse.
///
/// # Panics
/// Panics on `0`, which has no inverse.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "gf256: zero has no multiplicative inverse");
    let t = tables();
    t.exp[(255 - t.log[a as usize]) as usize]
}

/// Division `a / b`.
///
/// # Panics
/// Panics when `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "gf256: division by zero");
    if a == 0 {
        return 0;
    }
    let t = tables();
    t.exp[(t.log[a as usize] + 255 - t.log[b as usize]) as usize]
}

/// Exponentiation `base^e` in the field.
#[inline]
pub fn pow(base: u8, e: u32) -> u8 {
    if base == 0 {
        return if e == 0 { 1 } else { 0 };
    }
    let t = tables();
    let l = (t.log[base as usize] as u64 * e as u64) % 255;
    t.exp[l as usize]
}

/// Multiplies every byte of `data` by `c`, XOR-accumulating into `acc`:
/// `acc[i] ^= c · data[i]`. This is the inner loop of Reed–Solomon
/// encode/decode; it dispatches to the word-parallel split-nibble kernel
/// (see [`mul_acc_scalar`] for the byte-at-a-time reference).
///
/// # Panics
/// Panics when slice lengths differ.
pub fn mul_acc(acc: &mut [u8], data: &[u8], c: u8) {
    assert_eq!(acc.len(), data.len(), "gf256::mul_acc: length mismatch");
    if c == 0 {
        return;
    }
    if c == 1 {
        crate::kernel::xor_acc(acc, data);
        return;
    }
    crate::kernel::mul_acc_wide(acc, data, &crate::kernel::NibbleTables::new(c));
}

/// Byte-at-a-time reference implementation of [`mul_acc`]: one log/exp
/// table walk per byte, exactly as the math reads. Kept for proptests and
/// benches that pin the wide kernel against it.
///
/// # Panics
/// Panics when slice lengths differ.
pub fn mul_acc_scalar(acc: &mut [u8], data: &[u8], c: u8) {
    assert_eq!(acc.len(), data.len(), "gf256::mul_acc: length mismatch");
    if c == 0 {
        return;
    }
    if c == 1 {
        for (a, &d) in acc.iter_mut().zip(data) {
            *a ^= d;
        }
        return;
    }
    let t = tables();
    let lc = t.log[c as usize];
    for (a, &d) in acc.iter_mut().zip(data) {
        if d != 0 {
            *a ^= t.exp[(lc + t.log[d as usize]) as usize];
        }
    }
}

/// Multiplies every byte of `data` in place by `c` through the
/// word-parallel split-nibble kernel ([`mul_slice_scalar`] is the
/// reference).
pub fn mul_slice(data: &mut [u8], c: u8) {
    if c == 1 {
        return;
    }
    if c == 0 {
        data.fill(0);
        return;
    }
    crate::kernel::mul_slice_wide(data, &crate::kernel::NibbleTables::new(c));
}

/// Byte-at-a-time reference implementation of [`mul_slice`].
pub fn mul_slice_scalar(data: &mut [u8], c: u8) {
    if c == 1 {
        return;
    }
    if c == 0 {
        data.fill(0);
        return;
    }
    let t = tables();
    let lc = t.log[c as usize];
    for d in data.iter_mut() {
        if *d != 0 {
            *d = t.exp[(lc + t.log[*d as usize]) as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference bitwise ("Russian peasant") multiplication.
    fn slow_mul(mut a: u8, mut b: u8) -> u8 {
        let mut p = 0u8;
        while b != 0 {
            if b & 1 != 0 {
                p ^= a;
            }
            let hi = a & 0x80 != 0;
            a <<= 1;
            if hi {
                a ^= (POLY & 0xFF) as u8;
            }
            b >>= 1;
        }
        p
    }

    #[test]
    fn addition_is_xor_and_self_inverse() {
        for a in 0..=255u8 {
            assert_eq!(add(a, a), 0);
            assert_eq!(add(a, 0), a);
        }
    }

    #[test]
    fn table_mul_matches_bitwise_mul_exhaustive() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), slow_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn multiplication_identity_and_zero() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(1, a), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(mul(0, a), 0);
        }
    }

    #[test]
    fn field_axioms_sampled() {
        for &a in &[1u8, 2, 3, 0x53, 0xCA, 255] {
            for &b in &[1u8, 7, 0x11, 0x80, 254] {
                for &c in &[1u8, 5, 0x1B, 200] {
                    assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn inverse_roundtrip_exhaustive() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "inv failed for {a}");
            assert_eq!(div(a, a), 1);
            assert_eq!(div(0, a), 0);
        }
    }

    #[test]
    #[should_panic(expected = "zero has no multiplicative inverse")]
    fn inv_zero_panics() {
        inv(0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_zero_panics() {
        div(1, 0);
    }

    #[test]
    fn generator_is_primitive() {
        // 2 must generate all 255 nonzero elements under 0x11D. This is what
        // lets RAID-6 support up to 255 data shards with distinct g^i.
        let mut seen = std::collections::HashSet::new();
        let mut x = 1u8;
        for _ in 0..255 {
            assert!(seen.insert(x), "generator order < 255");
            x = mul(x, GENERATOR);
        }
        assert_eq!(x, 1, "g^255 must be 1");
        assert_eq!(seen.len(), 255);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for &g in &[2u8, 3, 0x1D] {
            let mut acc = 1u8;
            for e in 0..300u32 {
                assert_eq!(pow(g, e), acc, "g={g} e={e}");
                acc = mul(acc, g);
            }
        }
        assert_eq!(pow(0, 0), 1);
        assert_eq!(pow(0, 5), 0);
    }

    #[test]
    fn mul_acc_and_mul_slice() {
        let data = [1u8, 2, 3, 0, 255];
        let mut acc = [0u8; 5];
        mul_acc(&mut acc, &data, 0x57);
        for (a, &d) in acc.iter().zip(&data) {
            assert_eq!(*a, mul(d, 0x57));
        }
        // acc ^= 1*data == plain xor
        let mut acc2 = acc;
        mul_acc(&mut acc2, &data, 1);
        for ((a2, a), d) in acc2.iter().zip(&acc).zip(&data) {
            assert_eq!(*a2, a ^ d);
        }
        // mul_slice matches elementwise mul
        let mut s = data;
        mul_slice(&mut s, 0x83);
        for (x, &d) in s.iter().zip(&data) {
            assert_eq!(*x, mul(d, 0x83));
        }
        let mut z = data;
        mul_slice(&mut z, 0);
        assert_eq!(z, [0u8; 5]);
        let mut one = data;
        mul_slice(&mut one, 1);
        assert_eq!(one, data);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mul_acc_length_mismatch_panics() {
        let mut acc = [0u8; 2];
        mul_acc(&mut acc, &[1u8; 3], 2);
    }
}
