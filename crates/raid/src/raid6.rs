//! RAID-6: dual parity (P, Q) over GF(2⁸), tolerating any two erasures.
//!
//! With data shards `D₀..D_{k−1}`:
//!
//! - `P = ⊕ᵢ Dᵢ` (plain XOR, same as RAID-5),
//! - `Q = ⊕ᵢ gⁱ·Dᵢ` with `g` the primitive generator of the field.
//!
//! Any two missing shards — two data, one data + P, one data + Q, or both
//! parities — are reconstructed by solving the corresponding linear system
//! in GF(2⁸). The paper selects this level "in case of higher assurance"
//! (§IV-A).

use crate::geometry::{check_equal_lengths, check_geometry, check_within_width};
use crate::gf256;
use crate::kernel;
use crate::{RaidError, Result};

/// Both parity shards for a stripe of equal-length data shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parity {
    /// XOR parity.
    pub p: Vec<u8>,
    /// Reed–Solomon parity with coefficients `gⁱ`.
    pub q: Vec<u8>,
}

/// Maximum number of data shards (coefficients `gⁱ` must stay distinct).
pub const MAX_DATA_SHARDS: usize = crate::geometry::MAX_POWER_DATA_SHARDS;

/// Computes P and Q parity for the given data shards.
pub fn parity(shards: &[&[u8]]) -> Result<Parity> {
    check_geometry(shards.len(), 2)?;
    let len = check_equal_lengths(shards)?;
    let mut p = vec![0u8; len];
    let mut q = vec![0u8; len];
    for (i, s) in shards.iter().enumerate() {
        kernel::xor_acc(&mut p, s);
        gf256::mul_acc(&mut q, s, gf256::pow(gf256::GENERATOR, i as u32));
    }
    Ok(Parity { p, q })
}

/// P and Q parity of shards that are logically zero-padded to `width`:
/// shards may be shorter than `width` and the missing suffix contributes
/// nothing (zero is additive identity and annihilates products), so stripe
/// encoders can skip materializing padded copies of the final short shard.
///
/// Returns [`RaidError::BadGeometry`] for an empty input, too many shards,
/// or a shard longer than `width`.
pub fn parity_padded(shards: &[&[u8]], width: usize) -> Result<Parity> {
    let mut p = Vec::new();
    let mut q = Vec::new();
    parity_padded_into(shards, width, &mut p, &mut q)?;
    Ok(Parity { p, q })
}

/// [`parity_padded`] writing into caller-provided P and Q buffers (cleared
/// and resized to `width`), so pipelined encoders can recycle parity
/// allocations across stripes.
pub fn parity_padded_into(
    shards: &[&[u8]],
    width: usize,
    p: &mut Vec<u8>,
    q: &mut Vec<u8>,
) -> Result<()> {
    check_geometry(shards.len(), 2)?;
    check_within_width(shards, width)?;
    p.clear();
    p.resize(width, 0);
    q.clear();
    q.resize(width, 0);
    for (i, s) in shards.iter().enumerate() {
        kernel::xor_acc(p, s);
        gf256::mul_acc(&mut q[..s.len()], s, gf256::pow(gf256::GENERATOR, i as u32));
    }
    Ok(())
}

/// Identifies a shard within a RAID-6 stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardId {
    /// Data shard at the given stripe index.
    Data(usize),
    /// The XOR parity shard.
    P,
    /// The Reed–Solomon parity shard.
    Q,
}

/// A surviving or reconstructed stripe member.
#[derive(Debug, Clone)]
pub struct Shard<'a> {
    /// Which stripe slot this shard occupies.
    pub id: ShardId,
    /// The shard payload.
    pub data: &'a [u8],
}

/// Reconstructs the full data stripe (`k` data shards, in order) from any
/// `≥ k` surviving stripe members out of `k + 2`.
///
/// `k` is the stripe's data-shard count; `survivors` may contain data
/// shards, P and Q in any order. At most two members may be missing.
pub fn reconstruct(k: usize, survivors: &[Shard<'_>]) -> Result<Vec<Vec<u8>>> {
    check_geometry(k, 2)?;
    if survivors.is_empty() {
        return Err(RaidError::TooManyErasures {
            missing: k + 2,
            tolerable: 2,
        });
    }
    check_equal_lengths(&survivors.iter().map(|s| s.data).collect::<Vec<_>>())?;

    let mut data: Vec<Option<Vec<u8>>> = vec![None; k];
    let mut p: Option<Vec<u8>> = None;
    let mut q: Option<Vec<u8>> = None;
    for s in survivors {
        match s.id {
            ShardId::Data(i) => {
                if i >= k {
                    return Err(RaidError::BadGeometry {
                        detail: format!("data index {i} out of range for k={k}"),
                    });
                }
                data[i] = Some(s.data.to_vec());
            }
            ShardId::P => p = Some(s.data.to_vec()),
            ShardId::Q => q = Some(s.data.to_vec()),
        }
    }

    let missing: Vec<usize> = (0..k).filter(|&i| data[i].is_none()).collect();
    let missing_total = missing.len() + usize::from(p.is_none()) + usize::from(q.is_none());
    if missing_total > 2 {
        return Err(RaidError::TooManyErasures {
            missing: missing_total,
            tolerable: 2,
        });
    }

    match (missing.as_slice(), &p, &q) {
        // All data present — nothing to do.
        ([], _, _) => {}
        // One data shard missing, P available: XOR repair.
        ([i], Some(pv), _) => {
            let mut x = pv.clone();
            // Shard i is the only `None`, so the surviving shards are
            // exactly the flattened rest.
            for d in data.iter().flatten() {
                kernel::xor_acc(&mut x, d);
            }
            data[*i] = Some(x);
        }
        // One data shard missing, P lost but Q available: RS repair.
        ([i], None, Some(qv)) => {
            // Q = Σ g^j d_j  =>  g^i d_i = Q ⊕ Σ_{j≠i} g^j d_j
            let mut acc = qv.clone();
            // Shard i is the only `None`; enumerate keeps each survivor's
            // coefficient g^j while skipping the missing slot.
            for (j, d) in data.iter().enumerate() {
                if let Some(d) = d {
                    gf256::mul_acc(&mut acc, d, gf256::pow(gf256::GENERATOR, j as u32));
                }
            }
            let gi_inv = gf256::inv(gf256::pow(gf256::GENERATOR, *i as u32));
            gf256::mul_slice(&mut acc, gi_inv);
            data[*i] = Some(acc);
        }
        // Two data shards missing: need both parities.
        ([i, j], Some(pv), Some(qv)) => {
            let (i, j) = (*i, *j);
            // A = P ⊕ Σ surviving d  (= d_i ⊕ d_j)
            let mut a = pv.clone();
            // B = Q ⊕ Σ surviving g^m d_m (= g^i d_i ⊕ g^j d_j)
            let mut b = qv.clone();
            for (m, d) in data.iter().enumerate() {
                if let Some(d) = d {
                    kernel::xor_acc(&mut a, d);
                    gf256::mul_acc(&mut b, d, gf256::pow(gf256::GENERATOR, m as u32));
                }
            }
            // Solve d_i ⊕ d_j = A ; g^i d_i ⊕ g^j d_j = B:
            //   d_i = (B ⊕ g^j·A) / (g^i ⊕ g^j),  d_j = A ⊕ d_i,
            // evaluated slice-at-a-time through the wide kernels.
            let gi = gf256::pow(gf256::GENERATOR, i as u32);
            let gj = gf256::pow(gf256::GENERATOR, j as u32);
            let denom_inv = gf256::inv(gi ^ gj);
            let mut di = b;
            gf256::mul_acc(&mut di, &a, gj);
            gf256::mul_slice(&mut di, denom_inv);
            let mut dj = a;
            kernel::xor_acc(&mut dj, &di);
            data[i] = Some(di);
            data[j] = Some(dj);
        }
        // One data missing but no parity at all survives — unreachable
        // (missing_total would exceed 2 only if k>… ) actually possible when
        // both parities lost AND a data shard lost = 3 missing, caught above.
        ([_], None, None) => unreachable!("guarded by missing_total check"),
        (ms, _, _) => {
            return Err(RaidError::TooManyErasures {
                missing: ms.len(),
                tolerable: 2,
            })
        }
    }

    Ok(data
        .into_iter()
        // fraglint: allow(no-unwrap-in-lib) — every arm above either
        // restores the missing slots or returns an error, so all k
        // shards are Some here.
        .map(|d| d.expect("all data reconstructed"))
        .collect())
}

/// Verifies stripe consistency: recomputed (P, Q) match the stored ones.
pub fn verify(shards: &[&[u8]], stored: &Parity) -> Result<bool> {
    let computed = parity(shards)?;
    Ok(computed == *stored)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stripe(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|b| ((i * 37 + b * 11 + 5) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    fn refs(v: &[Vec<u8>]) -> Vec<&[u8]> {
        v.iter().map(|s| s.as_slice()).collect()
    }

    #[test]
    fn p_matches_raid5_parity() {
        let data = stripe(4, 64);
        let pq = parity(&refs(&data)).unwrap();
        let p5 = crate::raid5::parity(&refs(&data)).unwrap();
        assert_eq!(pq.p, p5);
    }

    #[test]
    fn reconstruct_nothing_missing() {
        let data = stripe(3, 16);
        let pq = parity(&refs(&data)).unwrap();
        let survivors: Vec<Shard> = data
            .iter()
            .enumerate()
            .map(|(i, d)| Shard {
                id: ShardId::Data(i),
                data: d,
            })
            .chain([
                Shard {
                    id: ShardId::P,
                    data: &pq.p,
                },
                Shard {
                    id: ShardId::Q,
                    data: &pq.q,
                },
            ])
            .collect();
        assert_eq!(reconstruct(3, &survivors).unwrap(), data);
    }

    #[test]
    fn reconstruct_every_single_data_loss() {
        let data = stripe(5, 32);
        let pq = parity(&refs(&data)).unwrap();
        for lost in 0..5 {
            let survivors: Vec<Shard> = data
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != lost)
                .map(|(i, d)| Shard {
                    id: ShardId::Data(i),
                    data: d,
                })
                .chain([
                    Shard {
                        id: ShardId::P,
                        data: &pq.p,
                    },
                    Shard {
                        id: ShardId::Q,
                        data: &pq.q,
                    },
                ])
                .collect();
            assert_eq!(reconstruct(5, &survivors).unwrap(), data, "lost={lost}");
        }
    }

    #[test]
    fn reconstruct_every_pair_of_data_losses() {
        let data = stripe(6, 24);
        let pq = parity(&refs(&data)).unwrap();
        for a in 0..6 {
            for b in (a + 1)..6 {
                let survivors: Vec<Shard> = data
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != a && *i != b)
                    .map(|(i, d)| Shard {
                        id: ShardId::Data(i),
                        data: d,
                    })
                    .chain([
                        Shard {
                            id: ShardId::P,
                            data: &pq.p,
                        },
                        Shard {
                            id: ShardId::Q,
                            data: &pq.q,
                        },
                    ])
                    .collect();
                assert_eq!(reconstruct(6, &survivors).unwrap(), data, "lost {a},{b}");
            }
        }
    }

    #[test]
    fn reconstruct_data_plus_p_lost() {
        let data = stripe(4, 16);
        let pq = parity(&refs(&data)).unwrap();
        for lost in 0..4 {
            let survivors: Vec<Shard> = data
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != lost)
                .map(|(i, d)| Shard {
                    id: ShardId::Data(i),
                    data: d,
                })
                .chain([Shard {
                    id: ShardId::Q,
                    data: &pq.q,
                }])
                .collect();
            assert_eq!(reconstruct(4, &survivors).unwrap(), data, "lost={lost}+P");
        }
    }

    #[test]
    fn reconstruct_data_plus_q_lost() {
        let data = stripe(4, 16);
        let pq = parity(&refs(&data)).unwrap();
        for lost in 0..4 {
            let survivors: Vec<Shard> = data
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != lost)
                .map(|(i, d)| Shard {
                    id: ShardId::Data(i),
                    data: d,
                })
                .chain([Shard {
                    id: ShardId::P,
                    data: &pq.p,
                }])
                .collect();
            assert_eq!(reconstruct(4, &survivors).unwrap(), data, "lost={lost}+Q");
        }
    }

    #[test]
    fn both_parities_lost_is_fine() {
        let data = stripe(3, 8);
        let survivors: Vec<Shard> = data
            .iter()
            .enumerate()
            .map(|(i, d)| Shard {
                id: ShardId::Data(i),
                data: d,
            })
            .collect();
        assert_eq!(reconstruct(3, &survivors).unwrap(), data);
    }

    #[test]
    fn three_losses_rejected() {
        let data = stripe(5, 8);
        let pq = parity(&refs(&data)).unwrap();
        let survivors: Vec<Shard> = data
            .iter()
            .enumerate()
            .skip(3) // lose data 0,1,2
            .map(|(i, d)| Shard {
                id: ShardId::Data(i),
                data: d,
            })
            .chain([
                Shard {
                    id: ShardId::P,
                    data: &pq.p,
                },
                Shard {
                    id: ShardId::Q,
                    data: &pq.q,
                },
            ])
            .collect();
        assert!(matches!(
            reconstruct(5, &survivors),
            Err(RaidError::TooManyErasures { missing: 3, .. })
        ));
    }

    #[test]
    fn verify_detects_corruption() {
        let data = stripe(4, 16);
        let pq = parity(&refs(&data)).unwrap();
        assert!(verify(&refs(&data), &pq).unwrap());
        let mut bad = data.clone();
        bad[2][5] ^= 1;
        assert!(!verify(&refs(&bad), &pq).unwrap());
    }

    #[test]
    fn geometry_errors() {
        assert!(matches!(parity(&[]), Err(RaidError::BadGeometry { .. })));
        let a = [1u8, 2];
        let b = [3u8];
        assert_eq!(
            parity(&[&a, &b]).unwrap_err(),
            RaidError::ShardLengthMismatch
        );
        assert!(matches!(
            reconstruct(0, &[]),
            Err(RaidError::BadGeometry { .. })
        ));
        // Data index out of range.
        let d = [1u8];
        let s = [Shard {
            id: ShardId::Data(7),
            data: &d,
        }];
        assert!(matches!(
            reconstruct(2, &s),
            Err(RaidError::BadGeometry { .. })
        ));
    }

    #[test]
    fn padded_parity_matches_explicit_zero_pad() {
        let mut data = stripe(4, 33);
        data[3].truncate(9); // logically zero-padded final shard
        let mut full = data.clone();
        full[3].resize(33, 0);
        let pq_padded = parity_padded(&refs(&data), 33).unwrap();
        let pq_full = parity(&refs(&full)).unwrap();
        assert_eq!(pq_padded, pq_full);
        // Geometry errors.
        assert!(matches!(
            parity_padded(&[], 8),
            Err(RaidError::BadGeometry { .. })
        ));
        assert!(matches!(
            parity_padded(&refs(&data), 8),
            Err(RaidError::BadGeometry { .. })
        ));
    }

    #[test]
    fn large_stripe_double_loss() {
        let data = stripe(32, 128);
        let pq = parity(&refs(&data)).unwrap();
        let survivors: Vec<Shard> = data
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 0 && *i != 31)
            .map(|(i, d)| Shard {
                id: ShardId::Data(i),
                data: d,
            })
            .chain([
                Shard {
                    id: ShardId::P,
                    data: &pq.p,
                },
                Shard {
                    id: ShardId::Q,
                    data: &pq.q,
                },
            ])
            .collect();
        assert_eq!(reconstruct(32, &survivors).unwrap(), data);
    }
}
