//! Level-agnostic striping facade used by the Cloud Data Distributor.
//!
//! A [`StripeCodec`] slices a byte blob into `k` equal-width data shards
//! (zero-padded), appends the parity shards demanded by the configured
//! [`RaidLevel`], and can rebuild the original blob from any sufficient
//! subset of shards.

use crate::geometry::check_geometry;
use crate::{raid5, raid6, rs, RaidError, Result};
use fragcloud_telemetry::TelemetryHandle;

/// Assurance level for a stripe, mirroring the paper's §IV-A choices plus
/// the general RS(k, m) geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RaidLevel {
    /// No parity: all shards are required to read (maximum fragmentation,
    /// zero storage overhead). The single-provider baseline uses this.
    None,
    /// One XOR parity shard; tolerates one lost provider. Paper default.
    Raid5,
    /// P+Q Reed–Solomon parity; tolerates two lost providers. Paper's
    /// "higher assurance" choice.
    Raid6,
    /// General Reed–Solomon with `parity` parity shards; tolerates any
    /// `parity` lost providers. `Rs { parity: 1 }` produces byte-identical
    /// parity to [`Raid5`](RaidLevel::Raid5), `Rs { parity: 2 }` to
    /// [`Raid6`](RaidLevel::Raid6).
    Rs {
        /// Number of parity shards (`m`).
        parity: u8,
    },
}

impl RaidLevel {
    /// Number of parity shards this level appends.
    pub fn parity_shards(self) -> usize {
        match self {
            RaidLevel::None => 0,
            RaidLevel::Raid5 => 1,
            RaidLevel::Raid6 => 2,
            RaidLevel::Rs { parity } => parity as usize,
        }
    }

    /// Number of shard losses the level tolerates.
    pub fn fault_tolerance(self) -> usize {
        self.parity_shards()
    }

    /// The level for a given parity-shard count, canonicalizing the small
    /// geometries onto the dedicated codes: 0 → `None`, 1 → `Raid5`,
    /// 2 → `Raid6`, m ≥ 3 → `Rs { parity: m }`.
    pub fn for_parity_shards(m: usize) -> Self {
        match m {
            0 => RaidLevel::None,
            1 => RaidLevel::Raid5,
            2 => RaidLevel::Raid6,
            m => RaidLevel::Rs { parity: m as u8 },
        }
    }
}

impl std::fmt::Display for RaidLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RaidLevel::None => write!(f, "none"),
            RaidLevel::Raid5 => write!(f, "raid5"),
            RaidLevel::Raid6 => write!(f, "raid6"),
            RaidLevel::Rs { parity } => write!(f, "rs{parity}"),
        }
    }
}

/// An encoded stripe: `k` data shards followed by the level's parity shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedStripe {
    /// All shards; indices `0..k` are data, the rest parity (P then Q).
    pub shards: Vec<Vec<u8>>,
    /// Number of data shards.
    pub k: usize,
    /// Original blob length before padding.
    pub original_len: usize,
    /// The level used to encode.
    pub level: RaidLevel,
}

/// Stripe encoder/decoder with a fixed geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeCodec {
    /// Number of data shards per stripe.
    pub data_shards: usize,
    /// Assurance level.
    pub level: RaidLevel,
}

impl StripeCodec {
    /// Creates a codec; the `(data_shards, parity_shards)` pair must pass
    /// the shared [`check_geometry`] validation (`data_shards ≥ 1`,
    /// field-size caps per parity count).
    pub fn new(data_shards: usize, level: RaidLevel) -> Result<Self> {
        check_geometry(data_shards, level.parity_shards())?;
        Ok(StripeCodec { data_shards, level })
    }

    /// Total shards per stripe (data + parity).
    pub fn total_shards(&self) -> usize {
        self.data_shards + self.level.parity_shards()
    }

    /// Encodes a blob into an [`EncodedStripe`].
    ///
    /// The blob is split into `data_shards` equal slices, the last one
    /// zero-padded. An empty blob yields zero-width shards.
    pub fn encode(&self, blob: &[u8]) -> Result<EncodedStripe> {
        let k = self.data_shards;
        let width = blob.len().div_ceil(k);
        let mut shards: Vec<Vec<u8>> = Vec::with_capacity(self.total_shards());
        for i in 0..k {
            let start = (i * width).min(blob.len());
            let end = ((i + 1) * width).min(blob.len());
            let mut s = Vec::with_capacity(width);
            s.extend_from_slice(&blob[start..end]);
            s.resize(width, 0);
            shards.push(s);
        }
        let data_refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
        match self.level {
            RaidLevel::None => {}
            RaidLevel::Raid5 => {
                let p = raid5::parity(&data_refs)?;
                shards.push(p);
            }
            RaidLevel::Raid6 => {
                let pq = raid6::parity(&data_refs)?;
                shards.push(pq.p);
                shards.push(pq.q);
            }
            RaidLevel::Rs { parity } => {
                let codec = rs::RsCodec::new(k, parity as usize)?;
                shards.extend(codec.parity(&data_refs)?);
            }
        }
        Ok(EncodedStripe {
            shards,
            k,
            original_len: blob.len(),
            level: self.level,
        })
    }

    /// Rebuilds the original blob from the available shards.
    ///
    /// `available` pairs each surviving shard with its stripe index
    /// (`0..k` = data, `k` = P, `k+1` = Q). `original_len` is the
    /// pre-padding blob length recorded at encode time.
    pub fn decode(&self, available: &[(usize, &[u8])], original_len: usize) -> Result<Vec<u8>> {
        let k = self.data_shards;
        let total = self.total_shards();
        let mut seen = vec![false; total];
        for (idx, _) in available {
            if *idx >= total {
                return Err(RaidError::BadGeometry {
                    detail: format!("shard index {idx} out of range (total {total})"),
                });
            }
            if seen[*idx] {
                return Err(RaidError::BadGeometry {
                    detail: format!("duplicate shard index {idx}"),
                });
            }
            seen[*idx] = true;
        }
        let have_data: Vec<&(usize, &[u8])> = available.iter().filter(|(i, _)| *i < k).collect();
        let missing_data = k - have_data.len();

        let data: Vec<Vec<u8>> = if missing_data == 0 {
            // Fast path: sort data shards by index, no parity math.
            let mut slots: Vec<Option<&[u8]>> = vec![None; k];
            for (i, s) in &have_data {
                slots[*i] = Some(s);
            }
            slots
                .into_iter()
                .enumerate()
                .map(|(i, s)| {
                    s.map(<[u8]>::to_vec).ok_or_else(|| RaidError::BadGeometry {
                        detail: format!("data shard {i} unfilled despite full count"),
                    })
                })
                .collect::<Result<_>>()?
        } else {
            match self.level {
                RaidLevel::None => {
                    return Err(RaidError::TooManyErasures {
                        missing: missing_data,
                        tolerable: 0,
                    })
                }
                RaidLevel::Raid5 => {
                    if missing_data > 1 {
                        return Err(RaidError::TooManyErasures {
                            missing: missing_data,
                            tolerable: 1,
                        });
                    }
                    let p = available
                        .iter()
                        .find(|(i, _)| *i == k)
                        .map(|(_, s)| *s)
                        .ok_or(RaidError::TooManyErasures {
                            missing: 2,
                            tolerable: 1,
                        })?;
                    let missing_idx = (0..k)
                        .find(|i| !have_data.iter().any(|(j, _)| j == i))
                        .ok_or_else(|| RaidError::BadGeometry {
                            detail: "no missing data index despite erasure count".into(),
                        })?;
                    let mut present: Vec<&[u8]> = have_data.iter().map(|(_, s)| *s).collect();
                    present.push(p);
                    let rec = raid5::reconstruct(&present)?;
                    let mut slots: Vec<Option<Vec<u8>>> = vec![None; k];
                    for (i, s) in &have_data {
                        slots[*i] = Some(s.to_vec());
                    }
                    slots[missing_idx] = Some(rec);
                    slots
                        .into_iter()
                        .enumerate()
                        .map(|(i, s)| {
                            s.ok_or_else(|| RaidError::BadGeometry {
                                detail: format!("data shard {i} not reconstructed"),
                            })
                        })
                        .collect::<Result<_>>()?
                }
                RaidLevel::Raid6 => {
                    let survivors: Vec<raid6::Shard<'_>> = available
                        .iter()
                        .map(|(i, s)| raid6::Shard {
                            id: if *i < k {
                                raid6::ShardId::Data(*i)
                            } else if *i == k {
                                raid6::ShardId::P
                            } else {
                                raid6::ShardId::Q
                            },
                            data: s,
                        })
                        .collect();
                    raid6::reconstruct(k, &survivors)?
                }
                RaidLevel::Rs { parity } => {
                    let codec = rs::RsCodec::new(k, parity as usize)?;
                    codec.reconstruct(available)?
                }
            }
        };

        // Concatenate and trim padding.
        let width = data.first().map_or(0, |d| d.len());
        let mut blob = Vec::with_capacity(width * k);
        for d in &data {
            if d.len() != width {
                return Err(RaidError::ShardLengthMismatch);
            }
            blob.extend_from_slice(d);
        }
        if original_len > blob.len() {
            return Err(RaidError::BadGeometry {
                detail: format!(
                    "original_len {original_len} exceeds stripe capacity {}",
                    blob.len()
                ),
            });
        }
        blob.truncate(original_len);
        Ok(blob)
    }

    /// Rebuilds **one** shard (data `0..k`, parity `k` = P, `k+1` = Q) from
    /// the surviving shards — the repair path's workhorse: a scrubber that
    /// found a single lost shard re-materializes exactly that shard instead
    /// of decoding and re-encoding the whole stripe.
    ///
    /// All shards in `available` must share one width; the returned shard
    /// has that width (parity shards always do; data shards may need the
    /// caller to trim trailing padding using its recorded stored length).
    pub fn reconstruct_shard(
        &self,
        available: &[(usize, &[u8])],
        target: usize,
    ) -> Result<Vec<u8>> {
        let k = self.data_shards;
        let total = self.total_shards();
        if target >= total {
            return Err(RaidError::BadGeometry {
                detail: format!("target shard {target} out of range (total {total})"),
            });
        }
        // A surviving copy of the target needs no math.
        if let Some((_, s)) = available.iter().find(|(i, _)| *i == target) {
            return Ok(s.to_vec());
        }
        let width = available.first().map_or(0, |(_, s)| s.len());
        // Rebuild the full data section (decode already handles every
        // erasure pattern the level tolerates), then either slice out the
        // missing data shard or recompute the missing parity from it.
        let others: Vec<(usize, &[u8])> = available
            .iter()
            .filter(|(i, _)| *i != target)
            .copied()
            .collect();
        let blob = self.decode(&others, k * width)?;
        if target < k {
            return Ok(blob[target * width..(target + 1) * width].to_vec());
        }
        let data: Vec<&[u8]> = blob.chunks(width.max(1)).take(k).collect();
        let data = if width == 0 {
            vec![&[] as &[u8]; k]
        } else {
            data
        };
        match (self.level, target - k) {
            (RaidLevel::Raid5, 0) => raid5::parity(&data),
            (RaidLevel::Raid6, 0) => Ok(raid6::parity(&data)?.p),
            (RaidLevel::Raid6, 1) => Ok(raid6::parity(&data)?.q),
            (RaidLevel::Rs { parity }, r) if r < parity as usize => {
                let codec = rs::RsCodec::new(k, parity as usize)?;
                Ok(codec.parity(&data)?.swap_remove(r))
            }
            _ => Err(RaidError::BadGeometry {
                detail: format!("level {} has no parity shard {target}", self.level),
            }),
        }
    }

    // Observed variants: identical semantics to the plain methods, but
    // count the operation and record its CPU time into `tel`. The codec
    // itself carries no handle (it stays `Copy`); callers thread one in.

    /// [`encode`](Self::encode), recording `raid_encodes` and a
    /// `raid_encode_ns` timing into `tel`.
    pub fn encode_observed(&self, blob: &[u8], tel: &TelemetryHandle) -> Result<EncodedStripe> {
        tel.incr("raid_encodes");
        tel.time("raid_encode_ns", || self.encode(blob))
    }

    /// [`decode`](Self::decode), recording `raid_decodes` and a
    /// `raid_decode_ns` timing into `tel`.
    pub fn decode_observed(
        &self,
        available: &[(usize, &[u8])],
        original_len: usize,
        tel: &TelemetryHandle,
    ) -> Result<Vec<u8>> {
        tel.incr("raid_decodes");
        tel.time("raid_decode_ns", || self.decode(available, original_len))
    }

    /// [`reconstruct_shard`](Self::reconstruct_shard), recording
    /// `raid_shard_rebuilds` and a `raid_reconstruct_ns` timing into `tel`.
    pub fn reconstruct_shard_observed(
        &self,
        available: &[(usize, &[u8])],
        target: usize,
        tel: &TelemetryHandle,
    ) -> Result<Vec<u8>> {
        tel.incr("raid_shard_rebuilds");
        tel.time("raid_reconstruct_ns", || {
            self.reconstruct_shard(available, target)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 + 7) as u8).collect()
    }

    fn avail(stripe: &EncodedStripe) -> Vec<(usize, &[u8])> {
        stripe
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.as_slice()))
            .collect()
    }

    #[test]
    fn roundtrip_all_levels_various_sizes() {
        for level in [RaidLevel::None, RaidLevel::Raid5, RaidLevel::Raid6] {
            for k in [1usize, 2, 3, 5, 8] {
                for n in [0usize, 1, 7, 64, 100, 1000] {
                    let codec = StripeCodec::new(k, level).unwrap();
                    let b = blob(n);
                    let enc = codec.encode(&b).unwrap();
                    assert_eq!(enc.shards.len(), codec.total_shards());
                    let dec = codec.decode(&avail(&enc), n).unwrap();
                    assert_eq!(dec, b, "level={level} k={k} n={n}");
                }
            }
        }
    }

    #[test]
    fn duplicate_shard_index_is_an_error_not_a_panic() {
        // A duplicated index used to satisfy the "all data present" count
        // while leaving another slot empty, panicking in the fast path.
        let codec = StripeCodec::new(3, RaidLevel::Raid5).unwrap();
        let enc = codec.encode(&blob(96)).unwrap();
        let mut a = avail(&enc);
        a[1] = a[0]; // shard 0 twice, shard 1 gone
        let err = codec.decode(&a, 96).unwrap_err();
        assert!(matches!(
            err,
            RaidError::BadGeometry { ref detail } if detail.contains("duplicate")
        ));
    }

    #[test]
    fn raid5_survives_any_single_loss() {
        let codec = StripeCodec::new(4, RaidLevel::Raid5).unwrap();
        let b = blob(123);
        let enc = codec.encode(&b).unwrap();
        for lost in 0..codec.total_shards() {
            let a: Vec<(usize, &[u8])> = avail(&enc)
                .into_iter()
                .filter(|(i, _)| *i != lost)
                .collect();
            assert_eq!(codec.decode(&a, 123).unwrap(), b, "lost={lost}");
        }
    }

    #[test]
    fn raid5_two_losses_fail() {
        let codec = StripeCodec::new(4, RaidLevel::Raid5).unwrap();
        let enc = codec.encode(&blob(50)).unwrap();
        let a: Vec<(usize, &[u8])> = avail(&enc)
            .into_iter()
            .filter(|(i, _)| *i != 0 && *i != 1)
            .collect();
        assert!(matches!(
            codec.decode(&a, 50),
            Err(RaidError::TooManyErasures { .. })
        ));
    }

    #[test]
    fn raid6_survives_any_double_loss() {
        let codec = StripeCodec::new(5, RaidLevel::Raid6).unwrap();
        let b = blob(333);
        let enc = codec.encode(&b).unwrap();
        let t = codec.total_shards();
        for l1 in 0..t {
            for l2 in (l1 + 1)..t {
                let a: Vec<(usize, &[u8])> = avail(&enc)
                    .into_iter()
                    .filter(|(i, _)| *i != l1 && *i != l2)
                    .collect();
                assert_eq!(codec.decode(&a, 333).unwrap(), b, "lost {l1},{l2}");
            }
        }
    }

    #[test]
    fn raid6_three_losses_fail() {
        let codec = StripeCodec::new(5, RaidLevel::Raid6).unwrap();
        let enc = codec.encode(&blob(100)).unwrap();
        let a: Vec<(usize, &[u8])> = avail(&enc).into_iter().filter(|(i, _)| *i > 2).collect();
        assert!(matches!(
            codec.decode(&a, 100),
            Err(RaidError::TooManyErasures { .. })
        ));
    }

    #[test]
    fn level_none_requires_everything() {
        let codec = StripeCodec::new(3, RaidLevel::None).unwrap();
        let b = blob(30);
        let enc = codec.encode(&b).unwrap();
        assert_eq!(enc.shards.len(), 3);
        let a: Vec<(usize, &[u8])> = avail(&enc).into_iter().skip(1).collect();
        assert!(matches!(
            codec.decode(&a, 30),
            Err(RaidError::TooManyErasures {
                missing: 1,
                tolerable: 0
            })
        ));
    }

    #[test]
    fn geometry_validation() {
        assert!(StripeCodec::new(0, RaidLevel::Raid5).is_err());
        assert!(StripeCodec::new(256, RaidLevel::Raid6).is_err());
        assert!(StripeCodec::new(255, RaidLevel::Raid6).is_ok());
        let codec = StripeCodec::new(2, RaidLevel::Raid5).unwrap();
        let enc = codec.encode(&blob(10)).unwrap();
        // Out-of-range shard index rejected.
        let bad = [(9usize, enc.shards[0].as_slice())];
        assert!(matches!(
            codec.decode(&bad, 10),
            Err(RaidError::BadGeometry { .. })
        ));
        // original_len larger than capacity rejected.
        let a = avail(&enc);
        assert!(matches!(
            codec.decode(&a, 1000),
            Err(RaidError::BadGeometry { .. })
        ));
    }

    #[test]
    fn parity_counts() {
        assert_eq!(RaidLevel::None.parity_shards(), 0);
        assert_eq!(RaidLevel::Raid5.parity_shards(), 1);
        assert_eq!(RaidLevel::Raid6.parity_shards(), 2);
        assert_eq!(RaidLevel::Rs { parity: 4 }.parity_shards(), 4);
        assert_eq!(format!("{}", RaidLevel::Raid6), "raid6");
        assert_eq!(format!("{}", RaidLevel::Rs { parity: 3 }), "rs3");
    }

    #[test]
    fn for_parity_shards_canonicalizes_small_geometries() {
        assert_eq!(RaidLevel::for_parity_shards(0), RaidLevel::None);
        assert_eq!(RaidLevel::for_parity_shards(1), RaidLevel::Raid5);
        assert_eq!(RaidLevel::for_parity_shards(2), RaidLevel::Raid6);
        assert_eq!(
            RaidLevel::for_parity_shards(3),
            RaidLevel::Rs { parity: 3 }
        );
    }

    #[test]
    fn rs_level_roundtrip_and_loss_tolerance() {
        let level = RaidLevel::Rs { parity: 3 };
        let codec = StripeCodec::new(4, level).unwrap();
        assert_eq!(codec.total_shards(), 7);
        let b = blob(123);
        let enc = codec.encode(&b).unwrap();
        assert_eq!(enc.shards.len(), 7);
        // Any 3 losses decode; shown here by dropping 3 spread-out shards.
        let a: Vec<(usize, &[u8])> = avail(&enc)
            .into_iter()
            .filter(|(i, _)| *i != 0 && *i != 3 && *i != 5)
            .collect();
        assert_eq!(codec.decode(&a, 123).unwrap(), b);
        // Four losses do not.
        let short: Vec<(usize, &[u8])> = avail(&enc)
            .into_iter()
            .filter(|(i, _)| *i > 3)
            .collect();
        assert!(matches!(
            codec.decode(&short, 123),
            Err(RaidError::TooManyErasures { .. })
        ));
        // reconstruct_shard covers data and every parity row.
        for lost in 0..codec.total_shards() {
            let a: Vec<(usize, &[u8])> = avail(&enc)
                .into_iter()
                .filter(|(i, _)| *i != lost)
                .collect();
            assert_eq!(
                codec.reconstruct_shard(&a, lost).unwrap(),
                enc.shards[lost],
                "lost={lost}"
            );
        }
    }

    #[test]
    fn reconstruct_shard_rebuilds_any_single_member() {
        for level in [RaidLevel::Raid5, RaidLevel::Raid6] {
            let codec = StripeCodec::new(4, level).unwrap();
            let b = blob(97);
            let enc = codec.encode(&b).unwrap();
            for lost in 0..codec.total_shards() {
                let a: Vec<(usize, &[u8])> = avail(&enc)
                    .into_iter()
                    .filter(|(i, _)| *i != lost)
                    .collect();
                let rebuilt = codec.reconstruct_shard(&a, lost).unwrap();
                assert_eq!(rebuilt, enc.shards[lost], "level={level} lost={lost}");
            }
        }
    }

    #[test]
    fn reconstruct_shard_rebuilds_under_double_loss_raid6() {
        let codec = StripeCodec::new(5, RaidLevel::Raid6).unwrap();
        let b = blob(211);
        let enc = codec.encode(&b).unwrap();
        let t = codec.total_shards();
        for l1 in 0..t {
            for l2 in (l1 + 1)..t {
                let a: Vec<(usize, &[u8])> = avail(&enc)
                    .into_iter()
                    .filter(|(i, _)| *i != l1 && *i != l2)
                    .collect();
                for lost in [l1, l2] {
                    let rebuilt = codec.reconstruct_shard(&a, lost).unwrap();
                    assert_eq!(rebuilt, enc.shards[lost], "lost {l1},{l2} → {lost}");
                }
            }
        }
    }

    #[test]
    fn reconstruct_shard_returns_surviving_copy_verbatim() {
        let codec = StripeCodec::new(3, RaidLevel::Raid5).unwrap();
        let enc = codec.encode(&blob(40)).unwrap();
        let a = avail(&enc);
        for i in 0..codec.total_shards() {
            assert_eq!(codec.reconstruct_shard(&a, i).unwrap(), enc.shards[i]);
        }
    }

    #[test]
    fn reconstruct_shard_rejects_bad_targets_and_excess_loss() {
        let codec = StripeCodec::new(4, RaidLevel::Raid5).unwrap();
        let enc = codec.encode(&blob(64)).unwrap();
        let a = avail(&enc);
        assert!(matches!(
            codec.reconstruct_shard(&a, 9),
            Err(RaidError::BadGeometry { .. })
        ));
        // Two losses exceed RAID-5's tolerance.
        let short: Vec<(usize, &[u8])> =
            a.into_iter().filter(|(i, _)| *i != 0 && *i != 1).collect();
        assert!(matches!(
            codec.reconstruct_shard(&short, 0),
            Err(RaidError::TooManyErasures { .. })
        ));
    }

    #[test]
    fn observed_variants_match_plain_and_record() {
        let tel = TelemetryHandle::enabled();
        let codec = StripeCodec::new(4, RaidLevel::Raid5).unwrap();
        let b = blob(77);
        let enc = codec.encode_observed(&b, &tel).unwrap();
        assert_eq!(enc, codec.encode(&b).unwrap());
        let a: Vec<(usize, &[u8])> = avail(&enc).into_iter().filter(|(i, _)| *i != 1).collect();
        assert_eq!(codec.decode_observed(&a, 77, &tel).unwrap(), b);
        assert_eq!(
            codec.reconstruct_shard_observed(&a, 1, &tel).unwrap(),
            enc.shards[1]
        );
        let reg = tel.registry().unwrap();
        assert_eq!(reg.counter_total("raid_encodes"), 1);
        assert_eq!(reg.counter_total("raid_decodes"), 1);
        assert_eq!(reg.counter_total("raid_shard_rebuilds"), 1);
        assert_eq!(reg.histogram("raid_encode_ns", "").count(), 1);
        // A disabled handle records nothing but behaves identically.
        let off = TelemetryHandle::disabled();
        assert_eq!(codec.decode_observed(&a, 77, &off).unwrap(), b);
    }

    #[test]
    fn storage_overhead_is_parity_only() {
        let b = blob(1000);
        let codec = StripeCodec::new(5, RaidLevel::Raid6).unwrap();
        let enc = codec.encode(&b).unwrap();
        let stored: usize = enc.shards.iter().map(|s| s.len()).sum();
        let width = 1000usize.div_ceil(5);
        assert_eq!(stored, width * 7); // 5 data + P + Q
    }
}
