//! Word-parallel inner kernels behind the RAID-5/6 hot paths.
//!
//! Everything public in [`raid5`](crate::raid5), [`raid6`](crate::raid6)
//! and [`gf256`](crate::gf256) dispatches through this module; the
//! byte-at-a-time reference implementations are kept alongside as
//! `*_scalar` functions so proptests and criterion benches can pin the
//! wide kernels against them.
//!
//! Two techniques carry the speedup:
//!
//! - **SWAR XOR**: parity accumulation works on `u64` words via
//!   `chunks_exact(8)` (eight bytes per op) with a scalar tail, instead of
//!   one byte per iteration.
//! - **Split-nibble GF(2⁸) multiply**: a constant coefficient `c` is
//!   expanded once into two 16-entry product tables (`lo[n] = c·n`,
//!   `hi[n] = c·(n«4)`), so `c·b = lo[b & 0xF] ⊕ hi[b » 4]` — two L1
//!   lookups with no data-dependent branch and no log/exp dependency
//!   chain. The tables are applied eight lanes at a time and the product
//!   word is folded into the accumulator with a single `u64` XOR.

use crate::gf256;

/// XORs `data` into the prefix of `acc` (`acc[i] ^= data[i]`), eight bytes
/// per iteration. `data` may be shorter than `acc` (the suffix of `acc` is
/// untouched) — this is what lets parity run over logically zero-padded
/// shards without materializing the padding.
///
/// # Panics
/// Panics when `data` is longer than `acc`.
pub(crate) fn xor_acc(acc: &mut [u8], data: &[u8]) {
    assert!(
        data.len() <= acc.len(),
        "kernel::xor_acc: data longer than accumulator"
    );
    let acc = &mut acc[..data.len()];
    let mut aw = acc.chunks_exact_mut(8);
    let mut dw = data.chunks_exact(8);
    for (ac, dc) in (&mut aw).zip(&mut dw) {
        // fraglint: allow(no-unwrap-in-lib) — `chunks_exact(8)` guarantees
        // both slices are exactly 8 bytes.
        let x = u64::from_ne_bytes((&*ac).try_into().expect("8-byte chunk"))
            ^ u64::from_ne_bytes(dc.try_into().expect("8-byte chunk")); // fraglint: allow(no-unwrap-in-lib)
        ac.copy_from_slice(&x.to_ne_bytes());
    }
    for (ab, &db) in aw.into_remainder().iter_mut().zip(dw.remainder()) {
        *ab ^= db;
    }
}

/// Split-nibble product tables for one GF(2⁸) coefficient.
///
/// `lo[n] = c·n` and `hi[n] = c·(n«4)` for `n` in `0..16`; by linearity of
/// the field over GF(2), `c·b = lo[b & 0xF] ⊕ hi[b » 4]` for every byte
/// `b`. Thirty-two bytes total, so both tables stay resident in L1 for the
/// whole slice walk.
#[derive(Debug)]
pub(crate) struct NibbleTables {
    lo: [u8; 16],
    hi: [u8; 16],
}

impl NibbleTables {
    /// Builds the tables for coefficient `c`.
    pub(crate) fn new(c: u8) -> Self {
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for n in 0..16u8 {
            lo[n as usize] = gf256::mul(c, n);
            hi[n as usize] = gf256::mul(c, n << 4);
        }
        NibbleTables { lo, hi }
    }

    /// Multiplies one byte by the table's coefficient.
    #[inline(always)]
    pub(crate) fn mul(&self, b: u8) -> u8 {
        // Both indices are provably < 16, so the bounds checks compile out.
        self.lo[(b & 0x0F) as usize] ^ self.hi[(b >> 4) as usize]
    }
}

/// `acc[i] ^= c · data[i]` over the prefix `..data.len()` through the
/// split-nibble tables: 16 lanes per iteration via `pshufb` where the CPU
/// has SSSE3, 8 lanes per iteration otherwise.
///
/// # Panics
/// Panics when `data` is longer than `acc`.
pub(crate) fn mul_acc_wide(acc: &mut [u8], data: &[u8], t: &NibbleTables) {
    assert!(
        data.len() <= acc.len(),
        "kernel::mul_acc_wide: data longer than accumulator"
    );
    let acc = &mut acc[..data.len()];
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("ssse3") {
        // SAFETY: SSSE3 availability was just verified at runtime.
        unsafe { x86::mul_acc_ssse3(acc, data, t) };
        return;
    }
    mul_acc_portable(acc, data, t);
}

/// Portable word-wise body of [`mul_acc_wide`]: the two 16-entry tables
/// applied to eight lanes per iteration, product word folded in with one
/// `u64` XOR.
fn mul_acc_portable(acc: &mut [u8], data: &[u8], t: &NibbleTables) {
    let mut aw = acc.chunks_exact_mut(8);
    let mut dw = data.chunks_exact(8);
    for (ac, dc) in (&mut aw).zip(&mut dw) {
        let mut prod = [0u8; 8];
        for i in 0..8 {
            prod[i] = t.mul(dc[i]);
        }
        // fraglint: allow(no-unwrap-in-lib) — `chunks_exact(8)` guarantees
        // an 8-byte slice.
        let a = u64::from_ne_bytes((&*ac).try_into().expect("8-byte chunk"));
        let x = a ^ u64::from_ne_bytes(prod);
        ac.copy_from_slice(&x.to_ne_bytes());
    }
    for (ab, &db) in aw.into_remainder().iter_mut().zip(dw.remainder()) {
        *ab ^= t.mul(db);
    }
}

/// `data[i] = c · data[i]` in place; same dispatch as [`mul_acc_wide`].
pub(crate) fn mul_slice_wide(data: &mut [u8], t: &NibbleTables) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("ssse3") {
        // SAFETY: SSSE3 availability was just verified at runtime.
        unsafe { x86::mul_slice_ssse3(data, t) };
        return;
    }
    mul_slice_portable(data, t);
}

/// Portable word-wise body of [`mul_slice_wide`].
fn mul_slice_portable(data: &mut [u8], t: &NibbleTables) {
    let mut dw = data.chunks_exact_mut(8);
    for dc in &mut dw {
        let mut prod = [0u8; 8];
        for i in 0..8 {
            prod[i] = t.mul(dc[i]);
        }
        dc.copy_from_slice(&prod);
    }
    for db in dw.into_remainder() {
        *db = t.mul(*db);
    }
}

/// SSSE3 bodies: the same two 16-entry nibble tables, applied to 16 lanes
/// per iteration with `pshufb` (each table register *is* the 16-entry
/// table; the data nibbles are the shuffle indices).
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::NibbleTables;
    use std::arch::x86_64::{
        __m128i, _mm_and_si128, _mm_loadu_si128, _mm_set1_epi8, _mm_shuffle_epi8, _mm_srli_epi64,
        _mm_storeu_si128, _mm_xor_si128,
    };

    /// Product of 16 data lanes with the table coefficient.
    ///
    /// # Safety
    /// Requires SSSE3.
    #[target_feature(enable = "ssse3")]
    #[inline]
    unsafe fn mul16(v: __m128i, lo: __m128i, hi: __m128i, mask: __m128i) -> __m128i {
        let ln = _mm_and_si128(v, mask);
        let hn = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
        _mm_xor_si128(_mm_shuffle_epi8(lo, ln), _mm_shuffle_epi8(hi, hn))
    }

    /// # Safety
    /// Requires SSSE3; `acc` and `data` must have equal lengths (the
    /// dispatcher already trimmed `acc`).
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn mul_acc_ssse3(acc: &mut [u8], data: &[u8], t: &NibbleTables) {
        debug_assert_eq!(acc.len(), data.len());
        let lo = _mm_loadu_si128(t.lo.as_ptr().cast());
        let hi = _mm_loadu_si128(t.hi.as_ptr().cast());
        let mask = _mm_set1_epi8(0x0F);
        let mut aw = acc.chunks_exact_mut(16);
        let mut dw = data.chunks_exact(16);
        for (ac, dc) in (&mut aw).zip(&mut dw) {
            let v = _mm_loadu_si128(dc.as_ptr().cast());
            let cur = _mm_loadu_si128(ac.as_ptr().cast());
            let prod = mul16(v, lo, hi, mask);
            _mm_storeu_si128(ac.as_mut_ptr().cast(), _mm_xor_si128(cur, prod));
        }
        for (ab, &db) in aw.into_remainder().iter_mut().zip(dw.remainder()) {
            *ab ^= t.mul(db);
        }
    }

    /// # Safety
    /// Requires SSSE3.
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn mul_slice_ssse3(data: &mut [u8], t: &NibbleTables) {
        let lo = _mm_loadu_si128(t.lo.as_ptr().cast());
        let hi = _mm_loadu_si128(t.hi.as_ptr().cast());
        let mask = _mm_set1_epi8(0x0F);
        let mut dw = data.chunks_exact_mut(16);
        for dc in &mut dw {
            let v = _mm_loadu_si128(dc.as_ptr().cast());
            let prod = mul16(v, lo, hi, mask);
            _mm_storeu_si128(dc.as_mut_ptr().cast(), prod);
        }
        for db in dw.into_remainder() {
            *db = t.mul(*db);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nibble_tables_match_mul_exhaustive() {
        for c in 0..=255u8 {
            let t = NibbleTables::new(c);
            for b in 0..=255u8 {
                assert_eq!(t.mul(b), gf256::mul(c, b), "c={c} b={b}");
            }
        }
    }

    #[test]
    fn xor_acc_prefix_only() {
        let mut acc = vec![0xAAu8; 20];
        let data = vec![0xFFu8; 13];
        xor_acc(&mut acc, &data);
        assert!(acc[..13].iter().all(|&b| b == 0x55));
        assert!(acc[13..].iter().all(|&b| b == 0xAA));
    }

    #[test]
    #[should_panic(expected = "data longer than accumulator")]
    fn xor_acc_rejects_long_data() {
        let mut acc = [0u8; 2];
        xor_acc(&mut acc, &[0u8; 3]);
    }

    #[test]
    fn dispatch_matches_portable_body() {
        // On x86 this pins the SSSE3 path against the portable loop; on
        // other targets both sides run the same code and it is a no-op.
        for len in [0usize, 1, 5, 8, 15, 16, 17, 31, 33, 257] {
            let data: Vec<u8> = (0..len).map(|i| (i * 89 + 41) as u8).collect();
            let t = NibbleTables::new(0xC3);

            let mut a1: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let mut a2 = a1.clone();
            mul_acc_wide(&mut a1, &data, &t);
            mul_acc_portable(&mut a2, &data, &t);
            assert_eq!(a1, a2, "mul_acc len={len}");

            let mut s1 = data.clone();
            let mut s2 = data.clone();
            mul_slice_wide(&mut s1, &t);
            mul_slice_portable(&mut s2, &t);
            assert_eq!(s1, s2, "mul_slice len={len}");
        }
    }
}
