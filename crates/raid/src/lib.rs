#![warn(missing_docs)]

//! RAID-style erasure coding across cloud providers.
//!
//! The paper (§IV-A) stripes chunks across providers "applying Redundant
//! Array of Independent Disks (RAID) strategy … The default choice is RAID
//! level 5. In case of higher assurance, RAID level 6 is used", following
//! RACS (Abu-Libdeh et al., SoCC'10) in treating **each cloud provider as a
//! separate disk**.
//!
//! This crate implements the coding layer from scratch:
//!
//! - [`gf256`] — arithmetic in GF(2⁸) with the AES polynomial `0x11B`,
//! - [`raid5`] — single-parity XOR striping (tolerates one lost provider),
//! - [`raid6`] — P+Q Reed–Solomon striping (tolerates any two lost
//!   providers),
//! - [`rs`] — general RS(k, m) striping with a systematic
//!   Vandermonde/Cauchy matrix and cached split-nibble kernel tables
//!   (tolerates any `m` lost providers),
//! - [`geometry`] — the shared [`geometry::check_geometry`] validation all
//!   codecs funnel through,
//! - [`stripe`] — a level-agnostic [`stripe::StripeCodec`] facade used by the
//!   distributor.
//!
//! The hot loops dispatch through an internal `kernel` module: u64
//! word-wide SWAR XOR for parity and split-nibble lookup tables for
//! GF(2⁸) slice multiplication. Byte-at-a-time references survive as
//! `*_scalar` functions ([`raid5::parity_scalar`],
//! [`gf256::mul_acc_scalar`], [`gf256::mul_slice_scalar`]) so tests and
//! benches can pin the wide kernels against them.

pub mod geometry;
pub mod gf256;
mod kernel;
pub mod raid5;
pub mod raid6;
pub mod rs;
pub mod stripe;

pub use geometry::check_geometry;
pub use rs::RsCodec;
pub use stripe::{RaidLevel, StripeCodec};

/// Errors produced by the erasure-coding layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaidError {
    /// Stripe geometry is invalid (too few data shards, zero width, …).
    BadGeometry {
        /// Human-readable explanation.
        detail: String,
    },
    /// More shards were lost than the code can tolerate.
    TooManyErasures {
        /// Number of missing shards.
        missing: usize,
        /// Maximum number of erasures the configured level repairs.
        tolerable: usize,
    },
    /// Shards passed to decode have inconsistent lengths.
    ShardLengthMismatch,
}

impl std::fmt::Display for RaidError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RaidError::BadGeometry { detail } => write!(f, "bad stripe geometry: {detail}"),
            RaidError::TooManyErasures { missing, tolerable } => write!(
                f,
                "unrecoverable stripe: {missing} shards missing, can repair {tolerable}"
            ),
            RaidError::ShardLengthMismatch => write!(f, "shards have inconsistent lengths"),
        }
    }
}

impl std::error::Error for RaidError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, RaidError>;
