//! RAID-5: single XOR parity across `k` data shards.
//!
//! Encoding produces one parity shard `P = D₀ ⊕ D₁ ⊕ … ⊕ D_{k−1}`; any one
//! missing shard (data or parity) can be reconstructed. The paper uses this
//! as the default assurance level for distributed chunks (§IV-A).

use crate::geometry::{check_equal_lengths, check_geometry, check_within_width};
use crate::kernel;
use crate::Result;

/// Computes the parity shard for a slice of equal-length data shards
/// through the u64 word-wide XOR kernel ([`parity_scalar`] is the
/// byte-at-a-time reference).
///
/// Returns [`RaidError::BadGeometry`](crate::RaidError::BadGeometry) for an
/// empty input and
/// [`RaidError::ShardLengthMismatch`](crate::RaidError::ShardLengthMismatch)
/// when lengths differ.
pub fn parity(shards: &[&[u8]]) -> Result<Vec<u8>> {
    check_geometry(shards.len(), 1)?;
    check_equal_lengths(shards)?;
    let mut p = shards[0].to_vec();
    for s in &shards[1..] {
        kernel::xor_acc(&mut p, s);
    }
    Ok(p)
}

/// Byte-at-a-time reference implementation of [`parity`], written in
/// definition order: parity byte `i` is the XOR of byte `i` of every
/// shard. Kept for proptests and benches that pin the wide kernel
/// against it.
pub fn parity_scalar(shards: &[&[u8]]) -> Result<Vec<u8>> {
    check_geometry(shards.len(), 1)?;
    let len = check_equal_lengths(shards)?;
    let mut p = vec![0u8; len];
    for idx in 0..len {
        let mut b = 0u8;
        for s in shards {
            b ^= s[idx];
        }
        p[idx] = b;
    }
    Ok(p)
}

/// Parity of shards that are logically zero-padded to `width`: each shard
/// may be shorter than `width`, and the missing suffix contributes
/// nothing to the XOR. Lets stripe encoders skip materializing padded
/// copies of the final (short) shard.
///
/// Returns [`RaidError::BadGeometry`](crate::RaidError::BadGeometry) for an
/// empty input or when a shard exceeds `width`.
pub fn parity_padded(shards: &[&[u8]], width: usize) -> Result<Vec<u8>> {
    let mut p = Vec::new();
    parity_padded_into(shards, width, &mut p)?;
    Ok(p)
}

/// [`parity_padded`] writing into a caller-provided buffer (cleared and
/// resized to `width`), so pipelined encoders can recycle parity
/// allocations across stripes.
pub fn parity_padded_into(shards: &[&[u8]], width: usize, out: &mut Vec<u8>) -> Result<()> {
    check_geometry(shards.len(), 1)?;
    check_within_width(shards, width)?;
    out.clear();
    out.resize(width, 0);
    for s in shards {
        kernel::xor_acc(out, s);
    }
    Ok(())
}

/// Reconstructs one missing shard given all the others plus parity.
///
/// `present` holds the `k` surviving shards (data and/or parity, order
/// irrelevant because XOR is commutative): the missing shard is simply the
/// XOR of everything that survived.
pub fn reconstruct(present: &[&[u8]]) -> Result<Vec<u8>> {
    // XOR of all surviving shards = the missing one (data or parity alike).
    parity(present)
}

/// Verifies that data shards and parity are consistent.
pub fn verify(shards: &[&[u8]], parity_shard: &[u8]) -> Result<bool> {
    let p = parity(shards)?;
    Ok(p == parity_shard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RaidError;

    #[test]
    fn parity_of_single_shard_is_shard() {
        let d = [1u8, 2, 3];
        assert_eq!(parity(&[&d]).unwrap(), d.to_vec());
    }

    #[test]
    fn parity_xor_known() {
        let a = [0b1010u8];
        let b = [0b0110u8];
        assert_eq!(parity(&[&a, &b]).unwrap(), vec![0b1100u8]);
    }

    #[test]
    fn reconstruct_any_data_shard() {
        let shards: Vec<Vec<u8>> = vec![vec![1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]];
        let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
        let p = parity(&refs).unwrap();
        for missing in 0..shards.len() {
            let mut present: Vec<&[u8]> = Vec::new();
            for (i, s) in shards.iter().enumerate() {
                if i != missing {
                    present.push(s);
                }
            }
            present.push(&p);
            let rec = reconstruct(&present).unwrap();
            assert_eq!(rec, shards[missing], "failed for shard {missing}");
        }
    }

    #[test]
    fn reconstruct_parity_shard() {
        let shards: Vec<Vec<u8>> = vec![vec![10, 20], vec![30, 40]];
        let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
        let p = parity(&refs).unwrap();
        // Parity lost: recompute from data alone.
        let rec = reconstruct(&refs).unwrap();
        assert_eq!(rec, p);
    }

    #[test]
    fn verify_detects_corruption() {
        let a = [1u8, 2];
        let b = [3u8, 4];
        let p = parity(&[&a, &b]).unwrap();
        assert!(verify(&[&a, &b], &p).unwrap());
        let mut bad = p.clone();
        bad[0] ^= 0xFF;
        assert!(!verify(&[&a, &b], &bad).unwrap());
    }

    #[test]
    fn errors() {
        assert!(matches!(parity(&[]), Err(RaidError::BadGeometry { .. })));
        let a = [1u8, 2];
        let b = [3u8];
        assert_eq!(
            parity(&[&a, &b]).unwrap_err(),
            RaidError::ShardLengthMismatch
        );
    }

    #[test]
    fn empty_width_shards_ok() {
        let a: [u8; 0] = [];
        let p = parity(&[&a[..], &a[..]]).unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn wide_parity_matches_scalar_reference() {
        // Cover word-multiple, tail-carrying, and sub-word widths.
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let shards: Vec<Vec<u8>> = (0..5)
                .map(|i| {
                    (0..len)
                        .map(|b| ((i * 31 + b * 7 + 3) % 251) as u8)
                        .collect()
                })
                .collect();
            let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
            assert_eq!(
                parity(&refs).unwrap(),
                parity_scalar(&refs).unwrap(),
                "len={len}"
            );
        }
    }

    #[test]
    fn padded_parity_matches_explicit_zero_pad() {
        let full: Vec<Vec<u8>> = vec![vec![1, 2, 3, 4], vec![5, 6, 7, 8], vec![9, 10, 0, 0]];
        let short: Vec<Vec<u8>> = vec![vec![1, 2, 3, 4], vec![5, 6, 7, 8], vec![9, 10]];
        let full_refs: Vec<&[u8]> = full.iter().map(|s| s.as_slice()).collect();
        let short_refs: Vec<&[u8]> = short.iter().map(|s| s.as_slice()).collect();
        assert_eq!(
            parity_padded(&short_refs, 4).unwrap(),
            parity(&full_refs).unwrap()
        );
        // Geometry errors.
        assert!(matches!(
            parity_padded(&[], 4),
            Err(RaidError::BadGeometry { .. })
        ));
        assert!(matches!(
            parity_padded(&short_refs, 1),
            Err(RaidError::BadGeometry { .. })
        ));
    }
}
