//! RAID-5: single XOR parity across `k` data shards.
//!
//! Encoding produces one parity shard `P = D₀ ⊕ D₁ ⊕ … ⊕ D_{k−1}`; any one
//! missing shard (data or parity) can be reconstructed. The paper uses this
//! as the default assurance level for distributed chunks (§IV-A).

use crate::{RaidError, Result};

/// Computes the parity shard for a slice of equal-length data shards.
///
/// Returns [`RaidError::BadGeometry`] for an empty input and
/// [`RaidError::ShardLengthMismatch`] when lengths differ.
pub fn parity(shards: &[&[u8]]) -> Result<Vec<u8>> {
    let first = shards.first().ok_or_else(|| RaidError::BadGeometry {
        detail: "RAID-5 needs at least one data shard".into(),
    })?;
    let len = first.len();
    if shards.iter().any(|s| s.len() != len) {
        return Err(RaidError::ShardLengthMismatch);
    }
    let mut p = vec![0u8; len];
    for s in shards {
        for (pb, &sb) in p.iter_mut().zip(*s) {
            *pb ^= sb;
        }
    }
    Ok(p)
}

/// Reconstructs one missing shard given all the others plus parity.
///
/// `present` holds the `k` surviving shards (data and/or parity, order
/// irrelevant because XOR is commutative): the missing shard is simply the
/// XOR of everything that survived.
pub fn reconstruct(present: &[&[u8]]) -> Result<Vec<u8>> {
    // XOR of all surviving shards = the missing one (data or parity alike).
    parity(present)
}

/// Verifies that data shards and parity are consistent.
pub fn verify(shards: &[&[u8]], parity_shard: &[u8]) -> Result<bool> {
    let p = parity(shards)?;
    Ok(p == parity_shard)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_of_single_shard_is_shard() {
        let d = [1u8, 2, 3];
        assert_eq!(parity(&[&d]).unwrap(), d.to_vec());
    }

    #[test]
    fn parity_xor_known() {
        let a = [0b1010u8];
        let b = [0b0110u8];
        assert_eq!(parity(&[&a, &b]).unwrap(), vec![0b1100u8]);
    }

    #[test]
    fn reconstruct_any_data_shard() {
        let shards: Vec<Vec<u8>> = vec![vec![1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]];
        let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
        let p = parity(&refs).unwrap();
        for missing in 0..shards.len() {
            let mut present: Vec<&[u8]> = Vec::new();
            for (i, s) in shards.iter().enumerate() {
                if i != missing {
                    present.push(s);
                }
            }
            present.push(&p);
            let rec = reconstruct(&present).unwrap();
            assert_eq!(rec, shards[missing], "failed for shard {missing}");
        }
    }

    #[test]
    fn reconstruct_parity_shard() {
        let shards: Vec<Vec<u8>> = vec![vec![10, 20], vec![30, 40]];
        let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
        let p = parity(&refs).unwrap();
        // Parity lost: recompute from data alone.
        let rec = reconstruct(&refs).unwrap();
        assert_eq!(rec, p);
    }

    #[test]
    fn verify_detects_corruption() {
        let a = [1u8, 2];
        let b = [3u8, 4];
        let p = parity(&[&a, &b]).unwrap();
        assert!(verify(&[&a, &b], &p).unwrap());
        let mut bad = p.clone();
        bad[0] ^= 0xFF;
        assert!(!verify(&[&a, &b], &bad).unwrap());
    }

    #[test]
    fn errors() {
        assert!(matches!(
            parity(&[]),
            Err(RaidError::BadGeometry { .. })
        ));
        let a = [1u8, 2];
        let b = [3u8];
        assert_eq!(
            parity(&[&a, &b]).unwrap_err(),
            RaidError::ShardLengthMismatch
        );
    }

    #[test]
    fn empty_width_shards_ok() {
        let a: [u8; 0] = [];
        let p = parity(&[&a[..], &a[..]]).unwrap();
        assert!(p.is_empty());
    }
}
