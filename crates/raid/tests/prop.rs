//! Property tests for the erasure-coding layer.

use fragcloud_raid::{gf256, raid5, raid6, RaidLevel, RsCodec, StripeCodec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Field axioms on random elements.
    #[test]
    fn gf256_field_axioms(a: u8, b: u8, c: u8) {
        // Commutativity and associativity of multiplication.
        prop_assert_eq!(gf256::mul(a, b), gf256::mul(b, a));
        prop_assert_eq!(gf256::mul(gf256::mul(a, b), c), gf256::mul(a, gf256::mul(b, c)));
        // Distributivity over addition (xor).
        prop_assert_eq!(
            gf256::mul(a, gf256::add(b, c)),
            gf256::add(gf256::mul(a, b), gf256::mul(a, c))
        );
        // Inverse law.
        if a != 0 {
            prop_assert_eq!(gf256::mul(a, gf256::inv(a)), 1);
            prop_assert_eq!(gf256::div(gf256::mul(a, b), a), b);
        }
    }

    /// RAID-5 parity is its own reconstruction for every erased position.
    #[test]
    fn raid5_reconstructs_any_position(
        data in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..64),
            2..6,
        ),
        lose_pick in any::<usize>(),
    ) {
        // Equalize lengths.
        let width = data.iter().map(Vec::len).max().expect("non-empty stripe");
        let shards: Vec<Vec<u8>> = data
            .into_iter()
            .map(|mut s| {
                s.resize(width, 0);
                s
            })
            .collect();
        let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
        let p = raid5::parity(&refs).expect("valid stripe");
        let lose = lose_pick % shards.len();
        let mut present: Vec<&[u8]> = refs
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != lose)
            .map(|(_, s)| *s)
            .collect();
        present.push(&p);
        prop_assert_eq!(raid5::reconstruct(&present).expect("one loss"), shards[lose].clone());
    }

    /// RAID-6 verify accepts generated parity and rejects any bit flip.
    #[test]
    fn raid6_verify_detects_any_single_bitflip(
        data in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 4..32),
            2..5,
        ),
        flip_shard in any::<usize>(),
        flip_byte in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let width = data.iter().map(Vec::len).max().expect("non-empty");
        let shards: Vec<Vec<u8>> = data
            .into_iter()
            .map(|mut s| {
                s.resize(width, 0);
                s
            })
            .collect();
        let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
        let pq = raid6::parity(&refs).expect("valid stripe");
        prop_assert!(raid6::verify(&refs, &pq).expect("same geometry"));

        let mut corrupted = shards.clone();
        let si = flip_shard % corrupted.len();
        let bi = flip_byte % width;
        corrupted[si][bi] ^= 1 << flip_bit;
        let crefs: Vec<&[u8]> = corrupted.iter().map(|s| s.as_slice()).collect();
        prop_assert!(!raid6::verify(&crefs, &pq).expect("same geometry"));
    }

    /// Codec roundtrip with arbitrary original_len boundaries.
    #[test]
    fn codec_roundtrip_arbitrary_blobs(
        blob in proptest::collection::vec(any::<u8>(), 0..2048),
        k in 1usize..10,
    ) {
        for level in [RaidLevel::None, RaidLevel::Raid5, RaidLevel::Raid6] {
            let codec = StripeCodec::new(k, level).expect("valid geometry");
            let enc = codec.encode(&blob).expect("encode");
            let avail: Vec<(usize, &[u8])> = enc
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| (i, s.as_slice()))
                .collect();
            prop_assert_eq!(codec.decode(&avail, blob.len()).expect("decode"), blob.clone());
        }
    }

    /// The wide (word/SIMD) parity kernel must agree with the
    /// byte-at-a-time scalar reference for every geometry: zero-length
    /// shards, 1..8-byte tails, and misaligned start addresses (sub-slicing
    /// from `offset` shifts the base pointer off word boundaries).
    #[test]
    fn wide_parity_matches_scalar_reference(
        data in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..130),
            1..6,
        ),
        offset in 0usize..8,
    ) {
        let width = data.iter().map(Vec::len).max().unwrap_or(0);
        let shards: Vec<Vec<u8>> = data
            .into_iter()
            .map(|mut s| {
                s.resize(width, 0);
                s
            })
            .collect();
        let off = offset.min(width);
        let refs: Vec<&[u8]> = shards.iter().map(|s| &s[off..]).collect();
        prop_assert_eq!(raid5::parity(&refs).expect("wide"), raid5::parity_scalar(&refs).expect("scalar"));
    }

    /// Wide `mul_slice` ≡ scalar reference across lengths 0..257 and
    /// misaligned sub-slices.
    #[test]
    fn wide_mul_slice_matches_scalar_reference(
        data in proptest::collection::vec(any::<u8>(), 0..257),
        c: u8,
        offset in 0usize..8,
    ) {
        let off = offset.min(data.len());
        let mut wide = data[off..].to_vec();
        let mut scalar = wide.clone();
        gf256::mul_slice(&mut wide, c);
        gf256::mul_slice_scalar(&mut scalar, c);
        prop_assert_eq!(wide, scalar);
    }

    /// Wide `mul_acc` ≡ scalar reference across lengths (including the
    /// c == 0 and c == 1 special-cased dispatch arms) and misaligned
    /// sub-slices.
    #[test]
    fn wide_mul_acc_matches_scalar_reference(
        data in proptest::collection::vec(any::<u8>(), 0..257),
        c: u8,
        offset in 0usize..8,
    ) {
        let off = offset.min(data.len());
        let src = &data[off..];
        let mut acc_wide: Vec<u8> = (0..src.len()).map(|i| (i * 37 + 11) as u8).collect();
        let mut acc_scalar = acc_wide.clone();
        gf256::mul_acc(&mut acc_wide, src, c);
        gf256::mul_acc_scalar(&mut acc_scalar, src, c);
        prop_assert_eq!(acc_wide, acc_scalar);
    }

    /// The padded-parity fast path (no materialized zero-pad) must match
    /// parity over explicitly padded shards, for both RAID levels.
    #[test]
    fn padded_parity_matches_explicit_padding(
        data in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64),
            1..5,
        ),
    ) {
        let width = data.iter().map(Vec::len).max().unwrap_or(0);
        let padded: Vec<Vec<u8>> = data
            .iter()
            .map(|s| {
                let mut p = s.clone();
                p.resize(width, 0);
                p
            })
            .collect();
        let short_refs: Vec<&[u8]> = data.iter().map(|s| s.as_slice()).collect();
        let full_refs: Vec<&[u8]> = padded.iter().map(|s| s.as_slice()).collect();
        prop_assert_eq!(
            raid5::parity_padded(&short_refs, width).expect("padded"),
            raid5::parity(&full_refs).expect("full")
        );
        let pq_padded = raid6::parity_padded(&short_refs, width).expect("padded");
        let pq_full = raid6::parity(&full_refs).expect("full");
        prop_assert_eq!(pq_padded.p, pq_full.p);
        prop_assert_eq!(pq_padded.q, pq_full.q);
    }

    /// RS(k, m) round-trip under an arbitrary erasure pattern of up to m
    /// losses: shard widths are arbitrary (including zero and sub-word
    /// tails) and the shards are viewed through a misaligned sub-slice so
    /// the SIMD kernels cross word boundaries off-base.
    #[test]
    fn rs_roundtrips_any_erasure_pattern_up_to_m(
        k in 1usize..10,
        m in 1usize..5,
        width in 0usize..130,
        offset in 0usize..8,
        loss_seed in any::<u64>(),
        fill in any::<u8>(),
    ) {
        let shards: Vec<Vec<u8>> = (0..k)
            .map(|i| {
                (0..width)
                    .map(|b| (b as u8).wrapping_mul(31).wrapping_add(i as u8) ^ fill)
                    .collect()
            })
            .collect();
        let off = offset.min(width);
        let refs: Vec<&[u8]> = shards.iter().map(|s| &s[off..]).collect();
        let codec = RsCodec::new(k, m).expect("valid geometry");
        let parity = codec.parity(&refs).expect("encode");
        prop_assert_eq!(&parity, &codec.parity_scalar(&refs).expect("scalar"));

        // Erase up to m members chosen by the seed (possibly fewer when
        // the seed picks duplicates — any pattern ≤ m must decode).
        let total = k + m;
        let mut lost = std::collections::HashSet::new();
        let mut s = loss_seed;
        for _ in 0..m {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            lost.insert((s >> 33) as usize % total);
        }
        let avail: Vec<(usize, &[u8])> = refs
            .iter()
            .copied()
            .chain(parity.iter().map(|p| p.as_slice()))
            .enumerate()
            .filter(|(i, _)| !lost.contains(i))
            .collect();
        let rec = codec.reconstruct(&avail).expect("within tolerance");
        prop_assert_eq!(rec, refs.iter().map(|r| r.to_vec()).collect::<Vec<_>>());
    }

    /// Equivalence: RS(k, 1) parity is byte-identical to RAID-5, and
    /// RS(k, 2) to RAID-6's P and Q — so a stripe written under the
    /// dedicated levels decodes under the matrix codec and vice versa.
    #[test]
    fn rs_small_m_matches_dedicated_codes(
        data in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..100),
            1..8,
        ),
    ) {
        let width = data.iter().map(Vec::len).max().unwrap_or(0);
        let shards: Vec<Vec<u8>> = data
            .into_iter()
            .map(|mut s| {
                s.resize(width, 0);
                s
            })
            .collect();
        let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
        let k = refs.len();

        let rs1 = RsCodec::new(k, 1).expect("geometry").parity(&refs).expect("rs1");
        prop_assert_eq!(&rs1[0], &raid5::parity(&refs).expect("raid5"));

        let rs2 = RsCodec::new(k, 2).expect("geometry").parity(&refs).expect("rs2");
        let pq = raid6::parity(&refs).expect("raid6");
        prop_assert_eq!(&rs2[0], &pq.p);
        prop_assert_eq!(&rs2[1], &pq.q);
    }

    /// The stripe facade's Rs level round-trips arbitrary blobs like the
    /// dedicated levels do.
    #[test]
    fn codec_roundtrip_rs_levels(
        blob in proptest::collection::vec(any::<u8>(), 0..1024),
        k in 1usize..8,
        m in 3usize..6,
    ) {
        let codec = StripeCodec::new(k, RaidLevel::Rs { parity: m as u8 })
            .expect("valid geometry");
        let enc = codec.encode(&blob).expect("encode");
        prop_assert_eq!(enc.shards.len(), k + m);
        let avail: Vec<(usize, &[u8])> = enc
            .shards
            .iter()
            .enumerate()
            .skip(m) // lose the first m members — worst case for data loss
            .map(|(i, s)| (i, s.as_slice()))
            .collect();
        prop_assert_eq!(codec.decode(&avail, blob.len()).expect("decode"), blob.clone());
    }

    /// Parity is linear: P(a ⊕ b) = P(a) ⊕ P(b) over same-width shard sets.
    #[test]
    fn raid5_parity_is_linear(
        a in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 16), 3),
        b in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 16), 3),
    ) {
        let xor: Vec<Vec<u8>> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| x.iter().zip(y).map(|(p, q)| p ^ q).collect())
            .collect();
        let pa = raid5::parity(&a.iter().map(|s| s.as_slice()).collect::<Vec<_>>()).expect("a");
        let pb = raid5::parity(&b.iter().map(|s| s.as_slice()).collect::<Vec<_>>()).expect("b");
        let pxor = raid5::parity(&xor.iter().map(|s| s.as_slice()).collect::<Vec<_>>()).expect("xor");
        let manual: Vec<u8> = pa.iter().zip(&pb).map(|(x, y)| x ^ y).collect();
        prop_assert_eq!(pxor, manual);
    }
}
