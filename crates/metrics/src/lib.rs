#![warn(missing_docs)]

//! Privacy and mining-degradation metrics.
//!
//! The paper argues qualitatively that fragmentation degrades mining
//! ("many entities have moved from their original cluster to other
//! clusters", "all of these equations are misleading"). This crate turns
//! those claims into numbers:
//!
//! - [`cluster`] — Rand index, Adjusted Rand Index and migration rate
//!   between a full-data clustering and a fragment clustering (Figs. 4–6);
//! - [`regression`] — coefficient drift and prediction error between the
//!   full-data fit and fragment fits (Table IV / §VII-A);
//! - [`rules`] — recall/precision of association rules surviving
//!   fragmentation;
//! - [`exposure`] — how much of a client's data an attacker controlling
//!   `k` of `n` providers actually observes.

pub mod cluster;
pub mod exposure;
pub mod regression;
pub mod rules;

pub use cluster::{adjusted_rand_index, migration_rate, rand_index};
pub use regression::{coefficient_distance, CoefficientDrift};
pub use rules::{rule_precision, rule_recall};
