//! Regression-attack degradation metrics.
//!
//! §VII-A: the full-data fit recovers the true pricing model; the three
//! fragment fits are "all … misleading". These metrics quantify
//! *how* misleading: distance in coefficient space and error when the
//! attacker uses a fragment-trained model to predict the truth.

use fragcloud_mining::regression::RegressionModel;

/// Drift of one model's coefficients relative to a reference model.
#[derive(Debug, Clone, PartialEq)]
pub struct CoefficientDrift {
    /// Euclidean distance between coefficient vectors (slopes + intercept).
    pub euclidean: f64,
    /// Largest absolute per-coefficient difference.
    pub max_abs: f64,
    /// Mean relative error of the slopes, `mean(|Δcᵢ| / max(|cᵢ_ref|, ε))`.
    pub mean_relative_slope_error: f64,
}

/// Compares two fitted models with identical predictor sets.
///
/// # Panics
/// Panics when the models have different predictor lists.
pub fn coefficient_distance(
    reference: &RegressionModel,
    other: &RegressionModel,
) -> CoefficientDrift {
    assert_eq!(
        reference.predictors, other.predictors,
        "models must share the predictor set"
    );
    let a = &reference.fit.coefficients;
    let b = &other.fit.coefficients;
    let euclidean = a
        .iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt();
    let max_abs = a
        .iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max);
    let eps = 1e-9;
    let n_slopes = reference.predictors.len();
    let mean_relative_slope_error = a[..n_slopes]
        .iter()
        .zip(&b[..n_slopes])
        .map(|(x, y)| (x - y).abs() / x.abs().max(eps))
        .sum::<f64>()
        / n_slopes as f64;
    CoefficientDrift {
        euclidean,
        max_abs,
        mean_relative_slope_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragcloud_mining::Dataset;

    fn model(slope: f64, icept: f64) -> RegressionModel {
        let mut d = Dataset::new(vec!["x".into(), "y".into()]);
        for i in 0..8 {
            let x = i as f64;
            d.push(vec![x, slope * x + icept]);
        }
        RegressionModel::fit(&d, &["x"], "y").unwrap()
    }

    #[test]
    fn identical_models_drift_zero() {
        let m = model(2.0, 5.0);
        let d = coefficient_distance(&m, &m);
        assert!(d.euclidean < 1e-9);
        assert!(d.max_abs < 1e-9);
        assert!(d.mean_relative_slope_error < 1e-9);
    }

    #[test]
    fn known_drift() {
        let a = model(2.0, 0.0);
        let b = model(3.0, 0.0);
        let d = coefficient_distance(&a, &b);
        assert!((d.euclidean - 1.0).abs() < 1e-6);
        assert!((d.max_abs - 1.0).abs() < 1e-6);
        assert!((d.mean_relative_slope_error - 0.5).abs() < 1e-6);
    }

    #[test]
    fn intercept_counts_in_euclidean_not_slope_error() {
        let a = model(2.0, 0.0);
        let b = model(2.0, 10.0);
        let d = coefficient_distance(&a, &b);
        assert!((d.euclidean - 10.0).abs() < 1e-6);
        assert!(d.mean_relative_slope_error < 1e-6);
    }

    #[test]
    #[should_panic(expected = "share the predictor set")]
    fn mismatched_predictors_panic() {
        let a = model(1.0, 0.0);
        let mut d = Dataset::new(vec!["z".into(), "y".into()]);
        for i in 0..8 {
            d.push(vec![i as f64, i as f64]);
        }
        let b = RegressionModel::fit(&d, &["z"], "y").unwrap();
        coefficient_distance(&a, &b);
    }
}
