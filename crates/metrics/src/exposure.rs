//! Attacker-exposure accounting.
//!
//! §III-B: "Distribution of data chunks among multiple providers restricts
//! a cloud provider from accessing all chunks of a client." These helpers
//! quantify what an attacker who compromises `k` of `n` providers actually
//! holds.

/// Exposure of one client's data to an attacker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exposure {
    /// Fraction of the client's chunks observed.
    pub chunk_fraction: f64,
    /// Fraction of the client's bytes observed.
    pub byte_fraction: f64,
}

/// Computes exposure from per-provider holdings.
///
/// `chunks_per_provider[i]` / `bytes_per_provider[i]` describe what provider
/// `i` stores for the victim; `compromised` flags the providers the attacker
/// controls.
///
/// # Panics
/// Panics when the slice lengths disagree.
pub fn exposure(
    chunks_per_provider: &[usize],
    bytes_per_provider: &[u64],
    compromised: &[bool],
) -> Exposure {
    assert_eq!(chunks_per_provider.len(), bytes_per_provider.len());
    assert_eq!(chunks_per_provider.len(), compromised.len());
    let total_chunks: usize = chunks_per_provider.iter().sum();
    let total_bytes: u64 = bytes_per_provider.iter().sum();
    let seen_chunks: usize = chunks_per_provider
        .iter()
        .zip(compromised)
        .filter(|(_, &c)| c)
        .map(|(&n, _)| n)
        .sum();
    let seen_bytes: u64 = bytes_per_provider
        .iter()
        .zip(compromised)
        .filter(|(_, &c)| c)
        .map(|(&n, _)| n)
        .sum();
    Exposure {
        chunk_fraction: if total_chunks == 0 {
            0.0
        } else {
            seen_chunks as f64 / total_chunks as f64
        },
        byte_fraction: if total_bytes == 0 {
            0.0
        } else {
            seen_bytes as f64 / total_bytes as f64
        },
    }
}

/// Expected byte exposure when the attacker compromises `k` uniformly
/// random providers out of `n` holding equal shares: simply `k / n`.
pub fn expected_uniform_exposure(k: usize, n: usize) -> f64 {
    assert!(n > 0 && k <= n);
    k as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_compromise_no_exposure() {
        let e = exposure(&[10, 10, 10], &[100, 100, 100], &[false, false, false]);
        assert_eq!(e.chunk_fraction, 0.0);
        assert_eq!(e.byte_fraction, 0.0);
    }

    #[test]
    fn full_compromise_full_exposure() {
        let e = exposure(&[5, 5], &[10, 30], &[true, true]);
        assert_eq!(e.chunk_fraction, 1.0);
        assert_eq!(e.byte_fraction, 1.0);
    }

    #[test]
    fn partial_compromise_weighted_by_holdings() {
        let e = exposure(&[1, 3], &[10, 30], &[true, false]);
        assert!((e.chunk_fraction - 0.25).abs() < 1e-12);
        assert!((e.byte_fraction - 0.25).abs() < 1e-12);
    }

    #[test]
    fn single_provider_baseline_is_total_exposure() {
        // The paper's core point: with one provider, one compromise = 100%.
        let e = exposure(&[40], &[4096], &[true]);
        assert_eq!(e.byte_fraction, 1.0);
    }

    #[test]
    fn empty_holdings_are_zero() {
        let e = exposure(&[0, 0], &[0, 0], &[true, true]);
        assert_eq!(e.chunk_fraction, 0.0);
        assert_eq!(e.byte_fraction, 0.0);
    }

    #[test]
    fn uniform_expectation() {
        assert_eq!(expected_uniform_exposure(1, 4), 0.25);
        assert_eq!(expected_uniform_exposure(4, 4), 1.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        exposure(&[1], &[1, 2], &[true]);
    }
}
