//! Clustering-agreement metrics: Rand index, Adjusted Rand Index,
//! migration rate.
//!
//! §VIII-B observes that after fragmentation "many entities have moved from
//! their original cluster to other clusters". ARI quantifies exactly that:
//! 1.0 = identical partitions (attack unaffected), ≈0 = chance-level
//! agreement (attack defeated).

/// Builds the contingency table between two labelings of the same points.
///
/// # Panics
/// Panics when the labelings have different lengths or are empty.
fn contingency(a: &[usize], b: &[usize]) -> Vec<Vec<usize>> {
    assert_eq!(a.len(), b.len(), "labelings must cover the same points");
    assert!(!a.is_empty(), "labelings must be non-empty");
    let ka = a.iter().max().unwrap() + 1;
    let kb = b.iter().max().unwrap() + 1;
    let mut table = vec![vec![0usize; kb]; ka];
    for (&x, &y) in a.iter().zip(b) {
        table[x][y] += 1;
    }
    table
}

fn choose2(n: usize) -> f64 {
    (n as f64) * (n as f64 - 1.0) / 2.0
}

/// Rand index in `[0, 1]`: fraction of point pairs on which the two
/// partitions agree (same-same or different-different).
pub fn rand_index(a: &[usize], b: &[usize]) -> f64 {
    let table = contingency(a, b);
    let n = a.len();
    let total_pairs = choose2(n);
    if total_pairs == 0.0 {
        return 1.0;
    }
    let sum_cells: f64 = table
        .iter()
        .flat_map(|row| row.iter())
        .map(|&c| choose2(c))
        .sum();
    let sum_rows: f64 = table
        .iter()
        .map(|row| choose2(row.iter().sum::<usize>()))
        .sum();
    let sum_cols: f64 = (0..table[0].len())
        .map(|j| choose2(table.iter().map(|row| row[j]).sum::<usize>()))
        .sum();
    // agreements = same-same pairs + different-different pairs
    let same_same = sum_cells;
    let diff_diff = total_pairs - sum_rows - sum_cols + sum_cells;
    (same_same + diff_diff) / total_pairs
}

/// Adjusted Rand Index: Rand index corrected for chance; 1.0 = identical,
/// ~0 = random agreement, can be negative for adversarial disagreement.
pub fn adjusted_rand_index(a: &[usize], b: &[usize]) -> f64 {
    let table = contingency(a, b);
    let n = a.len();
    let total_pairs = choose2(n);
    if total_pairs == 0.0 {
        return 1.0;
    }
    let index: f64 = table
        .iter()
        .flat_map(|row| row.iter())
        .map(|&c| choose2(c))
        .sum();
    let sum_rows: f64 = table
        .iter()
        .map(|row| choose2(row.iter().sum::<usize>()))
        .sum();
    let sum_cols: f64 = (0..table[0].len())
        .map(|j| choose2(table.iter().map(|row| row[j]).sum::<usize>()))
        .sum();
    let expected = sum_rows * sum_cols / total_pairs;
    let max_index = 0.5 * (sum_rows + sum_cols);
    if (max_index - expected).abs() < 1e-15 {
        // Degenerate partitions (e.g. both all-in-one): define as 1.0 when
        // identical agreement, else 0.
        return if (index - expected).abs() < 1e-15 {
            1.0
        } else {
            0.0
        };
    }
    (index - expected) / (max_index - expected)
}

/// Migration rate: the minimum fraction of points whose label must change
/// to turn partition `b` into partition `a`, after optimally matching
/// cluster labels (greedy maximum matching on the contingency table).
///
/// 0.0 = no entity moved; the paper's "many entities have moved" claim
/// shows up as a large value.
pub fn migration_rate(a: &[usize], b: &[usize]) -> f64 {
    let table = contingency(a, b);
    let n = a.len() as f64;
    // Greedy matching: repeatedly take the largest cell, match its row/col.
    let mut cells: Vec<(usize, usize, usize)> = Vec::new();
    for (i, row) in table.iter().enumerate() {
        for (j, &c) in row.iter().enumerate() {
            if c > 0 {
                cells.push((c, i, j));
            }
        }
    }
    cells.sort_unstable_by_key(|x| std::cmp::Reverse(x.0));
    let mut used_row = vec![false; table.len()];
    let mut used_col = vec![false; table[0].len()];
    let mut matched = 0usize;
    for (c, i, j) in cells {
        if !used_row[i] && !used_col[j] {
            used_row[i] = true;
            used_col[j] = true;
            matched += c;
        }
    }
    1.0 - matched as f64 / n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert_eq!(rand_index(&a, &a), 1.0);
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
        assert_eq!(migration_rate(&a, &a), 0.0);
    }

    #[test]
    fn label_permutation_is_still_perfect() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let b = vec![2, 2, 0, 0, 1, 1];
        assert_eq!(rand_index(&a, &b), 1.0);
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
        assert_eq!(migration_rate(&a, &b), 0.0);
    }

    #[test]
    fn known_ari_value() {
        // Classic example: a=[0,0,1,1], b=[0,0,0,1]
        // contingency: [[2,0],[1,1]]
        // index = C(2,2)+C(1,2)+C(1,2) = 1; sum_rows = 1+1 = 2; sum_cols = C(3,2)+C(1,2)=3
        // expected = 2*3/6 = 1; max = 2.5; ARI = (1-1)/(2.5-1) = 0
        let a = vec![0, 0, 1, 1];
        let b = vec![0, 0, 0, 1];
        assert!((adjusted_rand_index(&a, &b) - 0.0).abs() < 1e-12);
        // Rand index: agreements: pairs (0,1) same-same ✓, (2,3) diff in b ✗,
        // (0,2),(0,3),(1,2),(1,3): a diff; b: (0,2) same ✗,(0,3) diff ✓,(1,2) same ✗,(1,3) diff ✓
        // agree = 3 of 6
        assert!((rand_index(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn migration_counts_moved_points() {
        let a = vec![0, 0, 0, 1, 1, 1];
        let b = vec![0, 0, 1, 1, 1, 1]; // one point moved
        assert!((migration_rate(&a, &b) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn opposite_partitions() {
        // a groups pairs; b groups alternating — heavy disagreement.
        let a = vec![0, 0, 1, 1];
        let b = vec![0, 1, 0, 1];
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari <= 0.0, "ari={ari}");
        assert!(migration_rate(&a, &b) > 0.0);
    }

    #[test]
    fn singleton_vs_lump_degenerate() {
        let a = vec![0, 1, 2, 3];
        let b = vec![0, 0, 0, 0];
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari.abs() < 1e-9, "ari={ari}");
        assert!(rand_index(&a, &b) < 1.0);
    }

    #[test]
    fn both_all_in_one_is_agreement() {
        let a = vec![0, 0, 0];
        assert_eq!(adjusted_rand_index(&a, &a), 1.0);
        assert_eq!(rand_index(&a, &a), 1.0);
    }

    #[test]
    #[should_panic(expected = "same points")]
    fn length_mismatch_panics() {
        rand_index(&[0, 1], &[0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_panics() {
        rand_index(&[], &[]);
    }

    #[test]
    fn ari_bounded_above_by_one_random_partitions() {
        // Pseudo-random partitions: ARI must stay in [-1, 1].
        let a: Vec<usize> = (0..50).map(|i| (i * 7 + 3) % 4).collect();
        let b: Vec<usize> = (0..50).map(|i| (i * 13 + 1) % 5).collect();
        let ari = adjusted_rand_index(&a, &b);
        assert!((-1.0..=1.0).contains(&ari), "ari={ari}");
        let ri = rand_index(&a, &b);
        assert!((0.0..=1.0).contains(&ri));
        let mig = migration_rate(&a, &b);
        assert!((0.0..=1.0).contains(&mig));
    }
}
