//! Association-rule survival metrics.
//!
//! How many of the rules an attacker could mine from the *full* data are
//! still discoverable from a fragment? Recall near 1 means fragmentation
//! did not help; recall near 0 means the association structure was
//! destroyed.

use fragcloud_mining::apriori::Rule;

/// Structural equality key for a rule (antecedent ⇒ consequent).
fn key(rule: &Rule) -> (Vec<u32>, Vec<u32>) {
    (rule.antecedent.clone(), rule.consequent.clone())
}

/// Fraction of `reference` rules present (structurally) in `found`.
/// 1.0 when `reference` is empty (nothing to miss).
pub fn rule_recall(reference: &[Rule], found: &[Rule]) -> f64 {
    if reference.is_empty() {
        return 1.0;
    }
    let found_keys: std::collections::HashSet<_> = found.iter().map(key).collect();
    let hit = reference
        .iter()
        .filter(|r| found_keys.contains(&key(r)))
        .count();
    hit as f64 / reference.len() as f64
}

/// Fraction of `found` rules that are genuine (present in `reference`).
/// Low precision means the fragment led the attacker to *spurious* rules —
/// the paper's "misleading" outcome. 1.0 when `found` is empty.
pub fn rule_precision(reference: &[Rule], found: &[Rule]) -> f64 {
    if found.is_empty() {
        return 1.0;
    }
    let ref_keys: std::collections::HashSet<_> = reference.iter().map(key).collect();
    let hit = found.iter().filter(|r| ref_keys.contains(&key(r))).count();
    hit as f64 / found.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragcloud_mining::apriori::mine_rules;

    fn txs_full() -> Vec<Vec<u32>> {
        // Strong pattern: 1 and 2 co-occur always; 3 independent.
        vec![
            vec![1, 2],
            vec![1, 2, 3],
            vec![1, 2],
            vec![1, 2, 3],
            vec![1, 2],
            vec![3],
        ]
    }

    #[test]
    fn recall_one_when_found_superset() {
        let rules = mine_rules(&txs_full(), 0.3, 0.8).unwrap();
        assert!(!rules.is_empty());
        assert_eq!(rule_recall(&rules, &rules), 1.0);
        assert_eq!(rule_precision(&rules, &rules), 1.0);
    }

    #[test]
    fn recall_zero_when_nothing_found() {
        let rules = mine_rules(&txs_full(), 0.3, 0.8).unwrap();
        assert_eq!(rule_recall(&rules, &[]), 0.0);
        // Empty found set is vacuously precise.
        assert_eq!(rule_precision(&rules, &[]), 1.0);
    }

    #[test]
    fn empty_reference_is_full_recall() {
        let rules = mine_rules(&txs_full(), 0.3, 0.8).unwrap();
        assert_eq!(rule_recall(&[], &rules), 1.0);
        // But those found rules are all spurious w.r.t. empty reference.
        assert_eq!(rule_precision(&[], &rules), 0.0);
    }

    #[test]
    fn fragmentation_reduces_recall_on_skewed_fragment() {
        let full_rules = mine_rules(&txs_full(), 0.3, 0.8).unwrap();
        // A fragment missing most co-occurrences.
        let fragment = vec![vec![3u32], vec![3], vec![1]];
        let frag_rules = mine_rules(&fragment, 0.3, 0.8).unwrap();
        let recall = rule_recall(&full_rules, &frag_rules);
        assert!(recall < 1.0, "recall={recall}");
    }

    #[test]
    fn partial_overlap_counts_fractionally() {
        let rules = mine_rules(&txs_full(), 0.3, 0.8).unwrap();
        assert!(rules.len() >= 2);
        let half = &rules[..rules.len() / 2];
        let r = rule_recall(&rules, half);
        assert!(r > 0.0 && r < 1.0, "recall={r}");
        assert_eq!(rule_precision(&rules, half), 1.0);
    }
}
