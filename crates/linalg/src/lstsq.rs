//! Ordinary least squares with fit diagnostics.

use crate::{matrix::Matrix, qr::Qr, LinalgError, Result};

/// Result of an ordinary-least-squares fit.
#[derive(Debug, Clone)]
pub struct OlsFit {
    /// Fitted coefficients. When an intercept was requested it is the
    /// **last** element (matching the paper's `1.4·M + 1.5·P + 3.1·Mn + 5436`
    /// presentation where the constant is written last).
    pub coefficients: Vec<f64>,
    /// Whether an intercept column was appended.
    pub intercept: bool,
    /// Residuals `y − ŷ`.
    pub residuals: Vec<f64>,
    /// Coefficient of determination R².
    pub r_squared: f64,
    /// Residual sum of squares.
    pub rss: f64,
    /// Total sum of squares around the mean of `y`.
    pub tss: f64,
}

impl OlsFit {
    /// Predicts the response for a single predictor row (without intercept
    /// term; the intercept is added automatically if the fit used one).
    pub fn predict(&self, x: &[f64]) -> f64 {
        let n_pred = if self.intercept {
            self.coefficients.len() - 1
        } else {
            self.coefficients.len()
        };
        assert_eq!(
            x.len(),
            n_pred,
            "predict: expected {n_pred} predictors, got {}",
            x.len()
        );
        let mut y: f64 = x
            .iter()
            .zip(&self.coefficients[..n_pred])
            .map(|(a, b)| a * b)
            .sum();
        if self.intercept {
            y += self.coefficients[n_pred];
        }
        y
    }

    /// Root-mean-square error of the residuals.
    pub fn rmse(&self) -> f64 {
        if self.residuals.is_empty() {
            return 0.0;
        }
        (self.rss / self.residuals.len() as f64).sqrt()
    }
}

/// Fits `y ≈ X·β (+ c)` by QR least squares.
///
/// `x` is the `n × p` predictor matrix (one row per observation). When
/// `intercept` is true a constant column is appended, and the constant is
/// reported as the **last** coefficient.
///
/// Returns [`LinalgError::Underdetermined`] when there are fewer
/// observations than unknowns — the mathematical reason the paper's
/// fragmentation defence degrades regression attacks (§VII-A: "Regression
/// analysis involving many variables requires many sample cases").
pub fn ols(x: &Matrix, y: &[f64], intercept: bool) -> Result<OlsFit> {
    let n = x.rows();
    let p = x.cols() + usize::from(intercept);
    if y.len() != n {
        return Err(LinalgError::ShapeMismatch {
            detail: format!("y length {} != {} rows", y.len(), n),
        });
    }
    if n < p {
        return Err(LinalgError::Underdetermined { rows: n, cols: p });
    }
    // Build the design matrix (optionally with an intercept column last).
    let design = if intercept {
        let mut d = Matrix::zeros(n, p);
        for r in 0..n {
            let src = x.row(r);
            let dst = d.row_mut(r);
            dst[..x.cols()].copy_from_slice(src);
            dst[p - 1] = 1.0;
        }
        d
    } else {
        x.clone()
    };

    let beta = Qr::new(&design)?.solve_lstsq(y)?;

    let yhat = design.matvec(&beta)?;
    let residuals: Vec<f64> = y.iter().zip(&yhat).map(|(a, b)| a - b).collect();
    let rss: f64 = residuals.iter().map(|r| r * r).sum();
    let mean = y.iter().sum::<f64>() / n as f64;
    let tss: f64 = y.iter().map(|v| (v - mean) * (v - mean)).sum();
    let r_squared = if tss > 0.0 { 1.0 - rss / tss } else { 1.0 };

    Ok(OlsFit {
        coefficients: beta,
        intercept,
        residuals,
        r_squared,
        rss,
        tss,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line_with_intercept() {
        // y = 2x + 1
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]).unwrap();
        let y = [1.0, 3.0, 5.0, 7.0];
        let fit = ols(&x, &y, true).unwrap();
        assert!((fit.coefficients[0] - 2.0).abs() < 1e-10);
        assert!((fit.coefficients[1] - 1.0).abs() < 1e-10);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!(fit.rmse() < 1e-10);
        assert!((fit.predict(&[10.0]) - 21.0).abs() < 1e-9);
    }

    #[test]
    fn no_intercept_through_origin() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]).unwrap();
        let y = [2.0, 4.0, 6.0];
        let fit = ols(&x, &y, false).unwrap();
        assert_eq!(fit.coefficients.len(), 1);
        assert!((fit.coefficients[0] - 2.0).abs() < 1e-12);
        assert!((fit.predict(&[5.0]) - 10.0).abs() < 1e-10);
    }

    #[test]
    fn multivariate_known_plane() {
        // y = 3a - 2b + 7
        let rows: Vec<Vec<f64>> = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![2.0, 3.0],
            vec![5.0, 1.0],
        ];
        let slices: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&slices).unwrap();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - 2.0 * r[1] + 7.0).collect();
        let fit = ols(&x, &y, true).unwrap();
        assert!((fit.coefficients[0] - 3.0).abs() < 1e-9);
        assert!((fit.coefficients[1] + 2.0).abs() < 1e-9);
        assert!((fit.coefficients[2] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn underdetermined_rejected() {
        // 2 observations, 2 predictors + intercept = 3 unknowns.
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let y = [1.0, 2.0];
        assert!(matches!(
            ols(&x, &y, true),
            Err(LinalgError::Underdetermined { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn y_length_mismatch_rejected() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        assert!(ols(&x, &[1.0], true).is_err());
    }

    #[test]
    fn r_squared_between_zero_and_one_for_noise() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0], &[5.0]]).unwrap();
        let y = [2.0, 1.0, 3.0, 2.5, 2.0]; // weak relationship
        let fit = ols(&x, &y, true).unwrap();
        assert!(fit.r_squared >= 0.0 && fit.r_squared <= 1.0);
        assert!(fit.rss > 0.0);
    }

    #[test]
    #[should_panic(expected = "predict: expected")]
    fn predict_wrong_arity_panics() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]).unwrap();
        let fit = ols(&x, &[1.0, 2.0, 3.0], true).unwrap();
        let _ = fit.predict(&[1.0, 2.0]);
    }
}
