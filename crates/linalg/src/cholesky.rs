#![allow(clippy::needless_range_loop)] // index form mirrors the math

//! Cholesky decomposition for symmetric positive-definite matrices.

use crate::{matrix::Matrix, LinalgError, Result};

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite matrix.
///
/// Used by the normal-equations OLS path (`XᵀX β = Xᵀy`) and as a fast SPD
/// solver; [`crate::qr::Qr`] is preferred when conditioning is a concern.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor (upper part is zero).
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the input is the
    /// caller's responsibility (Gram matrices always satisfy it).
    pub fn new(a: &Matrix) -> Result<Self> {
        let n = a.rows();
        if a.cols() != n {
            return Err(LinalgError::ShapeMismatch {
                detail: format!(
                    "Cholesky requires square matrix, got {}x{}",
                    a.rows(),
                    a.cols()
                ),
            });
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite);
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Solves `A·x = b` using the factorization.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                detail: format!("rhs length {} != {n}", b.len()),
            });
        }
        // Forward: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l[(i, k)] * y[k];
            }
            y[i] = s / self.l[(i, i)];
        }
        // Backward: Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= self.l[(k, i)] * x[k];
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Returns the lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Log-determinant of `A` (numerically robust product of squares).
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_known_spd() {
        let a = Matrix::from_vec(2, 2, vec![4., 2., 2., 3.]).unwrap();
        let ch = Cholesky::new(&a).unwrap();
        let l = ch.l();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 2.0_f64.sqrt()).abs() < 1e-12);
        // Reconstruct
        let rec = l.matmul(&l.transpose()).unwrap();
        assert!(rec.max_abs_diff(&a).unwrap() < 1e-12);
    }

    #[test]
    fn solve_matches_lu() {
        let a = Matrix::from_vec(3, 3, vec![6., 2., 1., 2., 5., 2., 1., 2., 4.]).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x_ch = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        let x_lu = crate::lu::solve(&a, &b).unwrap();
        for (c, l) in x_ch.iter().zip(&x_lu) {
            assert!((c - l).abs() < 1e-10);
        }
    }

    #[test]
    fn not_positive_definite_detected() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 2., 1.]).unwrap(); // eigenvalues 3, -1
        assert_eq!(
            Cholesky::new(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
        let zero = Matrix::zeros(2, 2);
        assert_eq!(
            Cholesky::new(&zero).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
    }

    #[test]
    fn non_square_rejected() {
        assert!(Cholesky::new(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn log_det_matches_lu_det() {
        let a = Matrix::from_vec(2, 2, vec![4., 2., 2., 3.]).unwrap();
        let ld = Cholesky::new(&a).unwrap().log_det();
        let det = crate::lu::Lu::new(&a).unwrap().det();
        assert!((ld - det.ln()).abs() < 1e-10);
    }

    #[test]
    fn rhs_length_checked() {
        let a = Matrix::identity(2);
        let ch = Cholesky::new(&a).unwrap();
        assert!(ch.solve(&[1.0]).is_err());
    }
}
