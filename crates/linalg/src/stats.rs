//! Summary statistics: mean, variance, covariance, correlation, z-scores.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased (n−1) sample variance; `0.0` when fewer than two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Unbiased sample covariance of two equal-length series.
///
/// # Panics
/// Panics when the lengths differ.
pub fn covariance(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "covariance: length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    xs.iter()
        .zip(ys)
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>()
        / (xs.len() - 1) as f64
}

/// Pearson correlation coefficient in `[-1, 1]`; `0.0` when either series is
/// constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let sx = std_dev(xs);
    let sy = std_dev(ys);
    if sx == 0.0 || sy == 0.0 {
        return 0.0;
    }
    (covariance(xs, ys) / (sx * sy)).clamp(-1.0, 1.0)
}

/// Standardizes a series to zero mean, unit variance. A constant series maps
/// to all zeros.
pub fn z_scores(xs: &[f64]) -> Vec<f64> {
    let m = mean(xs);
    let s = std_dev(xs);
    if s == 0.0 {
        return vec![0.0; xs.len()];
    }
    xs.iter().map(|x| (x - m) / s).collect()
}

/// Minimum and maximum of a slice; `None` when empty or any value is NaN.
pub fn min_max(xs: &[f64]) -> Option<(f64, f64)> {
    if xs.is_empty() || xs.iter().any(|x| x.is_nan()) {
        return None;
    }
    let mut lo = xs[0];
    let mut hi = xs[0];
    for &x in &xs[1..] {
        if x < lo {
            lo = x;
        }
        if x > hi {
            hi = x;
        }
    }
    Some((lo, hi))
}

/// Percentile by linear interpolation (`p` in `[0, 100]`); `None` when empty.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("percentile: NaN in input"));
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0, 6.0]), 4.0);
    }

    #[test]
    fn variance_and_std() {
        assert_eq!(variance(&[5.0]), 0.0);
        // Known: var([2,4,4,4,5,5,7,9]) sample = 32/7
        let v = variance(&[2., 4., 4., 4., 5., 5., 7., 9.]);
        assert!((v - 32.0 / 7.0).abs() < 1e-12);
        assert!(
            (std_dev(&[2., 4., 4., 4., 5., 5., 7., 9.]) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12
        );
    }

    #[test]
    fn covariance_known() {
        let x = [1.0, 2.0, 3.0];
        let y = [2.0, 4.0, 6.0];
        assert!((covariance(&x, &y) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn covariance_length_mismatch_panics() {
        covariance(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn pearson_perfect_and_constant() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [10.0, 20.0, 30.0, 40.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[5.0; 4]), 0.0);
    }

    #[test]
    fn z_scores_properties() {
        let z = z_scores(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(mean(&z).abs() < 1e-12);
        assert!((variance(&z) - 1.0).abs() < 1e-12);
        assert_eq!(z_scores(&[3.0, 3.0, 3.0]), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn min_max_and_percentile() {
        assert_eq!(min_max(&[3.0, 1.0, 2.0]), Some((1.0, 3.0)));
        assert_eq!(min_max(&[]), None);
        assert_eq!(min_max(&[1.0, f64::NAN]), None);
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 50.0), Some(2.5));
        assert_eq!(percentile(&[1.0, 2.0, 3.0], 0.0), Some(1.0));
        assert_eq!(percentile(&[1.0, 2.0, 3.0], 100.0), Some(3.0));
        assert_eq!(percentile(&[], 50.0), None);
    }
}
