#![warn(missing_docs)]

//! Dense linear algebra and summary statistics.
//!
//! This crate is the numerical substrate for the attacker's data-mining
//! toolkit (`fragcloud-mining`). It provides a small, dependency-free
//! dense [`Matrix`] type with the decompositions needed by the paper's
//! attack experiments:
//!
//! - LU with partial pivoting ([`lu::Lu`]) — general linear solves,
//! - exact LU over arbitrary fields ([`field::FieldLu`]) — used by the
//!   erasure-coding layer to invert Reed–Solomon submatrices in GF(2⁸),
//! - Householder QR ([`qr::Qr`]) — numerically stable least squares,
//! - Cholesky ([`cholesky::Cholesky`]) — SPD solves (normal equations),
//! - ordinary least squares ([`lstsq::ols`]) with fit diagnostics (R²),
//! - summary statistics ([`stats`]) — mean, variance, covariance,
//!   Pearson correlation.
//!
//! The paper's Table IV attack is a multiple linear regression fitted with
//! MATLAB; [`lstsq::ols`] reproduces those coefficients on the same data
//! (see `fragcloud-bench`, experiment E2).

pub mod cholesky;
pub mod field;
pub mod lstsq;
pub mod lu;
pub mod matrix;
pub mod qr;
pub mod stats;

pub use field::{Field, FieldLu};
pub use lstsq::{ols, OlsFit};
pub use matrix::Matrix;

/// Errors produced by linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the expected/actual shapes.
        detail: String,
    },
    /// The matrix is singular (or numerically singular) to working precision.
    Singular,
    /// The matrix is not positive definite (Cholesky only).
    NotPositiveDefinite,
    /// The system is underdetermined: fewer rows than columns.
    Underdetermined {
        /// Number of observations (rows).
        rows: usize,
        /// Number of unknowns (columns).
        cols: usize,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
            LinalgError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            LinalgError::Underdetermined { rows, cols } => {
                write!(f, "underdetermined system: {rows} rows < {cols} cols")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
