//! Exact LU decomposition over an arbitrary [`Field`].
//!
//! The f64 [`Lu`](crate::lu::Lu) uses scaled partial pivoting and an
//! epsilon singularity test — both meaningless in a finite field, where
//! every nonzero element is a perfectly good pivot and "numerically
//! singular" does not exist. This module provides the algebraic twin:
//! Doolittle LU with first-nonzero pivoting and an exact zero-pivot
//! singularity test, generic over any type implementing [`Field`].
//!
//! The erasure-coding crate uses it to invert the surviving-row submatrix
//! of a systematic Reed–Solomon generator over GF(2⁸); the tests here pin
//! the algorithm on small prime fields where the arithmetic can be checked
//! by hand.

use crate::{LinalgError, Result};

/// A (commutative) field: the operations exact LU needs, nothing more.
///
/// Implementations must be exact — `add`/`mul` are closed and associative,
/// every element has an additive inverse, every *nonzero* element a
/// multiplicative one. Floating point does **not** qualify (rounding
/// breaks exactness); use [`crate::lu::Lu`] for f64 work.
pub trait Field: Copy + PartialEq {
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Field addition.
    fn add(self, rhs: Self) -> Self;
    /// Field subtraction (`self + (-rhs)`; equals [`add`](Field::add) in
    /// characteristic 2).
    fn sub(self, rhs: Self) -> Self;
    /// Field multiplication.
    fn mul(self, rhs: Self) -> Self;
    /// Multiplicative inverse of a nonzero element; `None` for zero.
    fn inv(self) -> Option<Self>;
}

/// Exact LU decomposition `P·A = L·U` of a square matrix over a field.
///
/// Row-major storage; `n` may be zero (the empty system solves trivially).
#[derive(Debug, Clone)]
pub struct FieldLu<F: Field> {
    /// Packed L (unit diagonal, below) and U (diagonal and above).
    lu: Vec<F>,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    n: usize,
}

impl<F: Field> FieldLu<F> {
    /// Factorizes a square row-major matrix (`rows` of equal length `n`).
    ///
    /// Returns [`LinalgError::ShapeMismatch`] for ragged input and
    /// [`LinalgError::Singular`] when no nonzero pivot exists in some
    /// column — an *exact* test, not an epsilon.
    pub fn decompose(rows: &[Vec<F>]) -> Result<Self> {
        let n = rows.len();
        if rows.iter().any(|r| r.len() != n) {
            return Err(LinalgError::ShapeMismatch {
                detail: format!("FieldLu needs an n x n matrix, n={n}"),
            });
        }
        let mut lu: Vec<F> = Vec::with_capacity(n * n);
        for r in rows {
            lu.extend_from_slice(r);
        }
        let mut perm: Vec<usize> = (0..n).collect();
        for col in 0..n {
            // First nonzero entry on or below the diagonal is the pivot —
            // in an exact field any nonzero element works equally well.
            let pivot_row = (col..n)
                .find(|&r| lu[r * n + col] != F::ZERO)
                .ok_or(LinalgError::Singular)?;
            if pivot_row != col {
                for j in 0..n {
                    lu.swap(col * n + j, pivot_row * n + j);
                }
                perm.swap(col, pivot_row);
            }
            let pivot = lu[col * n + col];
            let pivot_inv = pivot.inv().expect("pivot is nonzero");
            for r in (col + 1)..n {
                let factor = lu[r * n + col].mul(pivot_inv);
                lu[r * n + col] = factor;
                for j in (col + 1)..n {
                    let sub = factor.mul(lu[col * n + j]);
                    lu[r * n + j] = lu[r * n + j].sub(sub);
                }
            }
        }
        Ok(FieldLu { lu, perm, n })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Solves `A·x = b` for one right-hand side.
    pub fn solve(&self, b: &[F]) -> Result<Vec<F>> {
        let n = self.n;
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                detail: format!("rhs length {} != n {}", b.len(), n),
            });
        }
        // Forward: L·y = P·b (unit diagonal).
        let mut x: Vec<F> = self.perm.iter().map(|&p| b[p]).collect();
        for r in 1..n {
            for c in 0..r {
                let sub = self.lu[r * n + c].mul(x[c]);
                x[r] = x[r].sub(sub);
            }
        }
        // Backward: U·x = y.
        for r in (0..n).rev() {
            for c in (r + 1)..n {
                let sub = self.lu[r * n + c].mul(x[c]);
                x[r] = x[r].sub(sub);
            }
            let d = self.lu[r * n + r];
            x[r] = x[r].mul(d.inv().expect("diagonal is nonzero"));
        }
        Ok(x)
    }

    /// The full inverse `A⁻¹`, row-major, via `n` unit-vector solves.
    pub fn inverse(&self) -> Result<Vec<Vec<F>>> {
        let n = self.n;
        let mut cols: Vec<Vec<F>> = Vec::with_capacity(n);
        let mut e = vec![F::ZERO; n];
        for i in 0..n {
            e[i] = F::ONE;
            cols.push(self.solve(&e)?);
            e[i] = F::ZERO;
        }
        // cols[i] is the i-th *column* of the inverse; transpose into rows.
        let mut out = vec![vec![F::ZERO; n]; n];
        for (i, col) in cols.iter().enumerate() {
            for (r, &v) in col.iter().enumerate() {
                out[r][i] = v;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// GF(7): small enough to check against hand arithmetic, prime so
    /// every nonzero element is invertible.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct F7(u8);

    impl Field for F7 {
        const ZERO: Self = F7(0);
        const ONE: Self = F7(1);
        fn add(self, rhs: Self) -> Self {
            F7((self.0 + rhs.0) % 7)
        }
        fn sub(self, rhs: Self) -> Self {
            F7((self.0 + 7 - rhs.0) % 7)
        }
        fn mul(self, rhs: Self) -> Self {
            F7((self.0 * rhs.0) % 7)
        }
        fn inv(self) -> Option<Self> {
            (1..7).map(F7).find(|&x| self.mul(x) == Self::ONE)
        }
    }

    fn mat(rows: &[&[u8]]) -> Vec<Vec<F7>> {
        rows.iter()
            .map(|r| r.iter().map(|&v| F7(v)).collect())
            .collect()
    }

    fn matmul(a: &[Vec<F7>], b: &[Vec<F7>]) -> Vec<Vec<F7>> {
        let n = a.len();
        let mut out = vec![vec![F7::ZERO; n]; n];
        for r in 0..n {
            for c in 0..n {
                for i in 0..n {
                    out[r][c] = out[r][c].add(a[r][i].mul(b[i][c]));
                }
            }
        }
        out
    }

    #[test]
    fn solve_known_system_mod_7() {
        // [2 1; 1 3] x = [5; 4]  (mod 7) → x = (2·3−1)⁻¹ … check by mult.
        let a = mat(&[&[2, 1], &[1, 3]]);
        let lu = FieldLu::decompose(&a).unwrap();
        let x = lu.solve(&[F7(5), F7(4)]).unwrap();
        // Verify A·x = b exactly.
        for (r, &want) in [F7(5), F7(4)].iter().enumerate() {
            let got = a[r][0].mul(x[0]).add(a[r][1].mul(x[1]));
            assert_eq!(got, want, "row {r}");
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index form mirrors the math
    fn inverse_times_matrix_is_identity() {
        let a = mat(&[&[1, 2, 3], &[4, 5, 6], &[6, 6, 1]]);
        let lu = FieldLu::decompose(&a).unwrap();
        let inv = lu.inverse().unwrap();
        let prod = matmul(&inv, &a);
        for r in 0..3 {
            for c in 0..3 {
                let want = if r == c { F7::ONE } else { F7::ZERO };
                assert_eq!(prod[r][c], want, "({r},{c})");
            }
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // a[0][0] = 0 forces a row swap; the matrix is still invertible.
        let a = mat(&[&[0, 1], &[1, 0]]);
        let lu = FieldLu::decompose(&a).unwrap();
        let x = lu.solve(&[F7(3), F7(5)]).unwrap();
        assert_eq!(x, vec![F7(5), F7(3)]);
    }

    #[test]
    fn singular_matrix_rejected_exactly() {
        // Row 1 = 2 × row 0 (mod 7) — rank 1.
        let a = mat(&[&[1, 3], &[2, 6]]);
        assert_eq!(FieldLu::decompose(&a).unwrap_err(), LinalgError::Singular);
        // The all-zero matrix too.
        let z = mat(&[&[0, 0], &[0, 0]]);
        assert_eq!(FieldLu::decompose(&z).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn ragged_input_rejected() {
        let a = vec![vec![F7(1), F7(2)], vec![F7(3)]];
        assert!(matches!(
            FieldLu::decompose(&a),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn empty_system_is_trivial() {
        let a: Vec<Vec<F7>> = vec![];
        let lu = FieldLu::decompose(&a).unwrap();
        assert_eq!(lu.solve(&[]).unwrap(), vec![]);
        assert!(lu.inverse().unwrap().is_empty());
    }
}
