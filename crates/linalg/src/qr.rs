#![allow(clippy::needless_range_loop)] // index form mirrors the math

//! Householder QR decomposition and least-squares solves.

use crate::{matrix::Matrix, LinalgError, Result};

/// QR decomposition `A = Q·R` of an `m × n` matrix with `m ≥ n`, computed
/// with Householder reflections.
///
/// The factorization is stored compactly: the Householder vectors live in
/// the lower trapezoid of `qr` plus `beta`, and `R` in the upper triangle.
/// This is the numerically stable path used by [`crate::lstsq::ols`].
#[derive(Debug, Clone)]
pub struct Qr {
    qr: Matrix,
    /// Scalar `β_k = 2 / (vᵀv)` for each Householder reflector.
    betas: Vec<f64>,
}

/// Threshold on |r_kk| relative to the matrix norm for rank detection.
const RANK_EPS: f64 = 1e-10;

impl Qr {
    /// Factorizes `a`; requires `rows ≥ cols`.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::Underdetermined { rows: m, cols: n });
        }
        let mut qr = a.clone();
        let mut betas = Vec::with_capacity(n);

        for k in 0..n {
            // Build the Householder vector for column k, rows k..m.
            let mut norm = 0.0;
            for i in k..m {
                norm += qr[(i, k)] * qr[(i, k)];
            }
            let norm = norm.sqrt();
            if norm == 0.0 {
                betas.push(0.0);
                continue;
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            // v = (v0, a_{k+1,k}, ..., a_{m-1,k}); store v scaled by v0 so the
            // leading entry is 1 (LAPACK-style), with beta adjusted.
            let mut vtv = v0 * v0;
            for i in (k + 1)..m {
                vtv += qr[(i, k)] * qr[(i, k)];
            }
            let beta = if vtv == 0.0 { 0.0 } else { 2.0 * v0 * v0 / vtv };
            // Normalize stored vector to leading 1.
            for i in (k + 1)..m {
                qr[(i, k)] /= v0;
            }
            qr[(k, k)] = alpha; // R diagonal
            betas.push(beta);

            // Apply reflector to remaining columns: A := (I - beta v vᵀ) A
            for j in (k + 1)..n {
                // w = vᵀ a_j  (v has implicit leading 1 at row k)
                let mut w = qr[(k, j)];
                for i in (k + 1)..m {
                    w += qr[(i, k)] * qr[(i, j)];
                }
                w *= beta;
                qr[(k, j)] -= w;
                for i in (k + 1)..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= w * vik;
                }
            }
        }
        Ok(Qr { qr, betas })
    }

    /// Applies `Qᵀ` to a vector in place.
    fn apply_qt(&self, b: &mut [f64]) {
        let (m, n) = self.qr.shape();
        for k in 0..n {
            let beta = self.betas[k];
            if beta == 0.0 {
                continue;
            }
            let mut w = b[k];
            for i in (k + 1)..m {
                w += self.qr[(i, k)] * b[i];
            }
            w *= beta;
            b[k] -= w;
            for i in (k + 1)..m {
                b[i] -= w * self.qr[(i, k)];
            }
        }
    }

    /// Solves the least-squares problem `min ‖A·x − b‖₂`.
    ///
    /// Returns [`LinalgError::Singular`] when `A` is rank deficient.
    pub fn solve_lstsq(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                detail: format!("rhs length {} != {m}", b.len()),
            });
        }
        // Estimate the scale of R for the rank test.
        let rmax = (0..n)
            .map(|k| self.qr[(k, k)].abs())
            .fold(0.0_f64, f64::max);
        let mut qtb = b.to_vec();
        self.apply_qt(&mut qtb);
        // Back substitution on R x = (Qᵀ b)[0..n]
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let rii = self.qr[(i, i)];
            if rii.abs() <= RANK_EPS * rmax.max(1.0) {
                return Err(LinalgError::Singular);
            }
            let mut s = qtb[i];
            for j in (i + 1)..n {
                s -= self.qr[(i, j)] * x[j];
            }
            x[i] = s / rii;
        }
        Ok(x)
    }

    /// Returns a copy of the upper-triangular factor `R` (n × n).
    pub fn r(&self) -> Matrix {
        let n = self.qr.cols();
        let mut r = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                r[(i, j)] = self.qr[(i, j)];
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol)
    }

    #[test]
    fn exact_square_solve() {
        let a = Matrix::from_vec(2, 2, vec![2., 1., 1., 3.]).unwrap();
        let x = Qr::new(&a).unwrap().solve_lstsq(&[5.0, 10.0]).unwrap();
        assert!(approx(&x, &[1.0, 3.0], 1e-10));
    }

    #[test]
    fn overdetermined_matches_known_fit() {
        // Fit y = 2x + 1 exactly through three collinear points.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]).unwrap();
        let x = Qr::new(&a).unwrap().solve_lstsq(&[1.0, 3.0, 5.0]).unwrap();
        assert!(approx(&x, &[1.0, 2.0], 1e-10));
    }

    #[test]
    fn overdetermined_noisy_minimizes_residual() {
        // y ≈ 1 + 2x with noise; compare to hand-computed normal-equation fit.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.1, 2.9, 5.2, 6.8];
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![1.0, x]).collect();
        let slices: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&slices).unwrap();
        let beta = Qr::new(&a).unwrap().solve_lstsq(&ys).unwrap();
        // Normal equations by hand: XtX = [[4,6],[6,14]], Xty = [16, 33.7]
        let det = 4.0 * 14.0 - 36.0;
        let b0 = (14.0 * 16.0 - 6.0 * 33.7) / det;
        let b1 = (4.0 * 33.7 - 6.0 * 16.0) / det;
        assert!(approx(&beta, &[b0, b1], 1e-10));
    }

    #[test]
    fn rank_deficient_detected() {
        // Second column is a multiple of the first.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        let qr = Qr::new(&a).unwrap();
        assert_eq!(
            qr.solve_lstsq(&[1.0, 2.0, 3.0]).unwrap_err(),
            LinalgError::Singular
        );
    }

    #[test]
    fn underdetermined_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Qr::new(&a),
            Err(LinalgError::Underdetermined { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn r_is_upper_triangular_and_consistent() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let qr = Qr::new(&a).unwrap();
        let r = qr.r();
        assert_eq!(r[(1, 0)], 0.0);
        // |R| column norms must match |A| column norms (Q is orthogonal):
        // check via RᵀR == AᵀA.
        let rtr = r.transpose().matmul(&r).unwrap();
        let ata = a.gram();
        assert!(rtr.max_abs_diff(&ata).unwrap() < 1e-10);
    }

    #[test]
    fn rhs_length_checked() {
        let a = Matrix::identity(3);
        let qr = Qr::new(&a).unwrap();
        assert!(qr.solve_lstsq(&[1.0]).is_err());
    }
}
