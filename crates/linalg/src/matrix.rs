//! Row-major dense matrix of `f64`.

use crate::{LinalgError, Result};

/// A row-major dense matrix of `f64` values.
///
/// Indexing is `(row, col)`, zero-based. The storage is a single contiguous
/// `Vec<f64>` so that row iteration is cache-friendly (per the perf-book
/// guidance this crate follows: one allocation, reused buffers, no
/// per-element boxing).
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns a [`LinalgError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                detail: format!("data length {} does not match {rows}x{cols}", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from nested row slices.
    ///
    /// Returns an error if rows are ragged or empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        if nrows == 0 || ncols == 0 {
            return Err(LinalgError::ShapeMismatch {
                detail: "matrix must have at least one row and one column".into(),
            });
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != ncols {
                return Err(LinalgError::ShapeMismatch {
                    detail: format!("row {i} has {} cols, expected {ncols}", r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Creates a column vector (n × 1) from a slice.
    pub fn col_vector(v: &[f64]) -> Self {
        Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow of the underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Borrow of row `r` as a contiguous slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new `Vec`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        debug_assert!(c < self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// Uses the classic i-k-j loop order so the innermost loop streams both
    /// the output row and the `rhs` row contiguously.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                detail: format!("{}x{} * {}x{}", self.rows, self.cols, rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(rrow.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                detail: format!("{}x{} * vec[{}]", self.rows, self.cols, v.len()),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            *o = dot(self.row(i), v);
        }
        Ok(out)
    }

    /// Element-wise sum `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Element-wise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        let mut out = self.clone();
        for x in &mut out.data {
            *x *= s;
        }
        out
    }

    /// Gram matrix `selfᵀ * self` (used by the normal-equations OLS path).
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let xi = row[i];
                if xi == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    g[(i, j)] += xi * row[j];
                }
            }
        }
        // mirror the upper triangle
        for i in 0..self.cols {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// Maximum absolute difference to `rhs`; `None` when shapes differ.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> Option<f64> {
        if self.shape() != rhs.shape() {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max),
        )
    }

    /// Swaps two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        debug_assert!(a < self.rows && b < self.rows);
        let (a, b) = (a.min(b), a.max(b));
        let (head, tail) = self.data.split_at_mut(b * self.cols);
        head[a * self.cols..(a + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    fn zip_with(&self, rhs: &Matrix, f: impl Fn(f64, f64) -> f64) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                detail: format!("{:?} vs {:?}", self.shape(), rhs.shape()),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.data().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_vec_shape_check() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
        assert!(matches!(err, Err(LinalgError::ShapeMismatch { .. })));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(0, 1)], 4.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_identity() {
        let m = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
        assert_eq!(i.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn gram_matches_explicit_transpose_product() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        assert!(g.max_abs_diff(&explicit).unwrap() < 1e-12);
    }

    #[test]
    fn swap_rows_works() {
        let mut m = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        m.swap_rows(0, 2);
        assert_eq!(m.row(0), &[5., 6.]);
        assert_eq!(m.row(2), &[1., 2.]);
        m.swap_rows(1, 1); // no-op
        assert_eq!(m.row(1), &[3., 4.]);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![4., 3., 2., 1.]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[5., 5., 5., 5.]);
        assert_eq!(a.sub(&a).unwrap().data(), &[0., 0., 0., 0.]);
        assert_eq!(a.scale(2.0).data(), &[2., 4., 6., 8.]);
        assert!(a.add(&Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn col_extraction() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(a.col(1), vec![2., 5.]);
    }
}
