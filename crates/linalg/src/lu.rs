#![allow(clippy::needless_range_loop)] // index form mirrors the math

//! LU decomposition with partial pivoting.

use crate::{matrix::Matrix, LinalgError, Result};

/// Relative pivot threshold below which a matrix is treated as singular.
const SINGULARITY_EPS: f64 = 1e-12;

/// LU decomposition `P·A = L·U` of a square matrix with partial pivoting.
///
/// `L` (unit lower-triangular) and `U` (upper-triangular) are stored packed
/// in a single matrix; `perm` records the row permutation.
#[derive(Debug, Clone)]
pub struct Lu {
    lu: Matrix,
    perm: Vec<usize>,
    /// Sign of the permutation (+1 or -1); used by [`Lu::det`].
    perm_sign: f64,
}

impl Lu {
    /// Factorizes a square matrix.
    ///
    /// Returns [`LinalgError::Singular`] when a pivot is (numerically) zero
    /// and [`LinalgError::ShapeMismatch`] for non-square input.
    pub fn new(a: &Matrix) -> Result<Self> {
        let n = a.rows();
        if a.cols() != n {
            return Err(LinalgError::ShapeMismatch {
                detail: format!("LU requires square matrix, got {}x{}", a.rows(), a.cols()),
            });
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        // Scale factors for scaled partial pivoting: largest |a_ij| per row.
        let scale: Vec<f64> = (0..n)
            .map(|r| lu.row(r).iter().fold(0.0_f64, |m, &x| m.max(x.abs())))
            .collect();
        if scale.contains(&0.0) {
            return Err(LinalgError::Singular);
        }

        for k in 0..n {
            // Pick pivot row maximizing |a_ik| / scale_i.
            let mut pivot_row = k;
            let mut pivot_val = (lu[(k, k)] / scale[perm[k]]).abs();
            for i in (k + 1)..n {
                let v = (lu[(i, k)] / scale[perm[i]]).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < SINGULARITY_EPS {
                return Err(LinalgError::Singular);
            }
            if pivot_row != k {
                lu.swap_rows(pivot_row, k);
                perm.swap(pivot_row, k);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                if factor == 0.0 {
                    continue;
                }
                for j in (k + 1)..n {
                    let u = lu[(k, j)];
                    lu[(i, j)] -= factor * u;
                }
            }
        }
        Ok(Lu {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Solves `A·x = b` for a single right-hand side.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                detail: format!("rhs length {} != {n}", b.len()),
            });
        }
        // Apply permutation, then forward substitution with unit-L.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A·X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.lu.rows();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                detail: format!("rhs has {} rows, expected {n}", b.rows()),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for c in 0..b.cols() {
            let col = b.col(c);
            let x = self.solve(&col)?;
            for (r, v) in x.into_iter().enumerate() {
                out[(r, c)] = v;
            }
        }
        Ok(out)
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let n = self.lu.rows();
        let mut d = self.perm_sign;
        for i in 0..n {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Inverse of the factored matrix.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.lu.rows()))
    }
}

/// Convenience: solves `A·x = b` by LU factorization.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Lu::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol)
    }

    #[test]
    fn solve_2x2() {
        let a = Matrix::from_vec(2, 2, vec![2., 1., 1., 3.]).unwrap();
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!(approx(&x, &[1.0, 3.0], 1e-12));
    }

    #[test]
    fn solve_requires_pivoting() {
        // a11 = 0 forces a row swap.
        let a = Matrix::from_vec(2, 2, vec![0., 1., 1., 0.]).unwrap();
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!(approx(&x, &[3.0, 2.0], 1e-12));
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 2., 4.]).unwrap();
        assert_eq!(Lu::new(&a).unwrap_err(), LinalgError::Singular);
        let zero = Matrix::zeros(2, 2);
        assert_eq!(Lu::new(&zero).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Lu::new(&a),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn det_known() {
        let a = Matrix::from_vec(2, 2, vec![3., 1., 4., 2.]).unwrap();
        assert!((Lu::new(&a).unwrap().det() - 2.0).abs() < 1e-12);
        // Permutation sign: swapping rows flips determinant sign.
        let b = Matrix::from_vec(2, 2, vec![0., 1., 1., 0.]).unwrap();
        assert!((Lu::new(&b).unwrap().det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_vec(3, 3, vec![4., 7., 2., 3., 6., 1., 2., 5., 3.]).unwrap();
        let inv = Lu::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(3)).unwrap() < 1e-10);
    }

    #[test]
    fn solve_larger_system_consistent() {
        // Random-ish but fixed 5x5 system; verify A * x ≈ b.
        let a = Matrix::from_vec(
            5,
            5,
            vec![
                2., -1., 0., 3., 1., 4., 2., 1., 0., -2., 0., 5., 3., 1., 1., 1., 1., -1., 2., 0.,
                3., 0., 2., -1., 4.,
            ],
        )
        .unwrap();
        let b = vec![1., 2., 3., 4., 5.];
        let x = solve(&a, &b).unwrap();
        let bx = a.matvec(&x).unwrap();
        assert!(approx(&bx, &b, 1e-10));
    }

    #[test]
    fn rhs_length_checked() {
        let a = Matrix::identity(3);
        let lu = Lu::new(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }
}
