//! Property tests for the linear-algebra substrate.

use fragcloud_linalg::{cholesky::Cholesky, lu, matrix::Matrix, ols, qr::Qr};
use proptest::prelude::*;

/// Random diagonally-dominant matrix (always well conditioned enough).
fn arb_dd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |mut v| {
        for i in 0..n {
            let row_sum: f64 = (0..n).map(|j| v[i * n + j].abs()).sum();
            v[i * n + i] = row_sum + 1.0; // strict dominance
        }
        Matrix::from_vec(n, n, v).expect("square data")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LU solves satisfy A x = b to tight tolerance.
    #[test]
    fn lu_solve_residual(a in arb_dd_matrix(5), b in proptest::collection::vec(-10.0f64..10.0, 5)) {
        let x = lu::solve(&a, &b).expect("dd matrix is nonsingular");
        let ax = a.matvec(&x).expect("square");
        for (l, r) in ax.iter().zip(&b) {
            prop_assert!((l - r).abs() < 1e-8, "residual {l} vs {r}");
        }
    }

    /// QR and LU agree on square solves.
    #[test]
    fn qr_matches_lu_on_square(a in arb_dd_matrix(4), b in proptest::collection::vec(-5.0f64..5.0, 4)) {
        let x_lu = lu::solve(&a, &b).expect("nonsingular");
        let x_qr = Qr::new(&a).expect("square is fine").solve_lstsq(&b).expect("full rank");
        for (l, q) in x_lu.iter().zip(&x_qr) {
            prop_assert!((l - q).abs() < 1e-7, "{l} vs {q}");
        }
    }

    /// Cholesky of AᵀA (+ εI) solves the normal equations like LU does.
    #[test]
    fn cholesky_matches_lu_on_spd(a in arb_dd_matrix(4), b in proptest::collection::vec(-5.0f64..5.0, 4)) {
        let spd = a.gram(); // AᵀA of a nonsingular A is SPD
        let x_ch = Cholesky::new(&spd).expect("SPD").solve(&b).expect("len ok");
        let x_lu = lu::solve(&spd, &b).expect("nonsingular");
        for (c, l) in x_ch.iter().zip(&x_lu) {
            prop_assert!((c - l).abs() < 1e-7, "{c} vs {l}");
        }
    }

    /// (AB)ᵀ = BᵀAᵀ and matmul associates.
    #[test]
    fn matmul_algebra(
        a in proptest::collection::vec(-3.0f64..3.0, 6),
        b in proptest::collection::vec(-3.0f64..3.0, 6),
        c in proptest::collection::vec(-3.0f64..3.0, 4),
    ) {
        let a = Matrix::from_vec(2, 3, a).expect("2x3");
        let b = Matrix::from_vec(3, 2, b).expect("3x2");
        let c = Matrix::from_vec(2, 2, c).expect("2x2");
        let ab = a.matmul(&b).expect("compatible");
        let abt = ab.transpose();
        let btat = b.transpose().matmul(&a.transpose()).expect("compatible");
        prop_assert!(abt.max_abs_diff(&btat).expect("same shape") < 1e-10);
        let ab_c = ab.matmul(&c).expect("compatible");
        let bc = b.matmul(&c).expect("compatible");
        let a_bc = a.matmul(&bc).expect("compatible");
        prop_assert!(ab_c.max_abs_diff(&a_bc).expect("same shape") < 1e-9);
    }

    /// OLS residuals are orthogonal to the design columns (normal
    /// equations hold at the optimum).
    #[test]
    fn ols_residual_orthogonality(
        xs in proptest::collection::vec(-10.0f64..10.0, 12),
        ys in proptest::collection::vec(-10.0f64..10.0, 12),
    ) {
        // One predictor with spread (skip degenerate constant xs).
        let spread = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - xs.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assume!(spread > 1e-6);
        let x = Matrix::from_vec(12, 1, xs.clone()).expect("12x1");
        let fit = ols(&x, &ys, true).expect("12 rows, 2 unknowns");
        // Σ rᵢ = 0 (intercept column) and Σ rᵢ xᵢ = 0.
        let sum_r: f64 = fit.residuals.iter().sum();
        let sum_rx: f64 = fit.residuals.iter().zip(&xs).map(|(r, x)| r * x).sum();
        prop_assert!(sum_r.abs() < 1e-6, "sum r = {sum_r}");
        prop_assert!(sum_rx.abs() < 1e-4, "sum rx = {sum_rx}");
        prop_assert!(fit.r_squared <= 1.0 + 1e-12);
    }
}
