//! Property tests for the Chord ring.

use fragcloud_dht::ChordRing;
use proptest::prelude::*;

fn ring_of(names: &[String]) -> ChordRing {
    let mut r = ChordRing::new(3);
    for n in names {
        r.join(n);
    }
    r
}

fn arb_names() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::btree_set("[a-z]{3,8}", 1..20).prop_map(|s| s.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Routed lookup from any member agrees with direct ownership.
    #[test]
    fn lookup_agrees_with_owner(names in arb_names(), serial: u32, start_pick: usize) {
        let ring = ring_of(&names);
        let start = &names[start_pick % names.len()];
        let trace = ring.lookup(start, "file.bin", serial).expect("member start");
        let owner = ring.owner("file.bin", serial).expect("non-empty ring");
        prop_assert_eq!(&trace.owner, owner);
    }

    /// Ownership is deterministic and total.
    #[test]
    fn ownership_total_and_stable(names in arb_names(), serials in proptest::collection::vec(any::<u32>(), 1..50)) {
        let ring = ring_of(&names);
        for &s in &serials {
            let a = ring.owner("f", s).expect("total").clone();
            let b = ring.owner("f", s).expect("total").clone();
            prop_assert_eq!(&a, &b);
            prop_assert!(names.contains(&a));
        }
    }

    /// Join/leave of one node only remaps keys to/from that node.
    #[test]
    fn churn_locality(names in arb_names(), extra in "[a-z]{9,12}") {
        prop_assume!(!names.contains(&extra));
        let mut ring = ring_of(&names);
        let keys: Vec<(String, u32)> = (0..200).map(|s| ("k".to_string(), s)).collect();
        let refs: Vec<(&str, u32)> = keys.iter().map(|(f, s)| (f.as_str(), *s)).collect();
        let before = ring.assign_all(refs.iter().copied());
        ring.join(&extra);
        let after = ring.assign_all(refs.iter().copied());
        for (b, a) in before.iter().zip(&after) {
            if b != a {
                prop_assert_eq!(a, &extra, "join must only attract keys");
            }
        }
        ring.leave(&extra);
        let back = ring.assign_all(refs.iter().copied());
        prop_assert_eq!(back, before, "leave must restore the old mapping");
    }

    /// Hop counts are bounded by the membership size.
    #[test]
    fn hops_bounded(names in arb_names(), serial: u32) {
        let ring = ring_of(&names);
        let trace = ring.lookup(&names[0], "g", serial).expect("member");
        prop_assert!(trace.hops <= names.len() + 64, "hops {}", trace.hops);
    }
}
