//! 64-bit FNV-1a hashing for ring identifiers.

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes a byte string to a 64-bit ring identifier.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Ring id for a named node, with a virtual-node replica index.
pub fn node_id(name: &str, replica: u32) -> u64 {
    let mut buf = Vec::with_capacity(name.len() + 5);
    buf.extend_from_slice(name.as_bytes());
    buf.push(b'#');
    buf.extend_from_slice(&replica.to_le_bytes());
    fnv1a(&buf)
}

/// Ring id for a ⟨filename, chunk serial⟩ pair — the §IV-C key.
pub fn chunk_key(filename: &str, serial: u32) -> u64 {
    let mut buf = Vec::with_capacity(filename.len() + 5);
    buf.extend_from_slice(filename.as_bytes());
    buf.push(0);
    buf.extend_from_slice(&serial.to_le_bytes());
    fnv1a(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn node_replicas_differ() {
        let a = node_id("AWS", 0);
        let b = node_id("AWS", 1);
        let c = node_id("Google", 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Deterministic.
        assert_eq!(node_id("AWS", 0), a);
    }

    #[test]
    fn chunk_keys_distinguish_file_and_serial() {
        assert_ne!(chunk_key("file1", 0), chunk_key("file1", 1));
        assert_ne!(chunk_key("file1", 0), chunk_key("file2", 0));
        // Separator prevents ambiguity between name and serial bytes.
        assert_ne!(chunk_key("a", 0x6261), chunk_key("ab", 0x62));
    }
}
