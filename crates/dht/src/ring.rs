//! The Chord ring: successor ownership, finger tables, routed lookups.

use crate::hash::{chunk_key, node_id};
use std::collections::BTreeMap;

/// A provider's name on the ring.
pub type NodeName = String;

/// Number of finger-table entries (identifier space is 2⁶⁴).
const M: u32 = 64;

/// Result of a routed lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupTrace {
    /// The node that owns the key.
    pub owner: NodeName,
    /// Nodes visited between the starting node and the owner (inclusive of
    /// the owner, exclusive of the start).
    pub hops: usize,
    /// The visited ring ids, for diagnostics.
    pub path: Vec<u64>,
}

/// A deterministic, globally-viewed Chord ring.
///
/// The simulation keeps the full membership in one structure (we are
/// modelling the *client-side mapping*, not an asynchronous network), but
/// routed lookups honour Chord's rules: each step may only use the current
/// node's finger table, so hop counts match the real protocol's
/// O(log n) behaviour.
#[derive(Debug, Clone, Default)]
pub struct ChordRing {
    /// ring id → node name; multiple entries per node when virtual nodes
    /// are enabled.
    ring: BTreeMap<u64, NodeName>,
    /// virtual replicas per node.
    replicas: u32,
}

impl ChordRing {
    /// Creates an empty ring with `replicas` virtual nodes per member
    /// (replicas ≥ 1; more replicas smooth key distribution).
    pub fn new(replicas: u32) -> Self {
        assert!(replicas >= 1, "need at least one virtual node per member");
        ChordRing {
            ring: BTreeMap::new(),
            replicas,
        }
    }

    /// Adds a node; returns false if it was already present.
    pub fn join(&mut self, name: &str) -> bool {
        if self.contains(name) {
            return false;
        }
        for r in 0..self.replicas {
            self.ring.insert(node_id(name, r), name.to_string());
        }
        true
    }

    /// Removes a node; returns false if it was not present.
    pub fn leave(&mut self, name: &str) -> bool {
        if !self.contains(name) {
            return false;
        }
        for r in 0..self.replicas {
            self.ring.remove(&node_id(name, r));
        }
        true
    }

    /// Whether the node is a member.
    pub fn contains(&self, name: &str) -> bool {
        self.ring.contains_key(&node_id(name, 0))
    }

    /// Current member count (distinct names).
    pub fn len(&self) -> usize {
        let mut names: Vec<&NodeName> = self.ring.values().collect();
        names.sort();
        names.dedup();
        names.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Successor node of a ring position (wrapping).
    fn successor(&self, id: u64) -> Option<(u64, &NodeName)> {
        self.ring
            .range(id..)
            .next()
            .or_else(|| self.ring.iter().next())
            .map(|(&k, v)| (k, v))
    }

    /// The node that owns a ⟨filename, serial⟩ chunk key — the client-side
    /// replacement for the Chunk Table's provider column.
    pub fn owner(&self, filename: &str, serial: u32) -> Option<&NodeName> {
        self.successor(chunk_key(filename, serial)).map(|(_, n)| n)
    }

    /// The node that owns a raw ring id.
    pub fn owner_of_id(&self, id: u64) -> Option<&NodeName> {
        self.successor(id).map(|(_, n)| n)
    }

    /// Routed Chord lookup from `start`'s first virtual node, counting hops.
    ///
    /// At each step the current node forwards to the closest finger
    /// preceding the key (classic `closest_preceding_node`), or to its
    /// successor when no finger helps; the lookup ends at the key's owner.
    pub fn lookup(&self, start: &str, filename: &str, serial: u32) -> Option<LookupTrace> {
        if !self.contains(start) || self.ring.is_empty() {
            return None;
        }
        let key = chunk_key(filename, serial);
        let (owner_id, owner) = self.successor(key)?;
        let owner = owner.clone();

        let mut current = node_id(start, 0);
        let mut current_name = start.to_string();
        let mut path = Vec::new();
        let mut hops = 0usize;
        // Forwarding between two virtual nodes of the same physical member
        // is a local operation, so only name-changing forwards count as hops.
        let forward = |to_id: u64,
                       to_name: &NodeName,
                       current_name: &mut String,
                       hops: &mut usize,
                       path: &mut Vec<u64>| {
            if to_name != current_name {
                *hops += 1;
                *current_name = to_name.clone();
            }
            path.push(to_id);
        };
        // Bound iterations defensively; Chord guarantees ≤ M routing steps.
        for _ in 0..(M as usize + self.ring.len()) {
            if current == owner_id {
                break;
            }
            // Does current's successor own the key? (The "found" condition:
            // key ∈ (current, successor].)
            let (succ_id, succ_name) = self.successor(current.wrapping_add(1))?;
            if in_half_open_arc(key, current, succ_id) {
                if succ_id != current {
                    let succ_name = succ_name.clone();
                    forward(succ_id, &succ_name, &mut current_name, &mut hops, &mut path);
                }
                current = succ_id;
                break;
            }
            // Otherwise forward to the closest preceding finger.
            let next = self.closest_preceding(current, key);
            let next = if next == current { succ_id } else { next };
            let next_name = self.ring[&next].clone();
            forward(next, &next_name, &mut current_name, &mut hops, &mut path);
            current = next;
        }
        debug_assert_eq!(current, owner_id, "lookup must terminate at owner");
        Some(LookupTrace { owner, hops, path })
    }

    /// Chord's `closest_preceding_node`: the finger of `current` whose id is
    /// the largest in the open arc (current, key).
    fn closest_preceding(&self, current: u64, key: u64) -> u64 {
        for i in (0..M).rev() {
            let finger_start = current.wrapping_add(1u64.wrapping_shl(i));
            if let Some((fid, _)) = self.successor(finger_start) {
                if in_open_arc(fid, current, key) {
                    return fid;
                }
            }
        }
        current
    }

    /// Assigns every key in `keys` to its owner — used to measure how many
    /// chunks remap when a provider joins or leaves.
    pub fn assign_all<'a>(&self, keys: impl IntoIterator<Item = (&'a str, u32)>) -> Vec<NodeName> {
        keys.into_iter()
            .map(|(f, s)| {
                self.owner(f, s)
                    .expect("assign_all on an empty ring")
                    .clone()
            })
            .collect()
    }
}

/// `x ∈ (lo, hi]` on the ring.
fn in_half_open_arc(x: u64, lo: u64, hi: u64) -> bool {
    if lo < hi {
        x > lo && x <= hi
    } else if lo > hi {
        x > lo || x <= hi
    } else {
        true // full circle
    }
}

/// `x ∈ (lo, hi)` on the ring.
fn in_open_arc(x: u64, lo: u64, hi: u64) -> bool {
    if lo < hi {
        x > lo && x < hi
    } else if lo > hi {
        x > lo || x < hi
    } else {
        x != lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_of(n: usize) -> ChordRing {
        let mut r = ChordRing::new(4);
        for i in 0..n {
            r.join(&format!("provider-{i}"));
        }
        r
    }

    #[test]
    fn join_leave_contains() {
        let mut r = ChordRing::new(2);
        assert!(r.is_empty());
        assert!(r.join("AWS"));
        assert!(!r.join("AWS"));
        assert!(r.contains("AWS"));
        assert_eq!(r.len(), 1);
        assert!(r.leave("AWS"));
        assert!(!r.leave("AWS"));
        assert!(r.is_empty());
    }

    #[test]
    fn owner_is_deterministic_and_total() {
        let r = ring_of(8);
        let o1 = r.owner("file1", 0).unwrap().clone();
        let o2 = r.owner("file1", 0).unwrap().clone();
        assert_eq!(o1, o2);
        // Every key has an owner.
        for s in 0..100 {
            assert!(r.owner("somefile", s).is_some());
        }
    }

    #[test]
    fn empty_ring_has_no_owner() {
        let r = ChordRing::new(1);
        assert!(r.owner("f", 0).is_none());
        assert!(r.lookup("nope", "f", 0).is_none());
    }

    #[test]
    fn lookup_agrees_with_owner() {
        let r = ring_of(16);
        for s in 0..200u32 {
            let trace = r.lookup("provider-0", "data.bin", s).unwrap();
            assert_eq!(&trace.owner, r.owner("data.bin", s).unwrap(), "serial {s}");
        }
    }

    #[test]
    fn lookup_from_every_start_agrees() {
        let r = ring_of(10);
        let expect = r.owner("file.x", 7).unwrap().clone();
        for i in 0..10 {
            let t = r.lookup(&format!("provider-{i}"), "file.x", 7).unwrap();
            assert_eq!(t.owner, expect, "start provider-{i}");
        }
    }

    #[test]
    fn hop_counts_are_logarithmic() {
        let r = ring_of(64);
        let mut total_hops = 0usize;
        let mut max_hops = 0usize;
        let n_lookups = 500;
        for s in 0..n_lookups {
            let t = r.lookup("provider-0", "bulk", s).unwrap();
            total_hops += t.hops;
            max_hops = max_hops.max(t.hops);
        }
        let avg = total_hops as f64 / n_lookups as f64;
        // With 64 nodes * 4 vnodes = 256 ring points, Chord predicts
        // ~0.5*log2(256) = 4 hops average; allow generous slack.
        assert!(avg < 12.0, "average hops {avg} too high");
        assert!(max_hops <= 64, "max hops {max_hops}");
    }

    #[test]
    fn keys_spread_across_nodes() {
        let r = ring_of(10);
        let mut seen = std::collections::HashSet::new();
        for s in 0..500 {
            seen.insert(r.owner("spread", s).unwrap().clone());
        }
        assert!(seen.len() >= 8, "only {} of 10 nodes used", seen.len());
    }

    #[test]
    fn leave_remaps_only_lost_nodes_keys() {
        let mut r = ring_of(10);
        let keys: Vec<(String, u32)> = (0..1000).map(|s| ("remap".to_string(), s)).collect();
        let key_refs: Vec<(&str, u32)> = keys.iter().map(|(f, s)| (f.as_str(), *s)).collect();
        let before = r.assign_all(key_refs.iter().copied());
        r.leave("provider-3");
        let after = r.assign_all(key_refs.iter().copied());
        let mut moved = 0;
        for (b, a) in before.iter().zip(&after) {
            if b != a {
                // Only keys previously owned by provider-3 may move.
                assert_eq!(b, "provider-3", "key moved from {b} to {a}");
                moved += 1;
            }
        }
        // provider-3 owned roughly 1/10 of the keys.
        assert!(moved > 0 && moved < 1000 / 3, "moved {moved}");
    }

    #[test]
    fn join_remaps_bounded_fraction() {
        let mut r = ring_of(10);
        let keys: Vec<(String, u32)> = (0..1000).map(|s| ("grow".to_string(), s)).collect();
        let key_refs: Vec<(&str, u32)> = keys.iter().map(|(f, s)| (f.as_str(), *s)).collect();
        let before = r.assign_all(key_refs.iter().copied());
        r.join("provider-new");
        let after = r.assign_all(key_refs.iter().copied());
        let moved = before.iter().zip(&after).filter(|(b, a)| b != a).count();
        // Consistent hashing: ~1/11 of keys move, never a wholesale reshuffle.
        assert!(moved < 1000 / 3, "moved {moved}");
        // All moved keys must have moved TO the new node.
        for (b, a) in before.iter().zip(&after) {
            if b != a {
                assert_eq!(a, "provider-new");
            }
        }
    }

    #[test]
    fn single_node_owns_everything_zero_hops() {
        let mut r = ChordRing::new(3);
        r.join("only");
        for s in 0..50 {
            let t = r.lookup("only", "f", s).unwrap();
            assert_eq!(t.owner, "only");
            assert_eq!(t.hops, 0, "serial {s}");
        }
    }

    #[test]
    fn arc_membership_helpers() {
        assert!(in_half_open_arc(5, 3, 7));
        assert!(in_half_open_arc(7, 3, 7));
        assert!(!in_half_open_arc(3, 3, 7));
        // wrapping arc
        assert!(in_half_open_arc(1, u64::MAX - 1, 3));
        assert!(!in_half_open_arc(u64::MAX - 1, u64::MAX - 1, 3));
        assert!(in_open_arc(2, 1, 3));
        assert!(!in_open_arc(3, 1, 3));
        assert!(in_open_arc(0, u64::MAX, 3));
        // degenerate full-circle arcs
        assert!(in_half_open_arc(9, 4, 4));
        assert!(in_open_arc(9, 4, 4));
        assert!(!in_open_arc(4, 4, 4));
    }
}
