#![warn(missing_docs)]

//! Chord-style distributed hash table for the client-side distributor.
//!
//! §IV-C: to avoid trusting a third-party Cloud Data Distributor, it "can be
//! implemented at client side by using CAN or CHORD like hash tables that
//! will map each ⟨filename, chunk Sl⟩ pair to a Cloud Provider."
//!
//! We implement the Chord construction (Stoica et al., SIGCOMM'01) as a
//! deterministic simulation: nodes (providers) own arcs of a 2⁶⁴ identifier
//! ring, keys map to their successor node, and routed lookups walk finger
//! tables so experiments can measure the O(log n) hop counts the protocol
//! promises.
//!
//! - [`hash`] — a from-scratch 64-bit FNV-1a hasher for node/key ids;
//! - [`ring`] — the ring, finger tables, routed lookups, join/leave key
//!   remapping.

pub mod hash;
pub mod ring;

pub use ring::{ChordRing, LookupTrace, NodeName};
