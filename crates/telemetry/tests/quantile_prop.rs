//! Property tests for interpolated histogram quantiles.
//!
//! The contract under test ([`HistogramSnapshot::quantile`]): the
//! estimate for any `q` lands inside the log₂ bucket that contains the
//! *exact* sample quantile (clamped to the observed `[min, max]`), i.e.
//! the interpolation error is bounded by one bucket width.

use fragcloud_telemetry::Histogram;
use proptest::prelude::*;

/// Inclusive bounds of the log₂ bucket holding `v`, mirroring the
/// histogram's layout: bucket 0 is the value 0, bucket `i` covers
/// `[2^(i-1), 2^i - 1]`.
fn bucket_bounds(v: u64) -> (u64, u64) {
    if v == 0 {
        return (0, 0);
    }
    let bits = 64 - v.leading_zeros();
    let lo = 1u64 << (bits - 1);
    let hi = if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    (lo, hi)
}

/// Exact sample quantile using the same ceil-rank convention as the
/// histogram: the rank-th smallest value, rank = ceil(q·n) clamped to
/// [1, n].
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as f64;
    let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The interpolated quantile stays inside the exact quantile's
    /// bucket (intersected with the observed range).
    #[test]
    fn quantile_within_one_bucket_of_exact(
        values in proptest::collection::vec(0u64..2_000_000, 1..200),
        qs in proptest::collection::vec(0.0f64..1.0, 1..8),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let (min, max) = (sorted[0], sorted[sorted.len() - 1]);
        for &q in &qs {
            let exact = exact_quantile(&sorted, q);
            let est = snap.quantile(q);
            let (blo, bhi) = bucket_bounds(exact);
            let lo = blo.max(min);
            let hi = bhi.min(max);
            prop_assert!(
                (lo..=hi).contains(&est),
                "q={q}: est {est} outside [{lo}, {hi}] around exact {exact} (n={})",
                sorted.len()
            );
        }
    }

    /// Extremes are exact, not interpolated: q=0 is the minimum and
    /// q=1 the maximum, and every quantile stays inside [min, max].
    #[test]
    fn quantile_edges_are_exact(
        values in proptest::collection::vec(0u64..u64::MAX, 1..64),
        q in 0.0f64..1.0,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        prop_assert_eq!(snap.quantile(0.0), min);
        prop_assert_eq!(snap.quantile(1.0), max);
        let mid = snap.quantile(q);
        prop_assert!((min..=max).contains(&mid), "q={q}: {mid} outside [{min}, {max}]");
    }

    /// Quantiles are monotone in q.
    #[test]
    fn quantile_is_monotone(
        values in proptest::collection::vec(0u64..1_000_000, 1..100),
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let (lo_q, hi_q) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(snap.quantile(lo_q) <= snap.quantile(hi_q));
    }
}

#[test]
fn degenerate_cases() {
    // Empty histogram: everything is zero.
    let empty = Histogram::new().snapshot();
    for q in [0.0, 0.5, 1.0] {
        assert_eq!(empty.quantile(q), 0);
    }
    // A single value answers every quantile.
    let h = Histogram::new();
    h.record(12345);
    let one = h.snapshot();
    for q in [0.0, 0.001, 0.5, 0.999, 1.0] {
        assert_eq!(one.quantile(q), 12345, "q = {q}");
    }
    // Out-of-range q clamps instead of panicking.
    assert_eq!(one.quantile(-3.0), 12345);
    assert_eq!(one.quantile(7.0), 12345);
}
