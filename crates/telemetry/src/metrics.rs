//! Log₂-bucketed histograms with interpolated quantiles.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: bucket 0 holds the value 0, bucket `i` (1..=64)
/// holds values whose highest set bit is bit `i-1`, i.e. the range
/// `[2^(i-1), 2^i - 1]`.
pub(crate) const BUCKETS: usize = 65;

/// A lock-free histogram with power-of-two buckets.
///
/// Values are unitless `u64`s; by convention the distributor records
/// microseconds for simulated waits (`*_us`) and nanoseconds for real
/// CPU timings (`*_ns`) — the fraglint `histogram-units` rule enforces
/// the suffix. Recording is a handful of relaxed atomic ops; quantile
/// queries interpolate log-linearly inside the matched bucket (see
/// [`HistogramSnapshot::quantile`]).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    pub(crate) fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive lower bound of bucket `i`.
    pub(crate) fn bucket_lower(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Inclusive upper bound of bucket `i`.
    pub(crate) fn bucket_upper(i: usize) -> u64 {
        match i {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A consistent-enough point-in-time copy for reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            count,
            sum: self.sum(),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// The four SLO percentiles every latency histogram reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Percentiles {
    /// Median (interpolated).
    pub p50: u64,
    /// 90th percentile (interpolated).
    pub p90: u64,
    /// 99th percentile (interpolated).
    pub p99: u64,
    /// 99.9th percentile (interpolated).
    pub p999: u64,
}

/// Point-in-time copy of a [`Histogram`], with derived statistics.
///
/// Construction happens only through [`Histogram::snapshot`] (or
/// [`merge`](Self::merge)); consumers read through the accessors so the
/// bucket layout stays an implementation detail.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl HistogramSnapshot {
    /// An empty snapshot (what a never-recorded histogram would yield).
    pub fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observed value (0 when empty).
    pub fn min_observed(&self) -> u64 {
        self.min
    }

    /// Largest observed value (0 when empty).
    pub fn max_observed(&self) -> u64 {
        self.max
    }

    /// Mean of observed values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Per-bucket (inclusive-upper-bound, count) pairs for non-empty
    /// buckets, in value order — the exporter-facing view of the raw
    /// log₂ layout.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Histogram::bucket_upper(i), c))
            .collect()
    }

    /// Merge another snapshot into this one (used by
    /// [`RollingHistogram`](crate::RollingHistogram) to produce
    /// whole-lifetime views from per-window snapshots).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
        } else {
            self.min = self.min.min(other.min);
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Quantile `q` in `[0, 1]` with log-linear interpolation: the rank
    /// is located in its log₂ bucket, then the estimate interpolates
    /// linearly between the bucket's bounds at the rank's midpoint
    /// position inside the bucket. The result is clamped to the observed
    /// `[min, max]`, so `quantile(0.0)` is the minimum and
    /// `quantile(1.0)` the maximum; the error is bounded by one bucket
    /// width (the bucket containing the true sample value).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = Histogram::bucket_lower(i);
                let hi = Histogram::bucket_upper(i).min(self.max);
                let lo = lo.max(self.min).min(hi);
                // Midpoint-rank position of the target inside the bucket:
                // with one sample the estimate sits mid-bucket, with many
                // it slides linearly from the lower to the upper bound.
                let frac = ((rank - seen) as f64 - 0.5) / c as f64;
                let est = lo as f64 + (hi - lo) as f64 * frac;
                return (est.round() as u64).clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Interpolated median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Interpolated 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// Interpolated 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Interpolated 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// The standard SLO percentile block (p50/p90/p99/p999).
    pub fn percentiles(&self) -> Percentiles {
        Percentiles {
            p50: self.p50(),
            p90: self.p90(),
            p99: self.p99(),
            p999: self.p999(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper(0), 0);
        assert_eq!(Histogram::bucket_upper(2), 3);
        assert_eq!(Histogram::bucket_upper(64), u64::MAX);
        assert_eq!(Histogram::bucket_lower(0), 0);
        assert_eq!(Histogram::bucket_lower(1), 1);
        assert_eq!(Histogram::bucket_lower(2), 2);
        assert_eq!(Histogram::bucket_lower(64), 1u64 << 63);
    }

    #[test]
    fn stats_and_quantiles() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum(), 1106);
        assert_eq!(s.min_observed(), 1);
        assert_eq!(s.max_observed(), 1000);
        assert_eq!(s.mean(), 221);
        // The true median (3) lives in bucket [2,3]; the interpolated
        // estimate must stay inside that bucket.
        let p50 = s.quantile(0.5);
        assert!((2..=3).contains(&p50), "p50 = {p50}");
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.quantile(1.0), 1000);
    }

    #[test]
    fn interpolation_slides_within_a_bucket() {
        // 100 samples spread over [64, 127] — one bucket. Low quantiles
        // must land near the bottom of the bucket, high near the top.
        let h = Histogram::new();
        for v in 0..100u64 {
            h.record(64 + (v * 63) / 99);
        }
        let s = h.snapshot();
        let p10 = s.quantile(0.10);
        let p90 = s.quantile(0.90);
        assert!(p10 < p90, "interpolation must order quantiles: {p10} {p90}");
        assert!((64..=80).contains(&p10), "p10 = {p10}");
        assert!((110..=127).contains(&p90), "p90 = {p90}");
    }

    #[test]
    fn single_value_quantiles_collapse() {
        let h = Histogram::new();
        h.record(500);
        let s = h.snapshot();
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 500, "q = {q}");
        }
        let p = s.percentiles();
        assert_eq!((p.p50, p.p90, p.p99, p.p999), (500, 500, 500, 500));
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let s = Histogram::new().snapshot();
        assert_eq!(
            (
                s.count(),
                s.sum(),
                s.min_observed(),
                s.max_observed(),
                s.mean(),
                s.quantile(0.99)
            ),
            (0, 0, 0, 0, 0, 0)
        );
        assert!(s.nonzero_buckets().is_empty());
    }

    #[test]
    fn merge_accumulates_and_tracks_extremes() {
        let a = Histogram::new();
        a.record(10);
        a.record(20);
        let b = Histogram::new();
        b.record(5);
        b.record(4000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 4);
        assert_eq!(m.sum(), 4035);
        assert_eq!(m.min_observed(), 5);
        assert_eq!(m.max_observed(), 4000);
        // Merging an empty snapshot is a no-op.
        let before = m.count();
        m.merge(&HistogramSnapshot::empty());
        assert_eq!(m.count(), before);
        // Merging into an empty snapshot copies the extremes.
        let mut e = HistogramSnapshot::empty();
        e.merge(&a.snapshot());
        assert_eq!(e.min_observed(), 10);
    }
}
