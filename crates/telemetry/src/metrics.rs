//! Log₂-bucketed histograms.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: bucket 0 holds the value 0, bucket `i` (1..=64)
/// holds values whose highest set bit is bit `i-1`, i.e. the range
/// `[2^(i-1), 2^i - 1]`.
const BUCKETS: usize = 65;

/// A lock-free histogram with power-of-two buckets.
///
/// Values are unitless `u64`s; by convention the distributor records
/// microseconds for simulated waits (`*_us`) and nanoseconds for real
/// CPU timings (`*_ns`). Recording is a handful of relaxed atomic ops,
/// and quantile queries are approximate (bucket upper bound).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of bucket `i`.
    fn bucket_upper(i: usize) -> u64 {
        match i {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A consistent-enough point-in-time copy for reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            count,
            sum: self.sum(),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time copy of a [`Histogram`], with derived statistics.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Per-bucket counts; see [`Histogram`] for the bucket layout.
    pub buckets: [u64; BUCKETS],
}

impl HistogramSnapshot {
    /// Mean of observed values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the `q`-th ranked observation.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Histogram::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper(0), 0);
        assert_eq!(Histogram::bucket_upper(2), 3);
        assert_eq!(Histogram::bucket_upper(64), u64::MAX);
    }

    #[test]
    fn stats_and_quantiles() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert_eq!(s.mean(), 221);
        assert!(s.quantile(0.5) >= 3 && s.quantile(0.5) < 100);
        assert_eq!(s.quantile(1.0), 1000);
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let s = Histogram::new().snapshot();
        assert_eq!(
            (s.count, s.sum, s.min, s.max, s.mean(), s.quantile(0.99)),
            (0, 0, 0, 0, 0, 0)
        );
    }
}
