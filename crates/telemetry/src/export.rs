//! Exporters: human-readable summary table, JSON-lines op-ledger, and a
//! dependency-free JSON parser for asserting on exported output.

use crate::registry::{Registry, RegistrySnapshot};

/// Render `ns` nanoseconds as a compact human duration.
pub(crate) fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{}us", ns / 1_000),
        10_000_000..=9_999_999_999 => format!("{}ms", ns / 1_000_000),
        _ => format!("{}s", ns / 1_000_000_000),
    }
}

fn metric_key(name: &str, label: &str) -> String {
    if label.is_empty() {
        name.to_string()
    } else {
        format!("{name}{{{label}}}")
    }
}

impl Registry {
    /// Render the human-readable summary table of everything recorded.
    pub fn render_summary(&self) -> String {
        render_summary(&self.snapshot())
    }

    /// Export the full op-ledger as JSON lines: one `meta` line, then
    /// one line per counter, histogram, span aggregate, and retained
    /// span record. Each line is a standalone JSON object with a
    /// `"type"` discriminator.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        let snap = self.snapshot();
        out.push_str(&format!(
            "{{\"type\":\"meta\",\"span_enters\":{},\"span_exits\":{},\"span_records_dropped\":{},\"clock\":{}}}\n",
            snap.span_enters,
            snap.span_exits,
            snap.span_records_dropped,
            crate::clock::now(),
        ));
        for c in &snap.counters {
            out.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":{},\"label\":{},\"value\":{}}}\n",
                json::quote(&c.name),
                json::quote(&c.label),
                c.value
            ));
        }
        for (name, label, h) in &snap.histograms {
            let p = h.percentiles();
            out.push_str(&format!(
                "{{\"type\":\"histogram\",\"name\":{},\"label\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}\n",
                json::quote(name),
                json::quote(label),
                h.count(),
                h.sum(),
                h.min_observed(),
                h.max_observed(),
                h.mean(),
                p.p50,
                p.p90,
                p.p99,
                p.p999
            ));
        }
        for (name, agg) in &snap.span_aggregates {
            out.push_str(&format!(
                "{{\"type\":\"span_summary\",\"name\":{},\"count\":{},\"total_ns\":{},\"max_ns\":{}}}\n",
                json::quote(name),
                agg.count,
                agg.total_ns,
                agg.max_ns
            ));
        }
        for r in self.span_records() {
            let attrs: Vec<String> = r
                .attrs
                .iter()
                .map(|(k, v)| format!("{}:{}", json::quote(k), json::quote(v)))
                .collect();
            out.push_str(&format!(
                "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":{},\"seq\":{},\"duration_ns\":{},\"attrs\":{{{}}}}}\n",
                r.id,
                r.parent.map_or("null".to_string(), |p| p.to_string()),
                json::quote(r.name),
                r.seq,
                r.duration_ns,
                attrs.join(",")
            ));
        }
        out
    }

    /// Write [`Registry::export_jsonl`] to `path`.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.export_jsonl())
    }
}

/// Render a [`RegistrySnapshot`] as the human-readable summary table.
pub fn render_summary(snap: &RegistrySnapshot) -> String {
    let mut out = String::from("telemetry summary\n");
    out.push_str(&format!(
        "  spans (enters={} exits={}{})\n",
        snap.span_enters,
        snap.span_exits,
        if snap.span_records_dropped > 0 {
            format!(" dropped_records={}", snap.span_records_dropped)
        } else {
            String::new()
        }
    ));
    out.push_str(&format!(
        "    {:<32} {:>8} {:>10} {:>10}\n",
        "name", "count", "total", "max"
    ));
    for (name, agg) in &snap.span_aggregates {
        out.push_str(&format!(
            "    {:<32} {:>8} {:>10} {:>10}\n",
            name,
            agg.count,
            fmt_ns(agg.total_ns),
            fmt_ns(agg.max_ns)
        ));
    }
    out.push_str("  counters\n");
    for c in &snap.counters {
        out.push_str(&format!(
            "    {:<40} {:>12}\n",
            metric_key(&c.name, &c.label),
            c.value
        ));
    }
    out.push_str("  histograms\n");
    out.push_str(&format!(
        "    {:<32} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10}\n",
        "name", "count", "mean", "p50", "p90", "p99", "p999", "max"
    ));
    for (name, label, h) in &snap.histograms {
        let p = h.percentiles();
        out.push_str(&format!(
            "    {:<32} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10}\n",
            metric_key(name, label),
            h.count(),
            h.mean(),
            p.p50,
            p.p90,
            p.p99,
            p.p999,
            h.max_observed()
        ));
    }
    out
}

/// Render a snapshot as one embeddable JSON object:
/// `{"counters":{...},"histograms":{...},"spans":{...}}`. Labelled
/// metrics use `name{label}` keys; labelled counter families also get a
/// `name` key holding the cross-label total.
pub fn summary_json(snap: &RegistrySnapshot) -> String {
    use std::collections::BTreeMap;
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    for c in &snap.counters {
        *counters.entry(c.name.clone()).or_default() += c.value;
        if !c.label.is_empty() {
            counters.insert(metric_key(&c.name, &c.label), c.value);
        }
    }
    let counter_entries: Vec<String> = counters
        .iter()
        .map(|(k, v)| format!("{}:{}", json::quote(k), v))
        .collect();
    let histogram_entries: Vec<String> = snap
        .histograms
        .iter()
        .map(|(name, label, h)| {
            let p = h.percentiles();
            format!(
                "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p99\":{},\"percentiles\":{{\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}}}",
                json::quote(&metric_key(name, label)),
                h.count(),
                h.sum(),
                h.min_observed(),
                h.max_observed(),
                h.mean(),
                p.p50,
                p.p99,
                p.p50,
                p.p90,
                p.p99,
                p.p999
            )
        })
        .collect();
    let span_entries: Vec<String> = snap
        .span_aggregates
        .iter()
        .map(|(name, agg)| {
            format!(
                "{}:{{\"count\":{},\"total_ns\":{},\"max_ns\":{}}}",
                json::quote(name),
                agg.count,
                agg.total_ns,
                agg.max_ns
            )
        })
        .collect();
    format!(
        "{{\"counters\":{{{}}},\"histograms\":{{{}}},\"spans\":{{{}}},\"span_enters\":{},\"span_exits\":{}}}",
        counter_entries.join(","),
        histogram_entries.join(","),
        span_entries.join(","),
        snap.span_enters,
        snap.span_exits
    )
}

/// A minimal JSON reader/writer — enough to quote strings on the way
/// out and to parse exported summaries back in tests and CI smoke runs.
pub mod json {
    use std::collections::BTreeMap;

    /// A parsed JSON value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any JSON number (held as `f64`).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object with sorted keys.
        Obj(BTreeMap<String, Value>),
    }

    impl Value {
        /// Member `key` of an object, if this is an object.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(m) => m.get(key),
                _ => None,
            }
        }

        /// The numeric value as `u64`, if this is a number.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(n) if *n >= 0.0 => Some(*n as u64),
                _ => None,
            }
        }

        /// The string value, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The elements, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }

        /// The members, if this is an object.
        pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
            match self {
                Value::Obj(m) => Some(m),
                _ => None,
            }
        }
    }

    /// Quote and escape `s` as a JSON string literal.
    pub fn quote(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// Parse a complete JSON document. Errors carry a byte offset.
    pub fn parse(input: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected '{}' at byte {}", b as char, self.pos))
            }
        }

        fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                Ok(v)
            } else {
                Err(format!("invalid literal at byte {}", self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'n') => self.literal("null", Value::Null),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b'[') => self.array(),
                Some(b'{') => self.object(),
                Some(b'-' | b'0'..=b'9') => self.number(),
                _ => Err(format!("unexpected byte at {}", self.pos)),
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            while matches!(
                self.peek(),
                Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            ) {
                self.pos += 1;
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Value::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'u') => {
                                let cp = self.hex4()?;
                                out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            }
                            _ => return Err(format!("bad escape at byte {}", self.pos)),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one full UTF-8 character.
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| "invalid utf-8".to_string())?;
                        let c = rest
                            .chars()
                            .next()
                            .ok_or_else(|| "truncated string".to_string())?;
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn hex4(&mut self) -> Result<u32, String> {
            // self.pos is on 'u'; the four digits follow.
            let start = self.pos + 1;
            let end = start + 4;
            if end > self.bytes.len() {
                return Err("truncated \\u escape".into());
            }
            let cp = std::str::from_utf8(&self.bytes[start..end])
                .ok()
                .and_then(|s| u32::from_str_radix(s, 16).ok())
                .ok_or_else(|| format!("bad \\u escape at byte {start}"))?;
            self.pos = end - 1; // the shared escape advance adds the final 1
            Ok(cp)
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut out = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(out));
            }
            loop {
                self.skip_ws();
                out.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(out));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                }
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut out = BTreeMap::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(out));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                out.insert(key, self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(out));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::json::{parse, quote, Value};
    use crate::TelemetryHandle;

    fn populated() -> TelemetryHandle {
        let tel = TelemetryHandle::enabled();
        {
            let _g = crate::span!(tel, "put", file = "f");
            tel.incr("puts_total");
            tel.add_labeled("retries_total", "AWS", 2);
            tel.observe("backoff_wait_us", 250);
        }
        tel
    }

    #[test]
    fn summary_mentions_everything() {
        let tel = populated();
        let s = tel.registry().unwrap().render_summary();
        for needle in [
            "put",
            "puts_total",
            "retries_total{AWS}",
            "backoff_wait_us",
            "enters=1 exits=1",
        ] {
            assert!(s.contains(needle), "summary missing {needle:?} in:\n{s}");
        }
    }

    #[test]
    fn jsonl_lines_all_parse() {
        let tel = populated();
        let ledger = tel.registry().unwrap().export_jsonl();
        let mut types = std::collections::BTreeSet::new();
        for line in ledger.lines() {
            let v = parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
            types.insert(v.get("type").unwrap().as_str().unwrap().to_string());
        }
        for t in ["meta", "counter", "histogram", "span_summary", "span"] {
            assert!(types.contains(t), "ledger missing a {t:?} line");
        }
    }

    #[test]
    fn summary_json_parses_with_family_totals() {
        let tel = populated();
        let doc = super::summary_json(&tel.registry().unwrap().snapshot());
        let v = parse(&doc).expect("valid json");
        let counters = v.get("counters").unwrap();
        assert_eq!(counters.get("retries_total").unwrap().as_u64(), Some(2));
        assert_eq!(
            counters.get("retries_total{AWS}").unwrap().as_u64(),
            Some(2)
        );
        assert_eq!(counters.get("puts_total").unwrap().as_u64(), Some(1));
        let h = v
            .get("histograms")
            .unwrap()
            .get("backoff_wait_us")
            .expect("histogram entry");
        let p = h.get("percentiles").expect("percentiles block");
        for q in ["p50", "p90", "p99", "p999"] {
            assert!(
                p.get(q).and_then(Value::as_u64).is_some(),
                "percentiles missing {q}"
            );
        }
        assert_eq!(
            v.get("spans")
                .unwrap()
                .get("put")
                .unwrap()
                .get("count")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }

    #[test]
    fn parser_roundtrips_escapes_and_nesting() {
        let src = r#"{"a":[1,2.5,-3,null,true,false],"s":"he said \"hi\"\n\tA","o":{"inner":[]}}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("he said \"hi\"\n\tA"));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 6);
        assert_eq!(quote("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(
            parse(&quote("a\"b\\c\nd")).unwrap(),
            Value::Str("a\"b\\c\nd".into())
        );
        assert!(parse("{\"k\":1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("{\"k\"").is_err());
    }
}
