//! A process-wide logical clock.
//!
//! The simulator has no single wall clock: provider ops, observer
//! records, and telemetry spans all happen on different threads and the
//! interesting property is their *order*, not their timestamps. This
//! module provides one monotonically increasing `u64` sequence shared by
//! everything in the process, so attack experiments (which read the
//! providers' [`Observer`] logs) and telemetry spans agree on a single
//! event ordering.
//!
//! [`Observer`]: https://docs.rs/fragcloud-sim

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

static TICKS: AtomicU64 = AtomicU64::new(0);

/// Epoch for trace timestamps: pinned the first time anyone asks.
static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();

/// Monotonic ordinal handed to each thread on its first span.
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ORDINAL: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) + 1;
}

/// Advance the clock and return the new tick. Every observable event
/// (a span enter, an observer record, a provider op) should call this
/// exactly once.
pub fn tick() -> u64 {
    TICKS.fetch_add(1, Ordering::Relaxed) + 1
}

/// The current tick without advancing. Zero means nothing has ever
/// ticked in this process.
pub fn now() -> u64 {
    TICKS.load(Ordering::Relaxed)
}

/// Reads the monotonic wall clock, for measuring real durations (span
/// timings, `TelemetryHandle::time`).
///
/// This is the single sanctioned wall-clock read in the workspace — the
/// `no-wall-clock` fraglint rule points every other module here — so
/// logical order (ticks) and real durations always come from one place
/// and cannot silently diverge across modules.
pub fn monotonic_now() -> std::time::Instant {
    std::time::Instant::now()
}

/// Nanoseconds of wall time since the process's *trace epoch* — the
/// moment this function was first called. Span records carry it as
/// their start timestamp so the Chrome-trace exporter can place spans
/// on one shared timeline; the first caller reads 0.
pub fn since_epoch() -> u64 {
    EPOCH
        .get_or_init(monotonic_now)
        .elapsed()
        .as_nanos()
        .min(u128::from(u64::MAX)) as u64
}

/// A small stable ordinal for the calling thread (1-based, assigned on
/// first use). The trace exporter uses it as the `tid` lane so spans
/// from different pool workers land on different tracks.
pub fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|t| *t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_strictly_increasing() {
        let a = tick();
        let b = tick();
        let c = tick();
        assert!(a < b && b < c);
        assert!(now() >= c);
    }

    #[test]
    fn epoch_is_monotonic_and_ordinals_distinct() {
        let a = since_epoch();
        let b = since_epoch();
        assert!(b >= a);
        let here = thread_ordinal();
        assert_eq!(here, thread_ordinal(), "stable per thread");
        let there = std::thread::spawn(thread_ordinal).join().unwrap();
        assert_ne!(here, there, "each thread gets its own ordinal");
    }

    #[test]
    fn concurrent_ticks_are_unique() {
        let mut handles = Vec::new();
        for _ in 0..8 {
            handles.push(std::thread::spawn(|| {
                (0..1000).map(|_| tick()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8 * 1000, "no tick may be handed out twice");
    }
}
