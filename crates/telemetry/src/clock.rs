//! A process-wide logical clock.
//!
//! The simulator has no single wall clock: provider ops, observer
//! records, and telemetry spans all happen on different threads and the
//! interesting property is their *order*, not their timestamps. This
//! module provides one monotonically increasing `u64` sequence shared by
//! everything in the process, so attack experiments (which read the
//! providers' [`Observer`] logs) and telemetry spans agree on a single
//! event ordering.
//!
//! [`Observer`]: https://docs.rs/fragcloud-sim

use std::sync::atomic::{AtomicU64, Ordering};

static TICKS: AtomicU64 = AtomicU64::new(0);

/// Advance the clock and return the new tick. Every observable event
/// (a span enter, an observer record, a provider op) should call this
/// exactly once.
pub fn tick() -> u64 {
    TICKS.fetch_add(1, Ordering::Relaxed) + 1
}

/// The current tick without advancing. Zero means nothing has ever
/// ticked in this process.
pub fn now() -> u64 {
    TICKS.load(Ordering::Relaxed)
}

/// Reads the monotonic wall clock, for measuring real durations (span
/// timings, `TelemetryHandle::time`).
///
/// This is the single sanctioned wall-clock read in the workspace — the
/// `no-wall-clock` fraglint rule points every other module here — so
/// logical order (ticks) and real durations always come from one place
/// and cannot silently diverge across modules.
pub fn monotonic_now() -> std::time::Instant {
    std::time::Instant::now()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_strictly_increasing() {
        let a = tick();
        let b = tick();
        let c = tick();
        assert!(a < b && b < c);
        assert!(now() >= c);
    }

    #[test]
    fn concurrent_ticks_are_unique() {
        let mut handles = Vec::new();
        for _ in 0..8 {
            handles.push(std::thread::spawn(|| {
                (0..1000).map(|_| tick()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8 * 1000, "no tick may be handed out twice");
    }
}
