//! Span latency rollups: per-operation histograms with parent-edge
//! attribution — a poor-man's critical-path profile.
//!
//! The span collector retains individual [`SpanRecord`]s with parent
//! linkage. A [`rollup`] pass aggregates them by name into per-operation
//! latency histograms and splits every operation's inclusive time into
//! *self time* (spent in the operation's own code) and *child time*
//! (spent inside named sub-spans), plus the parent→child edge totals.
//! `put` spending 90% of its time under `raid.encode` vs under `store`
//! is exactly the question this answers without loading a full trace.

use crate::metrics::{Histogram, HistogramSnapshot};
use crate::span::SpanRecord;
use std::collections::BTreeMap;

/// Aggregated view of every span sharing a name.
#[derive(Clone, Debug)]
pub struct SpanRollup {
    /// Span name (e.g. `"put"`).
    pub name: &'static str,
    /// Completions.
    pub count: u64,
    /// Total inclusive wall time, in nanoseconds.
    pub total_ns: u64,
    /// Inclusive time minus direct children's inclusive time.
    pub self_ns: u64,
    /// Direct children's inclusive time attributed to this name.
    pub child_ns: u64,
    /// Longest single completion, in nanoseconds.
    pub max_ns: u64,
    /// Per-completion inclusive latency histogram (nanoseconds).
    pub latency: HistogramSnapshot,
}

/// One parent→child attribution edge.
#[derive(Clone, Debug)]
pub struct RollupEdge {
    /// Parent span name.
    pub parent: &'static str,
    /// Child span name.
    pub child: &'static str,
    /// Child completions under this parent name.
    pub count: u64,
    /// Child inclusive time under this parent name, in nanoseconds.
    pub total_ns: u64,
}

/// Output of [`rollup`]: per-name aggregates plus the edge list.
#[derive(Clone, Debug, Default)]
pub struct RollupReport {
    /// Per-name rollups, sorted by descending self time.
    pub rollups: Vec<SpanRollup>,
    /// Parent→child edges, sorted by descending attributed time.
    pub edges: Vec<RollupEdge>,
}

impl RollupReport {
    /// The rollup for `name`, if that span ever completed.
    pub fn get(&self, name: &str) -> Option<&SpanRollup> {
        self.rollups.iter().find(|r| r.name == name)
    }
}

/// Aggregates retained span records by name.
///
/// Children whose parent record was dropped by the collector's retention
/// cap attribute nothing (their parent's identity is unknown); their own
/// rollup still counts them. Self time is clamped at zero per record, so
/// timer jitter between a parent and its children cannot produce
/// negative attributions.
pub fn rollup(records: &[SpanRecord]) -> RollupReport {
    struct Acc {
        count: u64,
        total_ns: u64,
        child_ns: u64,
        max_ns: u64,
        latency: Histogram,
    }
    let by_id: BTreeMap<u64, &SpanRecord> = records.iter().map(|r| (r.id, r)).collect();
    let mut names: BTreeMap<&'static str, Acc> = BTreeMap::new();
    let mut edges: BTreeMap<(&'static str, &'static str), (u64, u64)> = BTreeMap::new();

    for r in records {
        let acc = names.entry(r.name).or_insert_with(|| Acc {
            count: 0,
            total_ns: 0,
            child_ns: 0,
            max_ns: 0,
            latency: Histogram::new(),
        });
        acc.count += 1;
        acc.total_ns += r.duration_ns;
        acc.max_ns = acc.max_ns.max(r.duration_ns);
        acc.latency.record(r.duration_ns);
    }
    for r in records {
        let Some(parent) = r.parent.and_then(|p| by_id.get(&p)) else {
            continue;
        };
        if let Some(acc) = names.get_mut(parent.name) {
            acc.child_ns += r.duration_ns;
        }
        let e = edges.entry((parent.name, r.name)).or_insert((0, 0));
        e.0 += 1;
        e.1 += r.duration_ns;
    }

    let mut rollups: Vec<SpanRollup> = names
        .into_iter()
        .map(|(name, acc)| SpanRollup {
            name,
            count: acc.count,
            total_ns: acc.total_ns,
            self_ns: acc.total_ns.saturating_sub(acc.child_ns),
            child_ns: acc.child_ns.min(acc.total_ns),
            max_ns: acc.max_ns,
            latency: acc.latency.snapshot(),
        })
        .collect();
    rollups.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(b.name)));

    let mut edges: Vec<RollupEdge> = edges
        .into_iter()
        .map(|((parent, child), (count, total_ns))| RollupEdge {
            parent,
            child,
            count,
            total_ns,
        })
        .collect();
    edges.sort_by_key(|e| std::cmp::Reverse(e.total_ns));
    RollupReport { rollups, edges }
}

/// Renders a [`RollupReport`] as an aligned text profile: per-name
/// self/child split with interpolated latency percentiles, then the
/// heaviest attribution edges.
pub fn render_rollup(report: &RollupReport) -> String {
    use crate::export::fmt_ns;
    let mut out = String::from("span rollup (self vs child time)\n");
    out.push_str(&format!(
        "  {:<24} {:>7} {:>10} {:>10} {:>10} {:>6} {:>10} {:>10}\n",
        "name", "count", "total", "self", "child", "self%", "p50", "p99"
    ));
    for r in &report.rollups {
        let self_pct = if r.total_ns == 0 {
            100.0
        } else {
            100.0 * r.self_ns as f64 / r.total_ns as f64
        };
        out.push_str(&format!(
            "  {:<24} {:>7} {:>10} {:>10} {:>10} {:>5.1}% {:>10} {:>10}\n",
            r.name,
            r.count,
            fmt_ns(r.total_ns),
            fmt_ns(r.self_ns),
            fmt_ns(r.child_ns),
            self_pct,
            fmt_ns(r.latency.p50()),
            fmt_ns(r.latency.p99()),
        ));
    }
    if !report.edges.is_empty() {
        out.push_str("  edges (parent -> child)\n");
        for e in &report.edges {
            out.push_str(&format!(
                "    {:<32} {:>7} {:>10}\n",
                format!("{} -> {}", e.parent, e.child),
                e.count,
                fmt_ns(e.total_ns),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetryHandle;

    #[test]
    fn self_time_excludes_children_and_edges_attribute() {
        let tel = TelemetryHandle::enabled();
        {
            let _put = tel.span("put");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _enc = tel.span("raid.encode");
                std::thread::sleep(std::time::Duration::from_millis(4));
            }
            {
                let _store = tel.span("store");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let records = tel.registry().unwrap().span_records();
        let report = rollup(&records);

        let put = report.get("put").expect("put rolled up");
        let enc = report.get("raid.encode").expect("encode rolled up");
        assert_eq!(put.count, 1);
        assert_eq!(put.child_ns + put.self_ns, put.total_ns);
        assert!(
            put.child_ns >= enc.total_ns,
            "children attribute into the parent: {put:?}"
        );
        assert!(put.self_ns < put.total_ns, "put has real child time");
        assert_eq!(enc.self_ns, enc.total_ns, "leaf spans are all self time");

        let edge = report
            .edges
            .iter()
            .find(|e| e.parent == "put" && e.child == "raid.encode")
            .expect("put->encode edge");
        assert_eq!(edge.count, 1);
        assert_eq!(edge.total_ns, enc.total_ns);

        let text = render_rollup(&report);
        for needle in ["span rollup", "put", "raid.encode", "self%", "edges"] {
            assert!(text.contains(needle), "missing {needle:?}:\n{text}");
        }
    }

    #[test]
    fn orphaned_children_still_count_themselves() {
        let tel = TelemetryHandle::enabled();
        {
            let _a = tel.span("a");
            let _b = tel.span("b");
        }
        let mut records = tel.registry().unwrap().span_records();
        // Simulate the parent record having been dropped by the cap.
        records.retain(|r| r.name != "a");
        let report = rollup(&records);
        assert!(report.get("b").is_some());
        assert!(report.edges.is_empty());
    }

    #[test]
    fn empty_records_roll_up_empty() {
        let report = rollup(&[]);
        assert!(report.rollups.is_empty());
        assert!(report.edges.is_empty());
        assert!(render_rollup(&report).contains("span rollup"));
    }
}
