//! Windowed histograms: percentiles-over-time instead of one lifetime blur.
//!
//! A [`RollingHistogram`] is a ring of `N` fixed-width windows keyed off a
//! monotonically increasing tick — by default the process-wide logical
//! clock ([`clock::now`](crate::clock::now)), but experiments that want
//! deterministic phase boundaries can feed their own tick (a trial index,
//! a request number) through [`record_at`](RollingHistogram::record_at).
//!
//! Each window is a full log₂ histogram, so a run can report p50/p99/p999
//! *per phase* (warmup vs steady-state vs churn) rather than one blended
//! distribution. When the tick advances past the ring's capacity the
//! oldest windows are retired; [`WindowedSnapshot`] exposes the retained
//! windows oldest-first plus a merged whole-retained-range view.

use crate::clock;
use crate::metrics::{Histogram, HistogramSnapshot};
use parking_lot::Mutex;

/// One retained window of a [`RollingHistogram`].
#[derive(Clone, Debug)]
pub struct WindowSnapshot {
    /// First tick this window covers (inclusive); the window spans
    /// `[start_tick, start_tick + window_ticks)`.
    pub start_tick: u64,
    /// The window's histogram.
    pub histogram: HistogramSnapshot,
}

/// Point-in-time copy of a [`RollingHistogram`].
#[derive(Clone, Debug)]
pub struct WindowedSnapshot {
    /// Width of each window in ticks.
    pub window_ticks: u64,
    /// Retained windows, oldest first. Empty windows inside the retained
    /// range are included (zero-count histograms) so time stays linear.
    pub windows: Vec<WindowSnapshot>,
}

impl WindowedSnapshot {
    /// All retained windows merged into one histogram.
    pub fn merged(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::empty();
        for w in &self.windows {
            out.merge(&w.histogram);
        }
        out
    }
}

struct Ring {
    /// Slot i holds the window whose ordinal (tick / width) is stored in
    /// `ordinals[i]`; `u64::MAX` marks a never-used slot.
    windows: Vec<Histogram>,
    ordinals: Vec<u64>,
    /// Highest window ordinal seen so far (drives retirement).
    newest: u64,
    any: bool,
}

/// A ring of `N` fixed-width histogram windows keyed off a logical tick.
///
/// Thread-safe; recording takes a short mutex (the ring must atomically
/// retire stale windows), which is fine for the per-operation rates the
/// distributor produces. For lifetime aggregates use a plain
/// [`Histogram`] — this type exists for *time-resolved* percentiles.
pub struct RollingHistogram {
    window_ticks: u64,
    ring: Mutex<Ring>,
}

impl RollingHistogram {
    /// A ring of `windows` windows, each `window_ticks` ticks wide (both
    /// clamped to at least 1).
    pub fn new(windows: usize, window_ticks: u64) -> Self {
        let n = windows.max(1);
        RollingHistogram {
            window_ticks: window_ticks.max(1),
            ring: Mutex::new(Ring {
                windows: (0..n).map(|_| Histogram::new()).collect(),
                ordinals: vec![u64::MAX; n],
                newest: 0,
                any: false,
            }),
        }
    }

    /// Width of each window in ticks.
    pub fn window_ticks(&self) -> u64 {
        self.window_ticks
    }

    /// Number of windows the ring retains.
    pub fn window_count(&self) -> usize {
        self.ring.lock().windows.len()
    }

    /// Record `value` in the window covering the current logical-clock
    /// tick ([`clock::now`](crate::clock::now)).
    pub fn record(&self, value: u64) {
        self.record_at(clock::now(), value);
    }

    /// Record `value` in the window covering `tick`. Ticks may arrive
    /// slightly out of order; a tick older than the retained ring is
    /// dropped (it belongs to a retired window).
    pub fn record_at(&self, tick: u64, value: u64) {
        let ordinal = tick / self.window_ticks;
        let mut ring = self.ring.lock();
        let n = ring.windows.len() as u64;
        if ring.any && ordinal + n <= ring.newest {
            return; // retired window; too old to retain
        }
        if !ring.any || ordinal > ring.newest {
            ring.newest = ring.newest.max(ordinal);
            ring.any = true;
        }
        let slot = (ordinal % n) as usize;
        if ring.ordinals[slot] != ordinal {
            // The slot last held a retired window: recycle it.
            ring.windows[slot] = Histogram::new();
            ring.ordinals[slot] = ordinal;
        }
        ring.windows[slot].record(value);
    }

    /// Snapshot the retained windows, oldest first. Windows inside the
    /// retained range that never saw a record appear as empty histograms,
    /// so consumers can treat the result as a linear timeline.
    pub fn snapshot(&self) -> WindowedSnapshot {
        let ring = self.ring.lock();
        let mut windows = Vec::new();
        if ring.any {
            let n = ring.windows.len() as u64;
            let oldest = ring.newest.saturating_sub(n - 1);
            for ordinal in oldest..=ring.newest {
                let slot = (ordinal % n) as usize;
                let histogram = if ring.ordinals[slot] == ordinal {
                    ring.windows[slot].snapshot()
                } else {
                    HistogramSnapshot::empty()
                };
                windows.push(WindowSnapshot {
                    start_tick: ordinal * self.window_ticks,
                    histogram,
                });
            }
            // Leading never-recorded windows carry no information.
            while windows
                .first()
                .is_some_and(|w| w.histogram.count() == 0)
            {
                windows.remove(0);
            }
        }
        WindowedSnapshot {
            window_ticks: self.window_ticks,
            windows,
        }
    }
}

impl std::fmt::Debug for RollingHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RollingHistogram")
            .field("window_ticks", &self.window_ticks)
            .field("windows", &self.ring.lock().windows.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_partition_by_tick() {
        let r = RollingHistogram::new(4, 10);
        for t in 0..40u64 {
            r.record_at(t, t); // window k holds values 10k..10k+9
        }
        let snap = r.snapshot();
        assert_eq!(snap.windows.len(), 4);
        for (k, w) in snap.windows.iter().enumerate() {
            assert_eq!(w.start_tick, 10 * k as u64);
            assert_eq!(w.histogram.count(), 10);
            assert_eq!(w.histogram.min_observed(), 10 * k as u64);
            assert_eq!(w.histogram.max_observed(), 10 * k as u64 + 9);
        }
        assert_eq!(snap.merged().count(), 40);
    }

    #[test]
    fn old_windows_retire_as_the_clock_advances() {
        let r = RollingHistogram::new(2, 10);
        r.record_at(5, 1); // window 0
        r.record_at(15, 2); // window 1
        r.record_at(25, 3); // window 2 — retires window 0
        let snap = r.snapshot();
        assert_eq!(snap.windows.len(), 2);
        assert_eq!(snap.windows[0].start_tick, 10);
        assert_eq!(snap.windows[1].start_tick, 20);
        // A record for the retired window is dropped, not misfiled.
        r.record_at(5, 9);
        assert_eq!(r.snapshot().merged().count(), 2);
    }

    #[test]
    fn gaps_surface_as_empty_windows() {
        let r = RollingHistogram::new(4, 10);
        r.record_at(0, 1);
        r.record_at(35, 2); // windows 1 and 2 never recorded
        let snap = r.snapshot();
        assert_eq!(snap.windows.len(), 4);
        assert_eq!(snap.windows[1].histogram.count(), 0);
        assert_eq!(snap.windows[2].histogram.count(), 0);
        assert_eq!(snap.merged().count(), 2);
    }

    #[test]
    fn default_record_uses_the_logical_clock() {
        let r = RollingHistogram::new(4, 1_000_000_000);
        crate::clock::tick();
        r.record(7);
        let snap = r.snapshot();
        assert_eq!(snap.merged().count(), 1);
        assert_eq!(snap.merged().max_observed(), 7);
    }

    #[test]
    fn empty_ring_snapshots_empty() {
        let snap = RollingHistogram::new(3, 5).snapshot();
        assert!(snap.windows.is_empty());
        assert_eq!(snap.merged().count(), 0);
    }
}
