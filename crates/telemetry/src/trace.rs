//! Chrome `trace_event` export: retained spans as a JSON document that
//! `chrome://tracing` and Perfetto load directly.
//!
//! Each completed span becomes one complete ("ph":"X") event with its
//! wall-clock offset from the process trace epoch as `ts` and its
//! duration as `dur` (both in fractional microseconds, per the trace
//! format). The span's thread ordinal becomes the `tid` lane, so pool
//! workers render as separate tracks, and attributes plus ids land in
//! `args` for correlation with the JSON-lines ledger.

use crate::export::json;
use crate::registry::Registry;
use crate::span::SpanRecord;

/// Formats nanoseconds as fractional microseconds (3 decimal places),
/// the trace format's native unit.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Renders span records as a Chrome trace-event JSON document
/// (object-form, `{"traceEvents":[...]}`) loadable by Perfetto.
pub fn chrome_trace(records: &[SpanRecord]) -> String {
    let mut events: Vec<String> = Vec::with_capacity(records.len());
    for r in records {
        let mut args = vec![
            format!("\"id\":{}", r.id),
            format!(
                "\"parent\":{}",
                r.parent.map_or("null".to_string(), |p| p.to_string())
            ),
            format!("\"seq\":{}", r.seq),
        ];
        for (k, v) in &r.attrs {
            args.push(format!("{}:{}", json::quote(k), json::quote(v)));
        }
        events.push(format!(
            "{{\"name\":{},\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{{}}}}}",
            json::quote(r.name),
            us(r.start_ns),
            us(r.duration_ns),
            r.tid,
            args.join(",")
        ));
    }
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}\n",
        events.join(",")
    )
}

impl Registry {
    /// Export every retained span as Chrome trace-event JSON (see
    /// [`chrome_trace`]). Spans beyond the retention cap are absent —
    /// check [`RegistrySnapshot::span_records_dropped`] when the trace
    /// looks truncated.
    ///
    /// [`RegistrySnapshot::span_records_dropped`]: crate::RegistrySnapshot::span_records_dropped
    pub fn export_trace(&self) -> String {
        chrome_trace(&self.span_records())
    }

    /// Write [`Registry::export_trace`] to `path`.
    pub fn write_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.export_trace())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::json::parse;
    use crate::TelemetryHandle;

    #[test]
    fn trace_is_structurally_valid_and_nested_in_time() {
        let tel = TelemetryHandle::enabled();
        {
            let _put = crate::span!(tel, "put", file = "a.txt");
            let _enc = tel.span("raid.encode");
        }
        let doc = tel.registry().unwrap().export_trace();
        let v = parse(doc.trim()).expect("valid trace json");
        let events = v
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        assert_eq!(events.len(), 2);
        for e in events {
            assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
            assert_eq!(e.get("cat").unwrap().as_str(), Some("span"));
            assert!(e.get("ts").is_some() && e.get("dur").is_some());
            assert!(e.get("pid").unwrap().as_u64().is_some());
            assert!(e.get("tid").unwrap().as_u64().is_some());
            assert!(e.get("args").unwrap().as_object().is_some());
        }
        // The child's [ts, ts+dur] interval sits inside the parent's.
        let ts = |e: &json::Value| match e.get("ts").unwrap() {
            json::Value::Num(n) => *n,
            _ => panic!("ts must be a number"),
        };
        let dur = |e: &json::Value| match e.get("dur").unwrap() {
            json::Value::Num(n) => *n,
            _ => panic!("dur must be a number"),
        };
        let put = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("put"))
            .unwrap();
        let enc = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("raid.encode"))
            .unwrap();
        assert!(ts(enc) >= ts(put), "child starts after parent");
        assert!(
            ts(enc) + dur(enc) <= ts(put) + dur(put) + 0.01,
            "child ends before parent (within rounding)"
        );
        // The attr flowed into args.
        assert_eq!(
            put.get("args").unwrap().get("file").unwrap().as_str(),
            Some("a.txt")
        );
    }

    #[test]
    fn empty_registry_exports_an_empty_event_list() {
        let tel = TelemetryHandle::enabled();
        let doc = tel.registry().unwrap().export_trace();
        let v = parse(doc.trim()).expect("valid json");
        assert_eq!(
            v.get("traceEvents").unwrap().as_array().map(|a| a.len()),
            Some(0)
        );
    }

    #[test]
    fn fractional_microseconds_format() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(1_500), "1.500");
        assert_eq!(us(12_345_678), "12345.678");
    }
}
