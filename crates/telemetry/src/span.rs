//! RAII spans with parent linkage and a bounded in-memory collector.

use crate::clock;
use crate::registry::Registry;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Hard cap on retained [`SpanRecord`]s; completions beyond it are
/// counted in [`SpanCollector::dropped`] instead of silently lost.
const MAX_RECORDS: usize = 65_536;

thread_local! {
    /// Stack of open span ids on this thread, innermost last.
    static OPEN: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// A completed span: one timed enter/exit pair.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Process-unique span id.
    pub id: u64,
    /// Id of the span that was open on the same thread at enter time.
    pub parent: Option<u64>,
    /// Span name (e.g. `"get"`).
    pub name: &'static str,
    /// Key/value attributes attached via [`SpanGuard::attr`] / `span!`.
    pub attrs: Vec<(&'static str, String)>,
    /// Logical-clock tick at enter; orders this span against observer
    /// events and other spans process-wide.
    pub seq: u64,
    /// Wall-clock nanoseconds from the process trace epoch
    /// ([`clock::since_epoch`]) to this span's enter — the timestamp the
    /// Chrome-trace exporter places the span at.
    pub start_ns: u64,
    /// Ordinal of the thread the span ran on ([`clock::thread_ordinal`]);
    /// the trace exporter's `tid` lane.
    pub tid: u64,
    /// Wall-clock duration from enter to exit, in nanoseconds.
    pub duration_ns: u64,
}

/// Aggregate statistics for all spans sharing a name.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpanAggregate {
    /// Completed spans with this name.
    pub count: u64,
    /// Total duration across completions, in nanoseconds.
    pub total_ns: u64,
    /// Longest single completion, in nanoseconds.
    pub max_ns: u64,
}

/// Thread-safe store of span completions; owned by a [`Registry`].
#[derive(Default)]
pub(crate) struct SpanCollector {
    next_id: AtomicU64,
    enters: AtomicU64,
    exits: AtomicU64,
    dropped: AtomicU64,
    records: Mutex<Vec<SpanRecord>>,
    aggregates: Mutex<std::collections::BTreeMap<&'static str, SpanAggregate>>,
}

impl SpanCollector {
    pub(crate) fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    pub(crate) fn note_enter(&self) {
        self.enters.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn finish(&self, record: SpanRecord) {
        self.exits.fetch_add(1, Ordering::Relaxed);
        {
            let mut agg = self.aggregates.lock();
            let entry = agg.entry(record.name).or_default();
            entry.count += 1;
            entry.total_ns += record.duration_ns;
            entry.max_ns = entry.max_ns.max(record.duration_ns);
        }
        let mut records = self.records.lock();
        if records.len() < MAX_RECORDS {
            records.push(record);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn enters(&self) -> u64 {
        self.enters.load(Ordering::Relaxed)
    }

    pub(crate) fn exits(&self) -> u64 {
        self.exits.load(Ordering::Relaxed)
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    pub(crate) fn records(&self) -> Vec<SpanRecord> {
        self.records.lock().clone()
    }

    pub(crate) fn aggregates(&self) -> Vec<(&'static str, SpanAggregate)> {
        self.aggregates
            .lock()
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect()
    }

    pub(crate) fn aggregate(&self, name: &str) -> SpanAggregate {
        self.aggregates
            .lock()
            .get(name)
            .copied()
            .unwrap_or_default()
    }

    pub(crate) fn clear(&self) {
        self.records.lock().clear();
        self.aggregates.lock().clear();
    }
}

struct SpanInner {
    registry: Arc<Registry>,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    attrs: Vec<(&'static str, String)>,
    seq: u64,
    start_ns: u64,
    start: Instant,
}

/// RAII guard for an open span. Created by [`TelemetryHandle::span`]
/// or the [`span!`] macro; the span completes when the guard drops.
///
/// Guards must be dropped on the thread that opened them (they maintain
/// a thread-local parent stack); the distributor's scoped fan-outs
/// satisfy this naturally.
///
/// [`TelemetryHandle::span`]: crate::TelemetryHandle::span
/// [`span!`]: crate::span!
#[must_use = "a span records nothing until the guard is dropped"]
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

impl SpanGuard {
    pub(crate) fn noop() -> Self {
        Self { inner: None }
    }

    pub(crate) fn enter(registry: Arc<Registry>, name: &'static str) -> Self {
        let collector = registry.spans();
        let id = collector.next_id();
        collector.note_enter();
        let parent = OPEN.with(|open| {
            let mut open = open.borrow_mut();
            let parent = open.last().copied();
            open.push(id);
            parent
        });
        Self {
            inner: Some(SpanInner {
                registry,
                id,
                parent,
                name,
                attrs: Vec::new(),
                seq: clock::tick(),
                start_ns: clock::since_epoch(),
                start: clock::monotonic_now(),
            }),
        }
    }

    /// Attach a key/value attribute (no-op when telemetry is disabled).
    pub fn attr(mut self, key: &'static str, value: &dyn std::fmt::Display) -> Self {
        if let Some(inner) = &mut self.inner {
            inner.attrs.push((key, value.to_string()));
        }
        self
    }

    /// This span's id, if recording (e.g. to correlate with log lines).
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        OPEN.with(|open| {
            let mut open = open.borrow_mut();
            // Normally a strict stack; remove by id to stay balanced even
            // if a caller drops guards out of order.
            if let Some(pos) = open.iter().rposition(|&id| id == inner.id) {
                open.remove(pos);
            }
        });
        let duration_ns = inner.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        inner.registry.spans().finish(SpanRecord {
            id: inner.id,
            parent: inner.parent,
            name: inner.name,
            attrs: inner.attrs,
            seq: inner.seq,
            start_ns: inner.start_ns,
            tid: clock::thread_ordinal(),
            duration_ns,
        });
    }
}

#[cfg(test)]
mod tests {
    use crate::TelemetryHandle;

    #[test]
    fn spans_nest_and_balance() {
        let tel = TelemetryHandle::enabled();
        {
            let outer = crate::span!(tel, "put", file = "a.txt");
            let outer_id = outer.id().unwrap();
            {
                let inner = crate::span!(tel, "raid.encode");
                assert_ne!(inner.id().unwrap(), outer_id);
            }
            let _sibling = tel.span("store");
        }
        let reg = tel.registry().unwrap();
        assert!(reg.spans_balanced());
        assert_eq!(reg.span_count("put"), 1);
        assert_eq!(reg.span_count("raid.encode"), 1);
        let records = reg.span_records();
        let put = records.iter().find(|r| r.name == "put").unwrap();
        let enc = records.iter().find(|r| r.name == "raid.encode").unwrap();
        let store = records.iter().find(|r| r.name == "store").unwrap();
        assert_eq!(put.parent, None);
        assert_eq!(enc.parent, Some(put.id));
        assert_eq!(store.parent, Some(put.id));
        assert_eq!(put.attrs, vec![("file", "a.txt".to_string())]);
        assert!(enc.seq > put.seq, "logical clock orders enters");
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let tel = TelemetryHandle::disabled();
        let g = crate::span!(tel, "get", chunk = 1);
        assert_eq!(g.id(), None);
        drop(g);
        assert!(tel.registry().is_none());
    }

    #[test]
    fn out_of_order_drop_stays_balanced() {
        let tel = TelemetryHandle::enabled();
        let a = tel.span("a");
        let b = tel.span("b");
        drop(a);
        drop(b);
        let reg = tel.registry().unwrap();
        assert!(reg.spans_balanced());
        assert_eq!(reg.span_count("a") + reg.span_count("b"), 2);
    }
}
