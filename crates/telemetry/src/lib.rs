//! Runtime observability for the cloud data distributor.
//!
//! This crate is the *operational* counterpart to `fragcloud-metrics`
//! (which scores privacy/attack outcomes): it answers questions like
//! "how many reads were hedged", "how often did parity reconstruction
//! fire", and "what did a put cost per provider" without ad-hoc
//! printlns. It is built only on `std` plus the vendored `parking_lot`
//! shim — no external registry access is required.
//!
//! Three pieces:
//!
//! 1. **Spans** — [`span!`] / [`TelemetryHandle::span`] return an RAII
//!    [`SpanGuard`] that records a timed enter/exit with parent linkage
//!    (a thread-local stack) into a bounded in-memory collector.
//! 2. **Counters and histograms** — monotonically increasing counters
//!    (optionally labelled, e.g. `retries_total{provider}`) and
//!    log₂-bucketed histograms behind a thread-safe [`Registry`].
//! 3. **Exporters** — a human-readable summary table
//!    ([`Registry::render_summary`]), a JSON-lines op-ledger writer
//!    ([`Registry::export_jsonl`]), and a Chrome trace-event exporter
//!    ([`Registry::export_trace`]), plus a dependency-free JSON
//!    parser in [`export::json`] so tests and CI can assert on output.
//!
//! On top of those sit the SLO-facing layers: interpolated quantiles on
//! every [`HistogramSnapshot`] ([`HistogramSnapshot::quantile`] and the
//! [`Percentiles`] bundle), time-resolved percentiles via
//! [`RollingHistogram`], span latency rollups with self-vs-child
//! attribution ([`rollup`]), and declarative SLO gates ([`slo`]).
//!
//! Everything is **off by default**: the plumbing type is
//! [`TelemetryHandle`], which is a cheap clonable `Option<Arc<Registry>>`.
//! A disabled handle turns every record call into a no-op branch, so
//! instrumented hot paths cost nothing measurable until a caller opts in
//! with [`TelemetryHandle::enabled`].
//!
//! ```
//! use fragcloud_telemetry::{span, TelemetryHandle};
//!
//! let tel = TelemetryHandle::enabled();
//! {
//!     let _op = span!(tel, "get", chunk = 3, provider = "AWS");
//!     tel.incr("gets_total");
//!     tel.observe("backoff_wait_us", 1500);
//! }
//! let reg = tel.registry().unwrap();
//! assert_eq!(reg.counter_total("gets_total"), 1);
//! assert_eq!(reg.span_count("get"), 1);
//! assert!(reg.spans_balanced());
//! println!("{}", reg.render_summary());
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod export;
mod metrics;
mod registry;
mod rollup;
pub mod slo;
mod span;
mod trace;
mod window;

pub use metrics::{Histogram, HistogramSnapshot, Percentiles};
pub use registry::{CounterSnapshot, Registry, RegistrySnapshot};
pub use rollup::{render_rollup, rollup, RollupEdge, RollupReport, SpanRollup};
pub use slo::{SloBound, SloOutcome, SloSpec};
pub use span::{SpanAggregate, SpanGuard, SpanRecord};
pub use trace::chrome_trace;
pub use window::{RollingHistogram, WindowSnapshot, WindowedSnapshot};

use std::sync::Arc;
use std::time::Duration;

/// Cheap, clonable entry point for instrumentation.
///
/// A handle is either *disabled* (the default — every call is a no-op)
/// or *enabled*, in which case it shares an [`Arc<Registry>`] with every
/// clone. Hot paths hold a handle and call [`incr`](Self::incr) /
/// [`observe`](Self::observe) / [`span`](Self::span) unconditionally;
/// the enabled check is a single branch.
#[derive(Clone, Debug, Default)]
pub struct TelemetryHandle(Option<Arc<Registry>>);

impl TelemetryHandle {
    /// A disabled handle: every recording call is a no-op.
    pub fn disabled() -> Self {
        Self(None)
    }

    /// A fresh enabled handle backed by a new empty [`Registry`].
    pub fn enabled() -> Self {
        Self(Some(Arc::new(Registry::new())))
    }

    /// Wrap an existing registry (e.g. to share one across distributors).
    pub fn from_registry(registry: Arc<Registry>) -> Self {
        Self(Some(registry))
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The backing registry, if enabled.
    pub fn registry(&self) -> Option<&Arc<Registry>> {
        self.0.as_ref()
    }

    /// Increment the unlabelled counter `name` by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Add `v` to the unlabelled counter `name`.
    pub fn add(&self, name: &str, v: u64) {
        if let Some(r) = &self.0 {
            r.counter(name, "")
                .fetch_add(v, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Add `v` to the counter `name{label}` (and to the family total
    /// reported by [`Registry::counter_total`]).
    pub fn add_labeled(&self, name: &str, label: &str, v: u64) {
        if let Some(r) = &self.0 {
            r.counter(name, label)
                .fetch_add(v, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Record `value` into the unlabelled histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(r) = &self.0 {
            r.histogram(name, "").record(value);
        }
    }

    /// Record `value` into the histogram `name{label}`.
    pub fn observe_labeled(&self, name: &str, label: &str, value: u64) {
        if let Some(r) = &self.0 {
            r.histogram(name, label).record(value);
        }
    }

    /// Record a duration, in microseconds, into the histogram `name`.
    pub fn observe_micros(&self, name: &str, d: Duration) {
        self.observe(name, d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Run `f` and record its wall-clock duration, in nanoseconds, into
    /// the histogram `name`. When disabled, `f` runs untimed.
    pub fn time<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        match &self.0 {
            None => f(),
            Some(r) => {
                let start = clock::monotonic_now();
                let out = f();
                let ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                r.histogram(name, "").record(ns);
                out
            }
        }
    }

    /// Open a span named `name`. The returned guard records a timed
    /// enter/exit (with parent linkage to any span already open on this
    /// thread) when dropped. Prefer the [`span!`] macro, which also
    /// attaches key/value attributes.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        match &self.0 {
            None => SpanGuard::noop(),
            Some(r) => SpanGuard::enter(Arc::clone(r), name),
        }
    }
}

/// Open a [`SpanGuard`] on a [`TelemetryHandle`] with optional
/// key/value attributes:
///
/// ```
/// # use fragcloud_telemetry::{span, TelemetryHandle};
/// # let tel = TelemetryHandle::enabled();
/// let _g = span!(tel, "get", chunk = 7, provider = "AWS");
/// ```
#[macro_export]
macro_rules! span {
    ($handle:expr, $name:expr $(,)?) => {
        $handle.span($name)
    };
    ($handle:expr, $name:expr, $($key:ident = $val:expr),+ $(,)?) => {
        $handle.span($name)$(.attr(stringify!($key), &$val))+
    };
}
