//! The metric registry: named counters, histograms, and the span store.

use crate::metrics::{Histogram, HistogramSnapshot};
use crate::span::{SpanAggregate, SpanCollector, SpanRecord};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One counter's point-in-time value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Metric name, e.g. `retries_total`.
    pub name: String,
    /// Label value (empty for unlabelled counters), e.g. a provider name.
    pub label: String,
    /// Current value.
    pub value: u64,
}

/// Point-in-time copy of everything a [`Registry`] holds; the input to
/// both exporters.
#[derive(Clone, Debug)]
pub struct RegistrySnapshot {
    /// All counters, sorted by (name, label).
    pub counters: Vec<CounterSnapshot>,
    /// All histograms, sorted by (name, label).
    pub histograms: Vec<(String, String, HistogramSnapshot)>,
    /// Per-name span aggregates, sorted by name.
    pub span_aggregates: Vec<(&'static str, SpanAggregate)>,
    /// Span enter/exit totals and the overflow-drop count.
    pub span_enters: u64,
    /// Completed spans.
    pub span_exits: u64,
    /// Completions not retained because the record cap was hit.
    pub span_records_dropped: u64,
}

impl RegistrySnapshot {
    /// Value of counter `name{label}` at snapshot time (0 if absent).
    pub fn counter(&self, name: &str, label: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name && c.label == label)
            .map(|c| c.value)
            .unwrap_or(0)
    }

    /// Sum of counter `name` across all labels at snapshot time.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// Histogram `name{label}` at snapshot time, if it was ever recorded.
    pub fn histogram(&self, name: &str, label: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, l, _)| n == name && l == label)
            .map(|(_, _, h)| h)
    }

    /// Completed-span count for `name` (0 if the span never ran).
    pub fn span_count(&self, name: &str) -> u64 {
        self.span_aggregates
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, a)| a.count)
            .unwrap_or(0)
    }
}

/// Thread-safe home for counters, histograms, and spans.
///
/// Metrics are created lazily on first touch; lookups take a short
/// mutex, increments are relaxed atomics. The maps are nested
/// name → label → metric so the lookup hit path borrows the caller's
/// `&str`s directly — no per-call key allocation; the two `to_string`s
/// happen only on the first touch of a given series. Callers that care
/// can hold the returned [`Arc`]s to skip the lookup entirely.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, BTreeMap<String, Arc<AtomicU64>>>>,
    histograms: Mutex<BTreeMap<String, BTreeMap<String, Arc<Histogram>>>>,
    spans: SpanCollector,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field(
                "counters",
                &self.counters.lock().values().map(BTreeMap::len).sum::<usize>(),
            )
            .field(
                "histograms",
                &self
                    .histograms
                    .lock()
                    .values()
                    .map(BTreeMap::len)
                    .sum::<usize>(),
            )
            .field("span_exits", &self.spans.exits())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn spans(&self) -> &SpanCollector {
        &self.spans
    }

    /// The counter `name{label}` (empty label for unlabelled), created
    /// on first use. Lookups of an existing series allocate nothing.
    pub fn counter(&self, name: &str, label: &str) -> Arc<AtomicU64> {
        let mut counters = self.counters.lock();
        if let Some(c) = counters.get(name).and_then(|m| m.get(label)) {
            return Arc::clone(c);
        }
        let c = Arc::new(AtomicU64::new(0));
        counters
            .entry(name.to_string())
            .or_default()
            .insert(label.to_string(), Arc::clone(&c));
        c
    }

    /// The histogram `name{label}`, created on first use. Lookups of an
    /// existing series allocate nothing.
    pub fn histogram(&self, name: &str, label: &str) -> Arc<Histogram> {
        let mut histograms = self.histograms.lock();
        if let Some(h) = histograms.get(name).and_then(|m| m.get(label)) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        histograms
            .entry(name.to_string())
            .or_default()
            .insert(label.to_string(), Arc::clone(&h));
        h
    }

    /// Current value of `name{label}` (0 if never touched).
    pub fn counter_value(&self, name: &str, label: &str) -> u64 {
        self.counters
            .lock()
            .get(name)
            .and_then(|m| m.get(label))
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Sum of `name` across all labels (for labelled families like
    /// `retries_total{provider}` this is the fleet-wide total).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .get(name)
            .map(|m| m.values().map(|c| c.load(Ordering::Relaxed)).sum())
            .unwrap_or(0)
    }

    /// Completed spans named `name`.
    pub fn span_count(&self, name: &str) -> u64 {
        self.spans.aggregate(name).count
    }

    /// Aggregate statistics for spans named `name`.
    pub fn span_aggregate(&self, name: &str) -> SpanAggregate {
        self.spans.aggregate(name)
    }

    /// All retained span completions (capped; see
    /// [`RegistrySnapshot::span_records_dropped`]).
    pub fn span_records(&self) -> Vec<SpanRecord> {
        self.spans.records()
    }

    /// `true` when every span enter has a matching exit — i.e. no guard
    /// is still alive and none was leaked.
    pub fn spans_balanced(&self) -> bool {
        self.spans.enters() == self.spans.exits()
    }

    /// Point-in-time copy of all metrics for export.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let counters = self
            .counters
            .lock()
            .iter()
            .flat_map(|(name, by_label)| {
                by_label.iter().map(move |(label, c)| CounterSnapshot {
                    name: name.clone(),
                    label: label.clone(),
                    value: c.load(Ordering::Relaxed),
                })
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .iter()
            .flat_map(|(name, by_label)| {
                by_label
                    .iter()
                    .map(move |(label, h)| (name.clone(), label.clone(), h.snapshot()))
            })
            .collect();
        RegistrySnapshot {
            counters,
            histograms,
            span_aggregates: self.spans.aggregates(),
            span_enters: self.spans.enters(),
            span_exits: self.spans.exits(),
            span_records_dropped: self.spans.dropped(),
        }
    }

    /// Drop all counters, histograms, and retained span records (the
    /// enter/exit balance totals are kept so leak detection survives).
    pub fn clear(&self) {
        self.counters.lock().clear();
        self.histograms.lock().clear();
        self.spans.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label() {
        let r = Registry::new();
        r.counter("retries_total", "AWS")
            .fetch_add(2, Ordering::Relaxed);
        r.counter("retries_total", "Sky")
            .fetch_add(3, Ordering::Relaxed);
        r.counter("puts_total", "").fetch_add(1, Ordering::Relaxed);
        assert_eq!(r.counter_value("retries_total", "AWS"), 2);
        assert_eq!(r.counter_value("retries_total", "Sky"), 3);
        assert_eq!(r.counter_total("retries_total"), 5);
        assert_eq!(r.counter_total("puts_total"), 1);
        assert_eq!(r.counter_value("missing", ""), 0);
    }

    #[test]
    fn concurrent_counting_is_exact() {
        let r = Arc::new(Registry::new());
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    let c = r.counter("ops", &format!("t{i}"));
                    for _ in 0..10_000 {
                        c.fetch_add(1, Ordering::Relaxed);
                        r.histogram("lat_us", "").record(i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.counter_total("ops"), 80_000);
        assert_eq!(r.histogram("lat_us", "").count(), 80_000);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("b", "").fetch_add(1, Ordering::Relaxed);
        r.counter("a", "x").fetch_add(2, Ordering::Relaxed);
        r.histogram("h", "").record(7);
        let snap = r.snapshot();
        assert_eq!(snap.counters[0].name, "a");
        assert_eq!(snap.counters[1].name, "b");
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].2.count(), 1);
    }

    #[test]
    fn lookup_hit_returns_the_same_metric() {
        let r = Registry::new();
        let first = r.counter("hits", "a");
        let again = r.counter("hits", "a");
        assert!(Arc::ptr_eq(&first, &again));
        let h1 = r.histogram("lat_us", "");
        let h2 = r.histogram("lat_us", "");
        assert!(Arc::ptr_eq(&h1, &h2));
    }
}
