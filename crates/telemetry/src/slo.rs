//! Declarative SLO gates over registry snapshots.
//!
//! A [`SloSpec`] names a histogram quantile and a bound — absolute
//! (`p99 of journal_fsync_wait_us ≤ 5000`) or relative to another
//! histogram (`p99 of put_wall_us{journaled} ≤ 1.3× p99 of
//! put_wall_us{plain}`). [`evaluate`] checks a batch of specs against a
//! [`RegistrySnapshot`] and returns per-spec outcomes the experiments
//! binary renders, embeds in `BENCH_*.json`, and turns into its exit
//! code — so CI gates run inside the binary that owns the numbers
//! instead of as shell-side jq arithmetic.

use crate::registry::RegistrySnapshot;

/// The bound side of an [`SloSpec`].
#[derive(Clone, Debug, PartialEq)]
pub enum SloBound {
    /// The quantile must not exceed this absolute value (in the
    /// histogram's own unit).
    Max(u64),
    /// The quantile must not exceed `factor` times the *same* quantile
    /// of a baseline histogram — e.g. journaled puts vs plain puts.
    MaxRatio {
        /// Baseline histogram name.
        metric: String,
        /// Baseline histogram label (empty for unlabelled).
        label: String,
        /// Maximum allowed ratio of observed quantile to baseline
        /// quantile.
        factor: f64,
    },
}

/// One service-level objective: a quantile of a histogram, bounded.
#[derive(Clone, Debug, PartialEq)]
pub struct SloSpec {
    /// Stable human-readable gate id, e.g. `"degraded_get_p99"`.
    pub name: String,
    /// Histogram to read.
    pub metric: String,
    /// Histogram label (empty for unlabelled).
    pub label: String,
    /// Quantile in `(0, 1]`, e.g. `0.99`.
    pub quantile: f64,
    /// The bound to enforce.
    pub bound: SloBound,
}

impl SloSpec {
    /// An absolute p99 bound on `metric{label}`.
    pub fn p99_max(name: &str, metric: &str, label: &str, max: u64) -> Self {
        SloSpec {
            name: name.to_string(),
            metric: metric.to_string(),
            label: label.to_string(),
            quantile: 0.99,
            bound: SloBound::Max(max),
        }
    }

    /// A relative p99 bound: `metric{label}` vs `factor` times the p99
    /// of `base_metric{base_label}`.
    pub fn p99_ratio(
        name: &str,
        metric: &str,
        label: &str,
        base_metric: &str,
        base_label: &str,
        factor: f64,
    ) -> Self {
        SloSpec {
            name: name.to_string(),
            metric: metric.to_string(),
            label: label.to_string(),
            quantile: 0.99,
            bound: SloBound::MaxRatio {
                metric: base_metric.to_string(),
                label: base_label.to_string(),
                factor,
            },
        }
    }
}

/// The result of checking one [`SloSpec`] against a snapshot.
#[derive(Clone, Debug)]
pub struct SloOutcome {
    /// The spec that was checked.
    pub spec: SloSpec,
    /// The observed quantile value (0 when the metric was absent).
    pub observed: u64,
    /// The effective limit after resolving any ratio baseline.
    pub limit: f64,
    /// Whether the objective held. Missing metrics fail closed.
    pub pass: bool,
    /// Human-readable explanation rendered into reports.
    pub detail: String,
}

fn fmt_q(q: f64) -> String {
    // 0.5 -> "p50", 0.99 -> "p99", 0.999 -> "p999"
    let pct = format!("{:.1}", q * 100.0);
    let pct = pct.strip_suffix(".0").unwrap_or(&pct);
    format!("p{}", pct.replace('.', ""))
}

fn key(metric: &str, label: &str) -> String {
    if label.is_empty() {
        metric.to_string()
    } else {
        format!("{metric}{{{label}}}")
    }
}

/// Check each spec against `snap`. A spec whose metric (or ratio
/// baseline) was never recorded fails closed with an explanatory
/// detail — a gate that silently passes because instrumentation was
/// dropped is worse than a flaky one.
pub fn evaluate(specs: &[SloSpec], snap: &RegistrySnapshot) -> Vec<SloOutcome> {
    specs
        .iter()
        .map(|spec| {
            let q = fmt_q(spec.quantile);
            let Some(h) = snap.histogram(&spec.metric, &spec.label) else {
                return SloOutcome {
                    spec: spec.clone(),
                    observed: 0,
                    limit: 0.0,
                    pass: false,
                    detail: format!(
                        "{} of {} — metric never recorded",
                        q,
                        key(&spec.metric, &spec.label)
                    ),
                };
            };
            let observed = h.quantile(spec.quantile);
            match &spec.bound {
                SloBound::Max(max) => SloOutcome {
                    spec: spec.clone(),
                    observed,
                    limit: *max as f64,
                    pass: observed <= *max,
                    detail: format!(
                        "{} of {} = {} (limit {})",
                        q,
                        key(&spec.metric, &spec.label),
                        observed,
                        max
                    ),
                },
                SloBound::MaxRatio {
                    metric,
                    label,
                    factor,
                } => {
                    let Some(base) = snap.histogram(metric, label) else {
                        return SloOutcome {
                            spec: spec.clone(),
                            observed,
                            limit: 0.0,
                            pass: false,
                            detail: format!(
                                "baseline {} never recorded",
                                key(metric, label)
                            ),
                        };
                    };
                    let base_q = base.quantile(spec.quantile);
                    let limit = base_q as f64 * factor;
                    let ratio = if base_q == 0 {
                        f64::INFINITY
                    } else {
                        observed as f64 / base_q as f64
                    };
                    SloOutcome {
                        spec: spec.clone(),
                        observed,
                        limit,
                        pass: observed as f64 <= limit,
                        detail: format!(
                            "{} of {} = {} vs {:.2}x {} of {} = {} (ratio {:.3}, limit {:.0})",
                            q,
                            key(&spec.metric, &spec.label),
                            observed,
                            factor,
                            q,
                            key(metric, label),
                            base_q,
                            ratio,
                            limit
                        ),
                    }
                }
            }
        })
        .collect()
}

/// `true` when every outcome passed (vacuously true for no specs).
pub fn all_pass(outcomes: &[SloOutcome]) -> bool {
    outcomes.iter().all(|o| o.pass)
}

/// Render outcomes as an aligned PASS/FAIL text section.
pub fn render(outcomes: &[SloOutcome]) -> String {
    let mut out = String::from("slo gates\n");
    if outcomes.is_empty() {
        out.push_str("  (none declared)\n");
    }
    for o in outcomes {
        out.push_str(&format!(
            "  {} {:<36} {}\n",
            if o.pass { "PASS" } else { "FAIL" },
            o.spec.name,
            o.detail
        ));
    }
    out
}

/// Render outcomes as a JSON array for embedding in `BENCH_*.json`.
pub fn to_json(outcomes: &[SloOutcome]) -> String {
    use crate::export::json::quote;
    let entries: Vec<String> = outcomes
        .iter()
        .map(|o| {
            format!(
                "{{\"name\":{},\"metric\":{},\"label\":{},\"quantile\":{},\"observed\":{},\"limit\":{:.3},\"pass\":{},\"detail\":{}}}",
                quote(&o.spec.name),
                quote(&o.spec.metric),
                quote(&o.spec.label),
                o.spec.quantile,
                o.observed,
                o.limit,
                o.pass,
                quote(&o.detail)
            )
        })
        .collect();
    format!("[{}]", entries.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::json::parse;
    use crate::TelemetryHandle;

    fn snap_with(values: &[(&str, &str, &[u64])]) -> RegistrySnapshot {
        let tel = TelemetryHandle::enabled();
        for (name, label, vs) in values {
            for v in *vs {
                tel.observe_labeled(name, label, *v);
            }
        }
        tel.registry().unwrap().snapshot()
    }

    #[test]
    fn absolute_bound_passes_and_fails() {
        let snap = snap_with(&[("get_us", "", &[10, 20, 30, 40, 1000])]);
        let specs = vec![
            SloSpec::p99_max("loose", "get_us", "", 10_000),
            SloSpec::p99_max("tight", "get_us", "", 5),
        ];
        let out = evaluate(&specs, &snap);
        assert!(out[0].pass, "{:?}", out[0]);
        assert!(!out[1].pass, "{:?}", out[1]);
        assert!(!all_pass(&out));
        let text = render(&out);
        assert!(text.contains("PASS loose"), "{text}");
        assert!(text.contains("FAIL tight"), "{text}");
    }

    #[test]
    fn ratio_bound_compares_to_baseline() {
        let same: &[u64] = &[100, 110, 120, 130];
        let slow: &[u64] = &[1000, 1100, 1200, 1300];
        let snap = snap_with(&[("put_us", "plain", same), ("put_us", "journaled", slow)]);
        let pass = SloSpec::p99_ratio("gen", "put_us", "journaled", "put_us", "plain", 20.0);
        let fail = SloSpec::p99_ratio("gen", "put_us", "journaled", "put_us", "plain", 1.5);
        let out = evaluate(&[pass, fail], &snap);
        assert!(out[0].pass, "{:?}", out[0]);
        assert!(!out[1].pass, "{:?}", out[1]);
        assert!(out[1].detail.contains("ratio"), "{}", out[1].detail);
    }

    #[test]
    fn missing_metrics_fail_closed() {
        let snap = snap_with(&[("present_us", "", &[1])]);
        let out = evaluate(
            &[
                SloSpec::p99_max("absent", "absent_us", "", 1),
                SloSpec::p99_ratio("no_base", "present_us", "", "absent_us", "", 1.0),
            ],
            &snap,
        );
        assert!(!out[0].pass);
        assert!(out[0].detail.contains("never recorded"));
        assert!(!out[1].pass);
        assert!(out[1].detail.contains("baseline"));
    }

    #[test]
    fn json_form_parses() {
        let snap = snap_with(&[("get_us", "", &[10, 20])]);
        let out = evaluate(&[SloSpec::p99_max("g", "get_us", "", 100)], &snap);
        let doc = to_json(&out);
        let v = parse(&doc).expect("valid json");
        let arr = v.as_array().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("name").unwrap().as_str(), Some("g"));
        assert_eq!(arr[0].get("pass"), Some(&crate::export::json::Value::Bool(true)));
        assert!(arr[0].get("observed").unwrap().as_u64().is_some());
    }

    #[test]
    fn quantile_labels_render() {
        assert_eq!(fmt_q(0.5), "p50");
        assert_eq!(fmt_q(0.9), "p90");
        assert_eq!(fmt_q(0.99), "p99");
        assert_eq!(fmt_q(0.999), "p999");
    }
}
