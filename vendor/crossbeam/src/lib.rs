//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::thread::scope` with the crossbeam-era signature
//! (closures receive the scope, `scope` returns a `Result` that is `Err`
//! when a child panicked) implemented over `std::thread::scope`, which has
//! been stable since Rust 1.63 and gives the same structured-concurrency
//! guarantees.

/// Scoped threads.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Error payload of a panicked scope: the panic value of the first
    /// child that unwound.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope handle passed to spawned closures, mirroring
    /// `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it can
        /// spawn further threads, as in crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope for spawning borrowing threads. All threads are
    /// joined before `scope` returns. Returns `Err` with the panic payload
    /// if any unjoined child panicked (crossbeam semantics).
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let counter = AtomicUsize::new(0);
        let out = super::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            42
        })
        .unwrap();
        assert_eq!(out, 42);
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn child_panic_surfaces_as_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let hits = AtomicUsize::new(0);
        super::thread::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| hits.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
