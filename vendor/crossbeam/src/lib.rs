//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::thread::scope` with the crossbeam-era signature
//! (closures receive the scope, `scope` returns a `Result` that is `Err`
//! when a child panicked) implemented over `std::thread::scope`, which has
//! been stable since Rust 1.63 and gives the same structured-concurrency
//! guarantees, plus `crossbeam::channel` MPMC channels (clonable senders
//! *and* receivers, bounded or unbounded) implemented over `std::sync::mpsc`.

/// Multi-producer multi-consumer channels with the `crossbeam-channel`
/// surface: `unbounded()` / `bounded(cap)` constructors, clonable
/// [`channel::Sender`] and [`channel::Receiver`] halves, and
/// `send`/`recv`/`try_recv` with crossbeam's error types.
pub mod channel {
    use std::sync::{mpsc, Arc, Mutex};

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty (senders still exist).
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
            }
        }
    }

    /// The sending half of a channel. Clonable; the channel disconnects
    /// when every clone is dropped.
    pub struct Sender<T>(Tx<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking while a bounded channel is full. Fails
        /// only when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Unbounded(s) => s.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
                Tx::Bounded(s) => s.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
            }
        }
    }

    /// The receiving half of a channel. Clonable: clones share one queue,
    /// so each message is delivered to exactly one receiver (MPMC
    /// work-stealing semantics, as in `crossbeam-channel`).
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; fails when the channel is empty
        /// and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = self.0.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv().map_err(|mpsc::RecvError| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let guard = self.0.lock().unwrap_or_else(|p| p.into_inner());
            guard.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Drains every message currently reachable, ending when the
        /// channel is empty or disconnected.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }
    }

    /// Creates a channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Tx::Unbounded(tx)), Receiver(Arc::new(Mutex::new(rx))))
    }

    /// Creates a channel buffering at most `cap` in-flight messages;
    /// `send` blocks while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(Arc::new(Mutex::new(rx))))
    }
}

/// Scoped threads.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Error payload of a panicked scope: the panic value of the first
    /// child that unwound.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope handle passed to spawned closures, mirroring
    /// `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it can
        /// spawn further threads, as in crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope for spawning borrowing threads. All threads are
    /// joined before `scope` returns. Returns `Err` with the panic payload
    /// if any unjoined child panicked (crossbeam semantics).
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let counter = AtomicUsize::new(0);
        let out = super::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            42
        })
        .unwrap();
        assert_eq!(out, 42);
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn child_panic_surfaces_as_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let hits = AtomicUsize::new(0);
        super::thread::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| hits.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
