//! Offline stand-in for the `rand` crate.
//!
//! Implements the slice of the rand 0.8 API this workspace uses:
//! [`rngs::StdRng`] (a deterministic xoshiro256**-based generator),
//! [`SeedableRng`], the [`Rng`] extension trait (`gen`, `gen_bool`,
//! `gen_range`, `fill`), and [`seq::SliceRandom::shuffle`].
//!
//! Determinism is the point: every generator in this workspace is seeded
//! explicitly, so a self-contained PRNG gives reproducible experiments
//! without any platform entropy dependency. Streams differ from upstream
//! rand, which is fine — nothing here depends on upstream's exact values.

/// Core RNG abstraction: a source of random `u64`s.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

/// An RNG that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 as
    /// upstream rand does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard {
    /// Samples a uniformly random value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u8
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u16
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` via rejection sampling on 64-bit draws
/// (span always fits in u64 for the types above).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    let span64 = span as u64;
    // Lemire-style rejection: zone is the largest multiple of span <= 2^64.
    let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span64) as u128;
        }
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        let unit = f64::sample(rng);
        start + unit * (end - start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f32::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Buffers fillable by [`Rng::fill`].
pub trait Fill {
    /// Fills `self` with random data.
    fn fill<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// Extension trait with the ergonomic sampling methods.
pub trait Rng: RngCore {
    /// Samples a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]");
        f64::sample(self) < p
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Fills a buffer with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain)
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // All-zero state is a fixed point for xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Extension trait for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = r.gen_range(1..=32u64);
            assert!((1..=32).contains(&w));
            let f = r.gen_range(-5.0..5.0f64);
            assert!((-5.0..5.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn fill_and_shuffle() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 37];
        r.fill(buf.as_mut_slice());
        assert!(buf.iter().any(|&b| b != 0));

        let mut xs: Vec<u32> = (0..20).collect();
        let orig = xs.clone();
        xs.shuffle(&mut r);
        assert_ne!(xs, orig);
        xs.sort_unstable();
        assert_eq!(xs, orig);
    }
}
