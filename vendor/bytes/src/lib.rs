//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API slice it actually uses: [`Bytes`], a cheaply
//! clonable, immutable byte buffer. Semantics match the real crate for the
//! operations implemented here (shared ownership via `Arc`, `Deref` to
//! `[u8]`, zero-copy `clone`).

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable contiguous byte buffer — a shared
/// storage block plus an `(off, len)` window into it, so [`Bytes::slice`]
/// can hand out zero-copy sub-views exactly like the real crate.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl Bytes {
    fn whole(data: Arc<[u8]>) -> Self {
        let len = data.len();
        Bytes { data, off: 0, len }
    }

    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static slice without copying ownership semantics the caller
    /// can observe (the shim copies once into shared storage).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::whole(Arc::from(bytes))
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::whole(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The contents as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }

    /// Zero-copy sub-view: shares the same storage, no bytes move.
    ///
    /// # Panics
    /// Panics when the range falls outside `0..=self.len()` (matching the
    /// real crate).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end, "Bytes::slice: start {start} > end {end}");
        assert!(end <= self.len, "Bytes::slice: end {end} > len {}", self.len);
        Bytes {
            data: Arc::clone(&self.data),
            off: self.off + start,
            len: end - start,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::whole(v.into())
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.as_slice().to_vec()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::whole(iter.into_iter().collect::<Vec<u8>>().into())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        if self.len() > 32 {
            write!(f, "…")?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_share() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        let v: Vec<u8> = c.into();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn static_and_eq_slices() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(b, b"hello"[..]);
        assert_eq!(b.to_vec(), b"hello".to_vec());
    }

    #[test]
    fn slice_is_zero_copy_view() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5, 6, 7]);
        let s = b.slice(2..6);
        assert_eq!(s.as_slice(), &[2, 3, 4, 5]);
        assert_eq!(s.len(), 4);
        // Pointer identity: the view reads the parent's storage.
        assert_eq!(s.as_ptr() as usize, b.as_ptr() as usize + 2);
        // Nested slices compose offsets.
        let n = s.slice(1..=2);
        assert_eq!(n.as_slice(), &[3, 4]);
        assert_eq!(n.as_ptr() as usize, b.as_ptr() as usize + 3);
        // Full/empty ranges behave.
        assert_eq!(b.slice(..), b);
        assert!(b.slice(4..4).is_empty());
        let v: Vec<u8> = s.into();
        assert_eq!(v, vec![2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "Bytes::slice")]
    fn slice_out_of_range_panics() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let _ = b.slice(1..5);
    }
}
