//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API slice it actually uses: [`Bytes`], a cheaply
//! clonable, immutable byte buffer. Semantics match the real crate for the
//! operations implemented here (shared ownership via `Arc`, `Deref` to
//! `[u8]`, zero-copy `clone`).

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable contiguous byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static slice without copying ownership semantics the caller
    /// can observe (the shim copies once into shared storage).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The contents as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.data.to_vec()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes {
            data: iter.into_iter().collect::<Vec<u8>>().into(),
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.data[..] == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        if self.data.len() > 32 {
            write!(f, "…")?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_share() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        let v: Vec<u8> = c.into();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn static_and_eq_slices() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(b, b"hello"[..]);
        assert_eq!(b.to_vec(), b"hello".to_vec());
    }
}
