//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API:
//! `lock()`/`read()`/`write()` return guards directly instead of `Result`s.
//! A poisoned std lock (a panic while held) is recovered transparently,
//! matching parking_lot's "no poisoning" contract closely enough for this
//! workspace.

use std::sync;

/// A mutual-exclusion lock whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read`/`write` never return `Result`s.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn rwlock_try_paths() {
        let l = RwLock::new(0);
        {
            let _r = l.try_read().expect("uncontended read");
            assert!(l.try_read().is_some(), "readers share");
            assert!(l.try_write().is_none(), "writer blocked by reader");
        }
        {
            let _w = l.try_write().expect("uncontended write");
            assert!(l.try_read().is_none(), "reader blocked by writer");
        }
    }
}
