//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API slice this workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, throughput annotation, the
//! `criterion_group!` / `criterion_main!` macros — over a plain
//! `std::time::Instant` timing loop. No statistics, plots or baselines:
//! each benchmark prints one line with its mean iteration time (and
//! throughput when annotated). Good enough to keep `cargo bench` useful
//! without the real crate's dependency tree.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state and default timing configuration.
#[derive(Clone, Debug)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbench group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
            throughput: None,
        }
    }
}

/// Work-per-iteration annotation used to derive rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of benchmarks sharing a name prefix and timing overrides.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Annotates subsequent benchmarks with per-iteration work.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark defined by `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up: self.criterion.warm_up,
            measurement: self.criterion.measurement,
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            mean_ns: 0.0,
        };
        f(&mut bencher);
        report(&self.name, &id.into().id, bencher.mean_ns, self.throughput);
        self
    }

    /// Runs a benchmark with a borrowed input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    mean_ns: f64,
}

impl Bencher {
    /// Times repeated calls of `routine`, storing the mean per-iteration
    /// wall-clock time.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        // Warm-up: also yields a per-iteration estimate for batch sizing.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        // Size each sample so all samples fit the measurement budget.
        let budget_ns = self.measurement.as_nanos() as f64;
        let iters_per_sample =
            ((budget_ns / self.sample_size as f64 / est_ns).floor() as u64).clamp(1, 1_000_000);

        let mut total_ns = 0.0;
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            total_ns += start.elapsed().as_nanos() as f64;
            total_iters += iters_per_sample;
        }
        self.mean_ns = total_ns / total_iters as f64;
    }
}

fn report(group: &str, id: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let time = if mean_ns >= 1e9 {
        format!("{:.3} s", mean_ns / 1e9)
    } else if mean_ns >= 1e6 {
        format!("{:.3} ms", mean_ns / 1e6)
    } else if mean_ns >= 1e3 {
        format!("{:.3} µs", mean_ns / 1e3)
    } else {
        format!("{mean_ns:.1} ns")
    };
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let mib_s = bytes as f64 / (mean_ns / 1e9) / (1024.0 * 1024.0);
            format!("  {mib_s:.1} MiB/s")
        }
        Some(Throughput::Elements(n)) => {
            let elem_s = n as f64 / (mean_ns / 1e9);
            format!("  {elem_s:.0} elem/s")
        }
        None => String::new(),
    };
    println!("  {group}/{id}: {time}/iter{rate}");
}

/// Declares a benchmark group: either `criterion_group!(name, fn_a, fn_b)`
/// or the long form with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(3);
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("id", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
