//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API this workspace uses: the
//! [`Strategy`] trait with `prop_map`/`boxed`, `any::<T>()` for scalars and
//! byte arrays, `proptest::collection::{vec, btree_set}`, string strategies
//! for simple `[x-y]{m,n}` patterns, weighted `prop_oneof!`, and the
//! `proptest!` / `prop_assert*` / `prop_assume!` macros.
//!
//! Unlike upstream there is no shrinking: a failing case reports the test
//! name, case seed and assertion message. Generation is fully deterministic
//! — the per-case RNG is derived from the test name and case index — which
//! fits this workspace's reproducible-experiments ethos.

use std::rc::Rc;

/// The RNG driving all value generation.
pub type TestRng = rand::rngs::StdRng;

use rand::Rng;

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy for heterogeneous composition
    /// (e.g. `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between type-erased strategies; built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` pairs.
    pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        assert!(
            options.iter().any(|(w, _)| *w > 0),
            "prop_oneof! needs a positive weight"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.options.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.gen_range(0..total);
        for (w, s) in &self.options {
            let w = *w as u64;
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

// ---------------------------------------------------------------------------
// Scalar / range / tuple strategies
// ---------------------------------------------------------------------------

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategies {
    ($(($($S:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($S,)+) = self;
                ($($S.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

impl Strategy for () {
    type Value = ();
    fn generate(&self, _rng: &mut TestRng) {}
}

// ---------------------------------------------------------------------------
// `any::<T>()`
// ---------------------------------------------------------------------------

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// The strategy produced by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// Returns the canonical strategy for `Self`.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for a scalar type.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyScalar<T>(std::marker::PhantomData<T>);

macro_rules! any_scalars {
    ($($t:ty => $sample:expr),* $(,)?) => {$(
        impl Strategy for AnyScalar<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let f: fn(&mut TestRng) -> $t = $sample;
                f(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyScalar<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyScalar(std::marker::PhantomData)
            }
        }
    )*};
}

any_scalars! {
    u8 => |rng| rng.gen::<u8>(),
    u16 => |rng| rng.gen::<u16>(),
    u32 => |rng| rng.gen::<u32>(),
    u64 => |rng| rng.gen::<u64>(),
    usize => |rng| rng.gen::<usize>(),
    i64 => |rng| rng.gen::<i64>(),
    bool => |rng| rng.gen::<bool>(),
    f64 => |rng| rng.gen::<f64>(),
}

/// Full-domain strategy for `[u8; N]`.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyByteArray<const N: usize>;

impl<const N: usize> Strategy for AnyByteArray<N> {
    type Value = [u8; N];
    fn generate(&self, rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill(&mut out);
        out
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    type Strategy = AnyByteArray<N>;
    fn arbitrary() -> Self::Strategy {
        AnyByteArray
    }
}

/// Returns the canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

// ---------------------------------------------------------------------------
// String pattern strategies: the `[x-y]{m,n}` subset of proptest's regex
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct CharClassPattern {
    alphabet: Vec<char>,
    min_len: usize,
    max_len: usize, // inclusive
}

fn unsupported_pattern(pattern: &str) -> ! {
    panic!("string strategy shim supports only `[chars]{{m,n}}` patterns, got {pattern:?}")
}

fn parse_pattern(pattern: &str) -> CharClassPattern {
    let bytes: Vec<char> = pattern.chars().collect();
    if bytes.first() != Some(&'[') {
        // Treat as a literal string.
        return CharClassPattern {
            alphabet: vec![],
            min_len: 0,
            max_len: 0,
        };
    }
    let close = bytes
        .iter()
        .position(|&c| c == ']')
        .unwrap_or_else(|| unsupported_pattern(pattern));
    let mut alphabet = Vec::new();
    let class = &bytes[1..close];
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            if lo > hi {
                unsupported_pattern(pattern);
            }
            alphabet.extend(lo..=hi);
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        unsupported_pattern(pattern);
    }
    let rest: String = bytes[close + 1..].iter().collect();
    let (min_len, max_len) = if rest.is_empty() {
        (1, 1)
    } else if rest.starts_with('{') && rest.ends_with('}') {
        let body = &rest[1..rest.len() - 1];
        match body.split_once(',') {
            Some((lo, hi)) => (
                lo.trim()
                    .parse()
                    .unwrap_or_else(|_| unsupported_pattern(pattern)),
                hi.trim()
                    .parse()
                    .unwrap_or_else(|_| unsupported_pattern(pattern)),
            ),
            None => {
                let n = body
                    .trim()
                    .parse()
                    .unwrap_or_else(|_| unsupported_pattern(pattern));
                (n, n)
            }
        }
    } else {
        unsupported_pattern(pattern)
    };
    CharClassPattern {
        alphabet,
        min_len,
        max_len,
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let spec = parse_pattern(self);
        if spec.alphabet.is_empty() {
            return (*self).to_string();
        }
        let len = rng.gen_range(spec.min_len..=spec.max_len);
        (0..len)
            .map(|_| spec.alphabet[rng.gen_range(0..spec.alphabet.len())])
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Collection strategies
// ---------------------------------------------------------------------------

/// Collection size specification accepted by [`collection`] strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize, // inclusive
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.min..=self.max)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// `proptest::collection`: strategies for containers.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy for `Vec<T>` with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with element strategy `S`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates sets whose target size is drawn from `size`. If the
    /// element domain is too small to reach the target, a smaller set
    /// (never below one element when the minimum is positive) is produced.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 20 + 32 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Test-runner configuration and machinery.
pub mod test_runner {
    use super::{Strategy, TestRng};
    use rand::SeedableRng;

    /// How a single generated case failed.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case violated an assertion.
        Fail(String),
        /// The case was rejected by `prop_assume!` and should be retried.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection with a message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
            }
        }
    }

    /// Runner configuration.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `test` against `config.cases` generated inputs. Deterministic:
    /// the per-case seed is derived from the test name and case index.
    pub fn run<S, F>(config: ProptestConfig, name: &str, strategy: &S, test: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name);
        let max_rejects = config.cases as u64 * 64 + 1024;
        let mut rejects = 0u64;
        let mut passed = 0u32;
        let mut stream = 0u64;
        while passed < config.cases {
            let seed = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            stream += 1;
            let mut rng = TestRng::seed_from_u64(seed);
            match test(strategy.generate(&mut rng)) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    if rejects > max_rejects {
                        panic!(
                            "proptest {name}: too many rejected cases \
                             ({rejects} rejects for {passed} passes)"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest {name} failed at case {passed} \
                         (seed {seed:#x}): {msg}"
                    );
                }
            }
        }
    }
}

pub use test_runner::{ProptestConfig, TestCaseError};

/// Glob-import module mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, Strategy,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests. Each contained `fn` becomes a `#[test]` whose
/// arguments are generated from strategies: `name in strategy` draws from an
/// explicit strategy, `name: Type` from `any::<Type>()`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        );
    };
}

/// Internal: expands each test fn inside `proptest!`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_parse!(
                ($config), (stringify!($name)), ($body), (), (); $($args)*
            );
        }
        $crate::__proptest_items!(($config); $($rest)*);
    };
}

/// Internal: munches the argument list of a `proptest!` fn into a pattern
/// tuple and a strategy tuple, then invokes the runner.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_parse {
    // Done: run the collected strategies against the body.
    (($config:expr), ($name:expr), ($body:block),
     ($(($pat:pat))*), ($(($strat:expr))*);) => {
        $crate::test_runner::run(
            $config,
            $name,
            &($($strat,)*),
            |($($pat,)*)| -> ::std::result::Result<(), $crate::TestCaseError> {
                $body
                Ok(())
            },
        );
    };
    // `pat in strategy`, more args follow.
    (($config:expr), ($name:expr), ($body:block),
     ($($pats:tt)*), ($($strats:tt)*);
     $p:pat in $s:expr, $($rest:tt)*) => {
        $crate::__proptest_parse!(
            (($config)), ($name), ($body),
            ($($pats)* ($p)), ($($strats)* ($s)); $($rest)*
        );
    };
    // `pat in strategy`, final arg.
    (($config:expr), ($name:expr), ($body:block),
     ($($pats:tt)*), ($($strats:tt)*);
     $p:pat in $s:expr) => {
        $crate::__proptest_parse!(
            (($config)), ($name), ($body),
            ($($pats)* ($p)), ($($strats)* ($s));
        );
    };
    // `name: Type`, more args follow.
    (($config:expr), ($name:expr), ($body:block),
     ($($pats:tt)*), ($($strats:tt)*);
     $i:ident : $t:ty, $($rest:tt)*) => {
        $crate::__proptest_parse!(
            (($config)), ($name), ($body),
            ($($pats)* ($i)), ($($strats)* ($crate::any::<$t>())); $($rest)*
        );
    };
    // `name: Type`, final arg.
    (($config:expr), ($name:expr), ($body:block),
     ($($pats:tt)*), ($($strats:tt)*);
     $i:ident : $t:ty) => {
        $crate::__proptest_parse!(
            (($config)), ($name), ($body),
            ($($pats)* ($i)), ($($strats)* ($crate::any::<$t>()));
        );
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::TestCaseError::fail(format!($($fmt)+))
            );
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), left, right
        );
    }};
}

/// Asserts two expressions differ inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "{}\n  both: {:?}",
            format!($($fmt)+), left
        );
    }};
}

/// Rejects the current case (retried with fresh inputs) when the
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Weighted (or uniform) choice between strategies yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

// ---------------------------------------------------------------------------
// Self-tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_small() -> impl Strategy<Value = Vec<u8>> {
        crate::collection::vec(any::<u8>(), 1..8)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Mixed binder forms: `in`-strategies, bare-typed args, arrays.
        #[test]
        fn binder_forms(xs in arb_small(), n: usize, key: [u8; 16], s in "[a-z]{3,8}") {
            prop_assert!(!xs.is_empty() && xs.len() < 8);
            let _ = n;
            prop_assert_eq!(key.len(), 16);
            prop_assert!(s.len() >= 3 && s.len() <= 8);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        /// Ranges and tuples stay in bounds; prop_map applies.
        #[test]
        fn ranges_and_maps(
            v in (0u8..4, 1usize..10).prop_map(|(a, b)| a as usize + b),
            f in -2.0f64..2.0,
        ) {
            prop_assert!(v < 13);
            prop_assert!((-2.0..2.0).contains(&f));
        }

        /// prop_oneof picks only listed options; assume rejects retry.
        #[test]
        fn oneof_and_assume(pick in prop_oneof![3 => 0u8..2, 1 => 10u8..12], other: u8) {
            prop_assume!(other != 255);
            prop_assert!(pick < 2 || (10..12).contains(&pick));
            prop_assert_ne!(other, 255);
        }

        /// btree_set sizes respect the requested range.
        #[test]
        fn set_sizes(s in crate::collection::btree_set("[a-z]{3,8}", 1..20)) {
            prop_assert!(!s.is_empty() && s.len() < 20);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::Strategy;
        use rand::SeedableRng;
        let strat = crate::collection::vec(any::<u8>(), 0..32);
        let a = strat.generate(&mut crate::TestRng::seed_from_u64(9));
        let b = strat.generate(&mut crate::TestRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_case_panics_with_context() {
        crate::test_runner::run(
            ProptestConfig::with_cases(4),
            "always_fails",
            &(any::<u8>(),),
            |(_x,)| Err(TestCaseError::fail("forced")),
        );
    }
}
