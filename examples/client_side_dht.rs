//! The §IV-C client-side distributor: no trusted third party — the client
//! maps ⟨filename, serial⟩ to providers with a Chord-like hash ring and
//! keeps only its own chunk table.
//!
//! ```text
//! cargo run --example client_side_dht
//! ```

use fragcloud::core::client_side::ClientSideDistributor;
use fragcloud::core::config::ChunkSizeSchedule;
use fragcloud::core::PrivacyLevel;
use fragcloud::dht::ChordRing;
use fragcloud::sim::{CloudProvider, CostLevel, ProviderProfile};
use std::sync::Arc;

fn main() {
    // The "downloadable list of Cloud Providers".
    let provider_list: Vec<Arc<CloudProvider>> = [
        ("AWS", PrivacyLevel::High),
        ("Google", PrivacyLevel::High),
        ("Azure", PrivacyLevel::High),
        ("Sky", PrivacyLevel::Moderate),
        ("Sea", PrivacyLevel::Low),
        ("Earth", PrivacyLevel::Low),
    ]
    .iter()
    .map(|(n, pl)| {
        Arc::new(CloudProvider::new(ProviderProfile::new(
            *n,
            *pl,
            CostLevel::new(1),
        )))
    })
    .collect();

    let mut client = ClientSideDistributor::new(
        provider_list.clone(),
        ChunkSizeSchedule::paper_default(),
        0xC1_1E47,
    );

    // Upload directly from the client — no distributor server involved.
    let diary = b"dear diary, today I bid 21135 on the tender...".repeat(800);
    let chunks = client
        .put_file("diary.txt", &diary, PrivacyLevel::High)
        .expect("upload");
    println!("uploaded diary.txt as {chunks} chunks (PL3 -> 4 KiB chunks)");
    println!(
        "client-side table cost: {} entries (~{} bytes of RAM) — the §IV-C trade-off",
        client.table_entries(),
        client.table_bytes_estimate()
    );

    // PL3 chunks only ever land on PL3 providers.
    for p in &provider_list {
        println!(
            "  {:<7} ({}) holds {} chunks",
            p.name(),
            p.profile().privacy_level,
            p.chunk_count()
        );
    }

    let got = client.get_file("diary.txt").expect("read back");
    assert_eq!(got, diary);
    println!("read back {} bytes intact", got.len());
    assert!(client.mapping_consistent("diary.txt").expect("file exists"));
    println!("Chord mapping verified consistent");

    // The ring itself: routed lookups cost O(log n) hops.
    let mut ring = ChordRing::new(4);
    for i in 0..32 {
        ring.join(&format!("provider-{i}"));
    }
    let trace = ring
        .lookup("provider-0", "diary.txt", 3)
        .expect("ring member");
    println!(
        "\non a 32-node ring, lookup(diary.txt, 3) routed to {} in {} hops",
        trace.owner, trace.hops
    );
}
