//! Quickstart: stand up a provider fleet, register a client, upload /
//! retrieve / remove a file, survive a provider outage, and read the
//! telemetry summary of everything the engine did along the way.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use fragcloud::core::config::DistributorConfig;
use fragcloud::core::{CloudDataDistributor, PrivacyLevel, PutOptions};
use fragcloud::sim::{CloudProvider, CostLevel, ProviderProfile};
use std::sync::Arc;

fn main() {
    // 1. A fleet of simulated cloud providers with mixed trust and price.
    let fleet: Vec<Arc<CloudProvider>> = [
        ("Adobe", PrivacyLevel::High, 3),
        ("AWS", PrivacyLevel::High, 3),
        ("Google", PrivacyLevel::High, 3),
        ("Microsoft", PrivacyLevel::High, 3),
        ("Sky", PrivacyLevel::Moderate, 1),
        ("Sea", PrivacyLevel::Low, 1),
        ("Earth", PrivacyLevel::Low, 1),
    ]
    .iter()
    .map(|(name, pl, cl)| {
        Arc::new(CloudProvider::new(ProviderProfile::new(
            *name,
            *pl,
            CostLevel::new(*cl),
        )))
    })
    .collect();

    // 2. The Cloud Data Distributor (paper defaults: RAID-5, PL-sized chunks).
    let distributor = CloudDataDistributor::try_new(
        fleet.clone(),
        DistributorConfig {
            stripe_width: 3,
            ..Default::default()
        },
    )
    .expect("valid config");

    // Opt in to runtime telemetry (off by default): every op below is
    // recorded as spans + counters in the returned registry handle.
    let telemetry = distributor.enable_telemetry();

    // 3. A client with two access-control passwords.
    distributor.register_client("Bob").expect("fresh system");
    distributor
        .add_password("Bob", "Ty7e", PrivacyLevel::High)
        .expect("Bob exists");
    distributor
        .add_password("Bob", "aB1c", PrivacyLevel::Public)
        .expect("Bob exists");

    // 4. Open typed sessions — credentials are validated once, up front.
    let session = distributor.session("Bob", "Ty7e").expect("valid pair");
    let public_session = distributor.session("Bob", "aB1c").expect("valid pair");

    // 5. Upload a moderately sensitive file.
    let document = b"quarterly ledger: revenue 1.2M, costs 0.9M, margin 0.3M".repeat(1000);
    let receipt = session
        .put_file(
            "ledger.txt",
            &document,
            PrivacyLevel::Moderate,
            PutOptions::new(),
        )
        .expect("upload succeeds");
    println!(
        "uploaded ledger.txt: {} chunks in {} stripes, {} bytes stored, sim time {:?}",
        receipt.chunk_count, receipt.stripe_count, receipt.bytes_stored, receipt.sim_time
    );

    // 6. The low-privilege session cannot read it.
    let denied = public_session.get_file("ledger.txt");
    println!("read with PL0 session: {:?}", denied.expect_err("denied"));

    // 7. Retrieve through the privileged session.
    let got = session.get_file("ledger.txt").expect("authorized read");
    assert_eq!(got.data, document);
    println!(
        "retrieved {} bytes intact (sim time {:?})",
        got.data.len(),
        got.sim_time
    );

    // 8. Take a provider down — RAID-5 reconstruction keeps data available.
    // Pick one that actually holds data chunks (not just parity), so the
    // read below must reconstruct.
    let victim = distributor
        .client_chunks_per_provider("Bob")
        .expect("Bob exists")
        .iter()
        .position(|&n| n > 0)
        .expect("chunks stored somewhere");
    fleet[victim].set_online(false);
    let got = session.get_file("ledger.txt").expect("read under outage");
    assert_eq!(got.data, document);
    println!(
        "retrieved during {} outage: {} chunks RAID-reconstructed",
        fleet[victim].name(),
        got.reconstructed_chunks
    );
    fleet[victim].set_online(true);

    // 9. Inspect the paper's three tables.
    println!("\n{}", distributor.render_tables());

    // 10. Remove the file everywhere.
    session.remove_file("ledger.txt").expect("removal succeeds");
    println!(
        "after removal, providers hold {} objects",
        fleet.iter().map(|p| p.chunk_count()).sum::<usize>()
    );

    // 11. What did all of that cost? The telemetry registry kept score:
    // span counts/durations for put/get, parity reconstructions, retries
    // per provider, simulated latencies, …
    let registry = telemetry.registry().expect("telemetry enabled above");
    println!("\n{}", registry.render_summary());
    assert!(registry.span_count("put") > 0);
    assert!(registry.span_count("get") > 0);
    assert!(registry.spans_balanced());
}
