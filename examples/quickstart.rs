//! Quickstart: stand up a provider fleet, register a client, upload /
//! retrieve / remove a file, and survive a provider outage.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use fragcloud::core::config::DistributorConfig;
use fragcloud::core::{CloudDataDistributor, PrivacyLevel, PutOptions};
use fragcloud::sim::{CloudProvider, CostLevel, ProviderProfile};
use std::sync::Arc;

fn main() {
    // 1. A fleet of simulated cloud providers with mixed trust and price.
    let fleet: Vec<Arc<CloudProvider>> = [
        ("Adobe", PrivacyLevel::High, 3),
        ("AWS", PrivacyLevel::High, 3),
        ("Google", PrivacyLevel::High, 3),
        ("Microsoft", PrivacyLevel::High, 3),
        ("Sky", PrivacyLevel::Moderate, 1),
        ("Sea", PrivacyLevel::Low, 1),
        ("Earth", PrivacyLevel::Low, 1),
    ]
    .iter()
    .map(|(name, pl, cl)| {
        Arc::new(CloudProvider::new(ProviderProfile::new(
            *name,
            *pl,
            CostLevel::new(*cl),
        )))
    })
    .collect();

    // 2. The Cloud Data Distributor (paper defaults: RAID-5, PL-sized chunks).
    let distributor = CloudDataDistributor::new(
        fleet.clone(),
        DistributorConfig {
            stripe_width: 3,
            ..Default::default()
        },
    );

    // 3. A client with two access-control passwords.
    distributor.register_client("Bob").expect("fresh system");
    distributor
        .add_password("Bob", "Ty7e", PrivacyLevel::High)
        .expect("Bob exists");
    distributor
        .add_password("Bob", "aB1c", PrivacyLevel::Public)
        .expect("Bob exists");

    // 4. Upload a moderately sensitive file.
    let document = b"quarterly ledger: revenue 1.2M, costs 0.9M, margin 0.3M".repeat(1000);
    let receipt = distributor
        .put_file(
            "Bob",
            "Ty7e",
            "ledger.txt",
            &document,
            PrivacyLevel::Moderate,
            PutOptions::default(),
        )
        .expect("upload succeeds");
    println!(
        "uploaded ledger.txt: {} chunks in {} stripes, {} bytes stored, sim time {:?}",
        receipt.chunk_count, receipt.stripe_count, receipt.bytes_stored, receipt.sim_time
    );

    // 5. Low-privilege password cannot read it.
    let denied = distributor.get_file("Bob", "aB1c", "ledger.txt");
    println!("read with PL0 password: {:?}", denied.expect_err("denied"));

    // 6. Retrieve with the privileged password.
    let got = distributor
        .get_file("Bob", "Ty7e", "ledger.txt")
        .expect("authorized read");
    assert_eq!(got.data, document);
    println!("retrieved {} bytes intact (sim time {:?})", got.data.len(), got.sim_time);

    // 7. Take a provider down — RAID-5 reconstruction keeps data available.
    fleet[1].set_online(false);
    let got = distributor
        .get_file("Bob", "Ty7e", "ledger.txt")
        .expect("read under outage");
    assert_eq!(got.data, document);
    println!(
        "retrieved during {} outage: {} chunks RAID-reconstructed",
        fleet[1].name(),
        got.reconstructed_chunks
    );
    fleet[1].set_online(true);

    // 8. Inspect the paper's three tables.
    println!("\n{}", distributor.render_tables());

    // 9. Remove the file everywhere.
    distributor
        .remove_file("Bob", "Ty7e", "ledger.txt")
        .expect("removal succeeds");
    println!(
        "after removal, providers hold {} objects",
        fleet.iter().map(|p| p.chunk_count()).sum::<usize>()
    );
}
