//! The Fig. 2 extended architecture: three Cloud Data Distributors share
//! replicated table state. Each client has one *primary* distributor for
//! uploads; *secondaries* serve retrievals; a failed primary is failed
//! over.
//!
//! ```text
//! cargo run --example multi_distributor
//! ```

use fragcloud::core::config::DistributorConfig;
use fragcloud::core::multi::DistributorGroup;
use fragcloud::core::{CloudDataDistributor, PrivacyLevel, PutOptions};
use fragcloud::sim::{CloudProvider, CostLevel, ProviderProfile};
use std::sync::Arc;

fn main() {
    let fleet: Vec<Arc<CloudProvider>> = (0..8)
        .map(|i| {
            Arc::new(CloudProvider::new(ProviderProfile::new(
                format!("cp{i}"),
                PrivacyLevel::High,
                CostLevel::new(1),
            )))
        })
        .collect();
    let shared = Arc::new(
        CloudDataDistributor::try_new(fleet, DistributorConfig::default()).expect("valid config"),
    );
    let group = DistributorGroup::try_new(shared, 3).expect("non-empty group");

    // Alice's primary is distributor-0; Carol's is distributor-2.
    group.register_client(0, "Alice").expect("fresh");
    group
        .add_password(0, "Alice", "pw-a", PrivacyLevel::High)
        .expect("client exists");
    group.register_client(2, "Carol").expect("fresh");
    group
        .add_password(2, "Carol", "pw-c", PrivacyLevel::High)
        .expect("client exists");

    let report = b"annual report: growth 14%".repeat(500);
    group
        .put_file(
            0,
            "Alice",
            "pw-a",
            "report.txt",
            &report,
            PrivacyLevel::Moderate,
            PutOptions::default(),
        )
        .expect("primary upload");
    println!("Alice uploaded report.txt via {}", group.node_name(0));

    // A non-primary upload is redirected.
    let err = group
        .put_file(
            1,
            "Carol",
            "pw-c",
            "notes.txt",
            b"hello",
            PrivacyLevel::Low,
            PutOptions::default(),
        )
        .expect_err("node 1 is not Carol's primary");
    println!("Carol uploading via {}: {err}", group.node_name(1));

    // Reads go through any node.
    for via in 0..group.len() {
        let got = group
            .get_file(via, "Alice", "pw-a", "report.txt")
            .expect("secondary read");
        println!(
            "read report.txt via {}: {} bytes",
            group.node_name(via),
            got.data.len()
        );
    }

    // Primary failure: distributor-0 goes down; reads keep working and a
    // failover promotes a new primary for Alice.
    group.set_node_online(0, false);
    println!("\n{} is DOWN", group.node_name(0));
    let got = group
        .get_file(1, "Alice", "pw-a", "report.txt")
        .expect("secondaries still serve reads");
    println!(
        "read via {} still works ({} bytes)",
        group.node_name(1),
        got.data.len()
    );
    let new_primary = group.failover("Alice").expect("a node is alive");
    println!("Alice failed over to {}", group.node_name(new_primary));
    group
        .put_file(
            new_primary,
            "Alice",
            "pw-a",
            "report-v2.txt",
            &report,
            PrivacyLevel::Moderate,
            PutOptions::default(),
        )
        .expect("upload via new primary");
    println!(
        "Alice uploaded report-v2.txt via {}",
        group.node_name(new_primary)
    );
}
