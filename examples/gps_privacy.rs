//! The Figs. 4–6 story: a location-based-service operator stores 30 users'
//! GPS traces in the cloud. A curious provider clusters users into
//! behavioural groups — "the results of such analysis can be used to create
//! a comprehensive profile of a person" (§II-B).
//!
//! With the full corpus the attacker's dendrogram is stable; after
//! fragmentation each provider sees only 500 observations per user and the
//! cluster tree scrambles — entities migrate, exactly as the paper's
//! Figs. 5–6 show.
//!
//! ```text
//! cargo run --example gps_privacy
//! ```

use fragcloud::metrics::{adjusted_rand_index, migration_rate};
use fragcloud::mining::dataset::{correlation_distance, DistanceMatrix};
use fragcloud::mining::hclust::{cluster, Dendrogram, Linkage};
use fragcloud::workloads::gps::{self, GpsConfig};

const GRID: usize = 12;
const K: usize = 5;

fn tree(features: &[Vec<f64>]) -> Dendrogram {
    let dm =
        DistanceMatrix::compute(features, correlation_distance).expect("non-empty feature set");
    cluster(&dm, Linkage::Average).expect("non-empty matrix")
}

fn main() {
    // 30 users, >3000 observations each (the paper's Dhaka corpus, here a
    // seeded synthetic mobility model — see DESIGN.md substitution table).
    let corpus = gps::generate(GpsConfig {
        users: 30,
        observations_per_user: 3000,
        ..Default::default()
    });

    // Fig. 4: the attacker sees everything.
    let full = tree(&gps::user_features(&corpus, GRID, None));
    println!("=== Fig. 4 analogue: clustering the ENTIRE corpus ===");
    println!("{}", full.render_ascii(None));
    let full_cut = full.cut(K).expect("k <= users");

    // Figs. 5 & 6: two 500-observation fragments.
    for (fig, start) in [(5, 0usize), (6, 500usize)] {
        let frag = tree(&gps::user_features_window(&corpus, GRID, start, 500));
        println!(
            "=== Fig. {fig} analogue: clustering fragment at obs {start}..{} ===",
            start + 500
        );
        println!("{}", frag.render_ascii(None));
        let frag_cut = frag.cut(K).expect("k <= users");
        let ari = adjusted_rand_index(&full_cut, &frag_cut);
        let mig = migration_rate(&full_cut, &frag_cut);
        println!(
            "agreement with full-data clustering: ARI = {ari:.3}, \
             {:.0}% of users migrated clusters\n",
            mig * 100.0
        );
    }

    println!(
        "The fragment clusterings disagree with the full-data clustering: an\n\
         attacker confined to one provider's fragment profiles users wrongly."
    );
}
