//! §VII-E in practice: "encryption is not an alternative to fragmentation,
//! rather it is a complement." A client keeps a 256-bit key locally and
//! layers ChaCha20 over the distributor — fully for a vault file, partially
//! (sensitive suffix only) for a working document that still needs cheap
//! queries over its public prefix.
//!
//! ```text
//! cargo run --example encrypted_vault
//! ```

use fragcloud::core::config::DistributorConfig;
use fragcloud::core::envelope::{EncryptedClient, EncryptionMode};
use fragcloud::core::{CloudDataDistributor, PrivacyLevel, PutOptions};
use fragcloud::sim::{CloudProvider, CostLevel, ObjectStore, ProviderProfile};
use std::sync::Arc;

fn main() {
    let fleet: Vec<Arc<CloudProvider>> = (0..6)
        .map(|i| {
            Arc::new(CloudProvider::new(ProviderProfile::new(
                format!("cp{i}"),
                PrivacyLevel::High,
                CostLevel::new(1),
            )))
        })
        .collect();
    let distributor = CloudDataDistributor::try_new(fleet.clone(), DistributorConfig::default())
        .expect("valid config");
    distributor.register_client("alice").expect("fresh");
    distributor
        .add_password("alice", "pw", PrivacyLevel::High)
        .expect("client exists");

    // The key never leaves the client.
    let mut vault = EncryptedClient::new(&distributor, *b"alice's 32-byte high-entropy key");

    // 1. Fully encrypted vault file.
    let secrets = b"account 4711 pin 0000; account 4712 pin 1234".repeat(200);
    vault
        .put_file(
            "alice",
            "pw",
            "vault.bin",
            &secrets,
            PrivacyLevel::High,
            EncryptionMode::Full,
            PutOptions::default(),
        )
        .expect("upload");
    println!(
        "vault.bin uploaded fully encrypted ({} bytes)",
        secrets.len()
    );

    // 2. Partially encrypted report: public summary + confidential appendix.
    let mut report = b"PUBLIC SUMMARY: output grew 14% year over year. ".repeat(100);
    report.extend(b"CONFIDENTIAL APPENDIX: acquisition target is Hydra Corp. ".repeat(50));
    vault
        .put_file(
            "alice",
            "pw",
            "report.txt",
            &report,
            PrivacyLevel::Moderate,
            EncryptionMode::PartialSuffix(0.4),
            PutOptions::default(),
        )
        .expect("upload");
    println!("report.txt uploaded with its confidential 40% suffix encrypted");

    // What a curious provider actually sees: ciphertext only for the vault.
    let mut leaked_pins = 0;
    let mut leaked_summary = 0;
    for p in &fleet {
        for key in p.keys() {
            let stored = p.get(key).expect("object readable by its provider");
            if stored.windows(3).any(|w| w == b"pin") {
                leaked_pins += 1;
            }
            if stored.windows(6).any(|w| w == b"PUBLIC") {
                leaked_summary += 1;
            }
        }
    }
    println!("chunks leaking the string \"pin\":    {leaked_pins} (vault is opaque)");
    println!("chunks showing the public summary:  {leaked_summary} (by design — it's public)");

    // The owner reads both files back perfectly.
    assert_eq!(
        vault.get_file("alice", "pw", "vault.bin").expect("read"),
        secrets
    );
    assert_eq!(
        vault.get_file("alice", "pw", "report.txt").expect("read"),
        report
    );
    println!("owner reads both files back intact");

    // And the raw (distributor-level) view of the report hides the appendix.
    let raw = distributor
        .session("alice", "pw")
        .expect("valid pair")
        .get_file("report.txt")
        .expect("raw read")
        .data;
    let appendix_visible = raw.windows(12).any(|w| w == b"CONFIDENTIAL");
    println!("appendix visible without the key: {appendix_visible}");
    assert!(!appendix_visible);
}
