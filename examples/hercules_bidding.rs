//! The §VII-A story, end to end: the company **Hercules** stores its tender
//! bidding history in the cloud; the malicious employee **Hera** at one
//! provider mines it with multivariate regression.
//!
//! Scenario A — single provider (today's cloud): Hera sees everything and
//! recovers the pricing model, ready to leak it to rival Hydra.
//!
//! Scenario B — fragcloud's categorize→fragment→distribute: Hera sees one
//! provider's chunks; her model is starved or misleading.
//!
//! ```text
//! cargo run --example hercules_bidding
//! ```

use fragcloud::core::config::{ChunkSizeSchedule, DistributorConfig, PlacementStrategy};
use fragcloud::core::{CloudDataDistributor, PrivacyLevel, PutOptions};
use fragcloud::mining::regression::RegressionModel;
use fragcloud::mining::Dataset;
use fragcloud::raid::RaidLevel;
use fragcloud::sim::{CloudProvider, CostLevel, ProviderProfile};
use fragcloud::workloads::bidding::{self, COLUMNS, PREDICTORS, RESPONSE};
use fragcloud::workloads::records;
use std::sync::Arc;

fn fleet() -> Vec<Arc<CloudProvider>> {
    ["Titans", "Spartans", "Yagamis"]
        .iter()
        .map(|n| {
            Arc::new(CloudProvider::new(ProviderProfile::new(
                *n,
                PrivacyLevel::High,
                CostLevel::new(2),
            )))
        })
        .collect()
}

/// Hera's attack: scavenge rows from everything one provider stored, then
/// fit the regression.
fn hera_attack(provider: &Arc<CloudProvider>) -> Option<RegressionModel> {
    let mut rows = Vec::new();
    for obs in provider.observer().snapshot() {
        rows.extend(records::scavenge_rows(&obs.data, COLUMNS.len()));
    }
    if rows.is_empty() {
        return None;
    }
    let ds = Dataset::from_rows(COLUMNS.iter().map(|s| s.to_string()).collect(), rows).ok()?;
    RegressionModel::fit(&ds, &PREDICTORS, RESPONSE).ok()
}

fn main() {
    let table = bidding::hercules_table();
    let bytes = records::encode(&table);
    println!(
        "Hercules' bidding history: {} rows, {} bytes as CSV\n",
        table.len(),
        bytes.len()
    );

    // Ground truth (what Hera wants): the full-data fit.
    let truth = RegressionModel::fit(&table, &PREDICTORS, RESPONSE).expect("12 rows");
    println!("true pricing model:       {}", truth.equation());
    println!(
        "paper's reported model:   (1.4*Materials + 1.5*Production + 3.1*Maintenance) + 5436\n"
    );

    // ---- Scenario A: everything at Titans --------------------------------
    let providers = fleet();
    let single = CloudDataDistributor::try_new(
        providers.clone(),
        DistributorConfig {
            chunk_sizes: ChunkSizeSchedule::uniform(4096),
            placement: PlacementStrategy::SingleProvider,
            raid_level: RaidLevel::None,
            ..Default::default()
        },
    )
    .expect("valid config");
    single.register_client("Hercules").expect("fresh");
    single
        .add_password("Hercules", "12labors", PrivacyLevel::High)
        .expect("client exists");
    single
        .session("Hercules", "12labors")
        .expect("valid pair")
        .put_file(
            "bids.csv",
            &bytes,
            PrivacyLevel::Moderate,
            PutOptions::new(),
        )
        .expect("upload");
    println!("--- scenario A: single provider (all data at Titans) ---");
    match hera_attack(&providers[0]) {
        Some(model) => println!("Hera's mined model:       {}", model.equation()),
        None => println!("Hera's attack failed (no data)"),
    }

    // ---- Scenario B: fragmented across three providers -------------------
    let providers = fleet();
    let distributed = CloudDataDistributor::try_new(
        providers.clone(),
        DistributorConfig {
            // ~4 rows of CSV per chunk, mirroring the paper's 3-way split.
            chunk_sizes: ChunkSizeSchedule::uniform(bytes.len() / 3 + 1),
            stripe_width: 3,
            raid_level: RaidLevel::None,
            ..Default::default()
        },
    )
    .expect("valid config");
    distributed.register_client("Hercules").expect("fresh");
    distributed
        .add_password("Hercules", "12labors", PrivacyLevel::High)
        .expect("client exists");
    distributed
        .session("Hercules", "12labors")
        .expect("valid pair")
        .put_file(
            "bids.csv",
            &bytes,
            PrivacyLevel::Moderate,
            PutOptions::new(),
        )
        .expect("upload");
    println!("\n--- scenario B: distributed across Titans, Spartans, Yagamis ---");
    for p in &providers {
        match hera_attack(p) {
            Some(model) => {
                println!(
                    "malicious employee at {:<9} fits: {}   <- misleading",
                    p.name(),
                    model.equation()
                );
            }
            None => println!(
                "malicious employee at {:<9} cannot fit a model (too few rows)",
                p.name()
            ),
        }
    }

    // Hercules can still read his own data perfectly.
    let got = distributed
        .session("Hercules", "12labors")
        .expect("valid pair")
        .get_file("bids.csv")
        .expect("owner read");
    assert_eq!(got.data, bytes);
    println!(
        "\nHercules retrieves his ledger intact ({} bytes).",
        got.data.len()
    );
}
